"""Tests for the SMO-based SVC and the Pegasos-style SVR."""

import numpy as np
import pytest

from repro.ml import SVC, SVR, accuracy_score, linear_kernel, rbf_kernel


class TestKernels:
    def test_rbf_diagonal_is_one(self, rng):
        A = rng.standard_normal((10, 3))
        K = rbf_kernel(A, A, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_psd_entries(self, rng):
        A = rng.standard_normal((15, 4))
        K = rbf_kernel(A, A, gamma=0.2)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)

    def test_rbf_decays_with_distance(self):
        a = np.array([[0.0]])
        assert rbf_kernel(a, np.array([[1.0]]), 1.0) > rbf_kernel(a, np.array([[3.0]]), 1.0)

    def test_linear_kernel(self, rng):
        A = rng.standard_normal((5, 3))
        B = rng.standard_normal((4, 3))
        np.testing.assert_allclose(linear_kernel(A, B), A @ B.T)


class TestSVC:
    def test_binary_separable(self, rng):
        X = np.vstack([rng.standard_normal((60, 2)) + 4, rng.standard_normal((60, 2)) - 4])
        y = np.array([0] * 60 + [1] * 60)
        clf = SVC(C=10.0, gamma=0.5).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) == 1.0

    def test_multiclass_one_vs_one(self, rng):
        centers = np.array([[6, 0], [-6, 0], [0, 6], [0, -6]], dtype=float)
        y = rng.integers(0, 4, 200)
        X = centers[y] + rng.standard_normal((200, 2))
        clf = SVC(C=10.0, gamma=0.2).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.95
        # One machine per class pair.
        assert len(clf._machines) == 6

    def test_nonlinear_boundary_rbf(self, rng):
        # Concentric rings: linearly inseparable.
        r = np.concatenate([rng.uniform(0, 1, 100), rng.uniform(2.5, 3.5, 100)])
        theta = rng.uniform(0, 2 * np.pi, 200)
        X = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        y = np.array([0] * 100 + [1] * 100)
        rbf = SVC(C=10.0, gamma=1.0).fit(X, y)
        assert accuracy_score(y, rbf.predict(X)) > 0.95
        lin = SVC(C=10.0, kernel="linear").fit(X, y)
        assert accuracy_score(y, lin.predict(X)) < 0.8

    def test_gamma_scale(self, rng):
        X = rng.standard_normal((40, 3)) * 10
        y = (X[:, 0] > 0).astype(int)
        clf = SVC(gamma="scale").fit(X, y)
        assert clf.gamma_ == pytest.approx(1.0 / (3 * X.var()))

    def test_decision_function_shape(self, rng):
        X = rng.standard_normal((30, 2))
        y = rng.integers(0, 3, 30)
        clf = SVC(C=1.0).fit(X, y)
        assert clf.decision_function(X).shape == (30, 3)  # 3 pairs

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError, match="two classes"):
            SVC().fit(rng.standard_normal((5, 2)), np.zeros(5, dtype=int))

    def test_invalid_C(self, rng):
        with pytest.raises(ValueError, match="C"):
            SVC(C=-1.0).fit(rng.standard_normal((6, 2)), [0, 1] * 3)

    def test_unknown_kernel(self, rng):
        with pytest.raises(ValueError, match="kernel"):
            SVC(kernel="poly").fit(rng.standard_normal((6, 2)), [0, 1] * 3)

    def test_deterministic(self, rng):
        X = rng.standard_normal((60, 2))
        y = (X.sum(axis=1) > 0).astype(int)
        a = SVC(C=5.0, gamma=0.3, seed=0).fit(X, y).predict(X)
        b = SVC(C=5.0, gamma=0.3, seed=0).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_labels_preserved(self, rng):
        X = rng.standard_normal((40, 2))
        y = np.where(X[:, 0] > 0, 7, 3)  # non-contiguous labels
        clf = SVC(C=10.0).fit(X, y)
        assert set(np.unique(clf.predict(X))) <= {3, 7}


class TestSVR:
    def test_fits_linear_function(self, rng):
        X = rng.standard_normal((150, 2))
        y = 2.0 * X[:, 0] - X[:, 1] + 0.5
        reg = SVR(C=10.0, kernel="linear", epsilon=0.05, n_epochs=100).fit(X, y)
        resid = np.abs(reg.predict(X) - y)
        assert np.median(resid) < 0.5

    def test_rbf_fits_smooth_function(self, rng):
        X = np.sort(rng.uniform(-3, 3, (200, 1)), axis=0)
        y = np.sin(X[:, 0])
        reg = SVR(C=50.0, gamma=1.0, epsilon=0.01, n_epochs=150).fit(X, y)
        from repro.ml import r2_score

        assert r2_score(y, reg.predict(X)) > 0.7

    def test_invalid_epsilon(self, rng):
        with pytest.raises(ValueError, match="epsilon"):
            SVR(epsilon=-0.1).fit(rng.standard_normal((5, 1)), np.zeros(5))
