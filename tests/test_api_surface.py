"""API-surface lockfile guard (docs/api_surface.txt vs the live package).

Any change to the public surface — a renamed method, a dropped export, a
new keyword argument — must regenerate the lockfile in the same commit:

    PYTHONPATH=src python tools/dump_api.py --out docs/api_surface.txt

so surface changes are always explicit in review, never accidental.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _dump_api():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        from dump_api import dump_api
    finally:
        sys.path.pop(0)
    return dump_api()


def test_surface_matches_lockfile():
    locked = (REPO / "docs" / "api_surface.txt").read_text()
    live = _dump_api()
    assert live == locked, (
        "public API surface drifted from docs/api_surface.txt; if the "
        "change is intended, regenerate with "
        "'PYTHONPATH=src python tools/dump_api.py --out docs/api_surface.txt'"
    )


def test_lockfile_covers_the_new_surface():
    """Spot-check that the lock actually pins the redesigned API."""
    locked = (REPO / "docs" / "api_surface.txt").read_text()
    for needle in (
        "class ReproConfig",
        "class FormatSelector",
        "class PerformancePredictor",
        "PerformancePredictor.predict(",
        "FormatSelector.save(",
        "class SelectionService",
        "class ModelRegistry",
        "repro.obs",
        "def span(",
        "def snapshot(",
    ):
        assert needle in locked, f"lockfile missing {needle!r}"
