"""LRU cache + the executor's bounded analysis/format caches."""

import threading

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.gpu import KEPLER_K40C, SpMVExecutor
from repro.gpu.cache import LRUCache
from repro.matrices import random_uniform


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("missing") is None
        assert "a" in c and len(c) == 1

    def test_evicts_least_recently_used(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # refresh "a"; "b" is now the LRU entry
        c.put("c", 3)
        assert "a" in c and "c" in c and "b" not in c

    def test_setdefault_keeps_first_value(self):
        c = LRUCache(4)
        first = object()
        assert c.setdefault("k", first) is first
        assert c.setdefault("k", object()) is first

    def test_unbounded_when_maxsize_none(self):
        c = LRUCache(None)
        for i in range(1000):
            c.put(i, i)
        assert len(c) == 1000

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.clear()
        assert len(c) == 0 and "a" not in c

    def test_concurrent_hammer(self):
        """put/get/setdefault/clear from many threads: no corruption.

        The cache carries its own lock (serving threads share it
        without external synchronisation), so a mixed workload must
        never raise and must end within the size bound.
        """
        c = LRUCache(32)
        errors = []
        start = threading.Barrier(8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                start.wait(timeout=10)
                for i in range(500):
                    key = int(rng.integers(64))
                    op = i % 4
                    if op == 0:
                        c.put(key, (seed, i))
                    elif op == 1:
                        got = c.get(key)
                        assert got is None or isinstance(got, tuple)
                    elif op == 2:
                        assert isinstance(c.setdefault(key, (seed, i)), tuple)
                    elif seed == 0 and i % 400 == 0:
                        c.clear()
                    else:
                        len(c)
                        key in c
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(c) <= 32


class TestExecutorAnalysisCache:
    def test_cache_is_bounded(self):
        ex = SpMVExecutor(KEPLER_K40C, profile_cache_maxsize=2)
        for seed in range(4):
            ex.analyze(random_uniform(20, 20, nnz=60, seed=seed))
        assert len(ex._analysis_cache) == 2

    def test_repeat_profile_is_same_object(self, small_coo):
        ex = SpMVExecutor(KEPLER_K40C)
        assert ex.profile(small_coo) is ex.profile(small_coo)


class TestExecutorFormatCache:
    def test_repeat_run_skips_conversion(self, small_coo, monkeypatch):
        import repro.gpu.executor as executor_mod

        calls = []
        real = executor_mod.as_format

        def counting(coo, fmt):
            calls.append(fmt)
            return real(coo, fmt)

        monkeypatch.setattr(executor_mod, "as_format", counting)
        ex = SpMVExecutor(KEPLER_K40C)
        y1, _ = ex.run(small_coo, "csr")
        y2, _ = ex.run(small_coo, "csr")
        assert calls == ["csr"]          # second run served from cache
        assert np.array_equal(y1, y2)

    def test_same_structure_different_values_not_conflated(self):
        """The digest covers structure only; values must still be honest."""
        dense = np.zeros((6, 6))
        dense[np.arange(6), np.arange(6)] = 1.0
        m1 = COOMatrix.from_dense(dense)
        m2 = COOMatrix.from_dense(dense * 3.0)
        ex = SpMVExecutor(KEPLER_K40C)
        y1, _ = ex.run(m1, "csr")
        y2, _ = ex.run(m2, "csr")
        assert np.allclose(y1, np.ones(6))
        assert np.allclose(y2, 3.0 * np.ones(6))

    def test_cache_is_bounded(self, small_coo):
        ex = SpMVExecutor(KEPLER_K40C, format_cache_maxsize=1)
        ex.run(small_coo, "csr")
        ex.run(small_coo, "coo")
        assert len(ex._format_cache) == 1
