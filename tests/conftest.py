"""Shared fixtures for the test suite.

Heavy artefacts (the labeled mini-dataset) are session-scoped so the
many core/integration tests share one build.  Everything is seeded —
the whole suite is deterministic.
"""

import numpy as np
import pytest

from repro.core import SpMVDataset, build_dataset
from repro.formats import COOMatrix
from repro.gpu import KEPLER_K40C, PASCAL_P100, SpMVExecutor
from repro.matrices import SyntheticCorpus


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_dense(rng, m, n, density=0.15):
    """Dense array with ~density non-zeros (test helper)."""
    mask = rng.random((m, n)) < density
    vals = rng.standard_normal((m, n))
    return mask * vals


@pytest.fixture
def small_coo(rng):
    """A 40x30 random COO matrix."""
    return COOMatrix.from_dense(random_dense(rng, 40, 30))


@pytest.fixture
def skewed_coo():
    """A matrix with one long row (stress for ELL/HYB/merge)."""
    rng = np.random.default_rng(7)
    row = np.concatenate([np.zeros(200, dtype=int), rng.integers(1, 100, 300)])
    col = rng.integers(0, 250, 500)
    val = rng.standard_normal(500)
    return COOMatrix((100, 250), row, col, val)


@pytest.fixture
def kepler_executor():
    return SpMVExecutor(KEPLER_K40C, "single", seed=0)


@pytest.fixture
def pascal_executor():
    return SpMVExecutor(PASCAL_P100, "double", seed=0)


@pytest.fixture(scope="session")
def mini_corpus():
    """~45-matrix corpus used by core/integration tests."""
    return SyntheticCorpus(scale=0.02, seed=3, max_nnz=200_000)


@pytest.fixture(scope="session")
def mini_dataset(mini_corpus) -> SpMVDataset:
    """Labeled dataset on the Kepler device (built once per session)."""
    return build_dataset(mini_corpus, KEPLER_K40C, "single", seed=3)


@pytest.fixture(scope="session")
def mini_dataset_double(mini_corpus) -> SpMVDataset:
    """Labeled dataset on the Pascal device, double precision."""
    return build_dataset(mini_corpus, PASCAL_P100, "double", seed=3)
