"""Tests for the random forests."""

import numpy as np
import pytest

from repro.ml import (
    RandomForestClassifier,
    RandomForestRegressor,
    accuracy_score,
    r2_score,
)


@pytest.fixture
def blobs(rng):
    centers = rng.standard_normal((3, 5)) * 6
    y = rng.integers(0, 3, 240)
    X = centers[y] + rng.standard_normal((240, 5))
    return X, y


class TestClassifier:
    def test_learns_blobs(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=25, max_depth=8, seed=0).fit(
            X[:180], y[:180]
        )
        assert accuracy_score(y[180:], rf.predict(X[180:])) > 0.9

    def test_beats_single_shallow_tree_on_xor(self, rng):
        from repro.ml import DecisionTreeClassifier

        X = rng.standard_normal((500, 6))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tr, te = slice(0, 350), slice(350, None)
        stump = DecisionTreeClassifier(max_depth=2).fit(X[tr], y[tr])
        rf = RandomForestClassifier(n_estimators=40, max_depth=8, seed=1).fit(X[tr], y[tr])
        assert accuracy_score(y[te], rf.predict(X[te])) > accuracy_score(
            y[te], stump.predict(X[te])
        )

    def test_predict_proba_valid(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(X, y)
        p = rf.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)
        assert p.shape == (240, 3)

    def test_feature_importance_normalised(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0)

    def test_deterministic(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=8, seed=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=8, seed=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_max_features_options(self, blobs):
        X, y = blobs
        for mf in ("sqrt", "log2", 3, None):
            rf = RandomForestClassifier(n_estimators=5, max_features=mf, seed=0)
            rf.fit(X, y)
        with pytest.raises(ValueError, match="max_features"):
            RandomForestClassifier(max_features="cube").fit(X, y)

    def test_no_bootstrap(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=5, bootstrap=False, seed=0).fit(X, y)
        assert accuracy_score(y, rf.predict(X)) > 0.8

    def test_n_estimators_validated(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0).fit(X, y)


class TestRegressor:
    def test_fits_smooth_function(self, rng):
        X = rng.random((400, 2)) * 4
        y = np.sin(X[:, 0]) + 0.3 * X[:, 1]
        rf = RandomForestRegressor(n_estimators=30, max_depth=10, seed=0).fit(
            X[:300], y[:300]
        )
        assert r2_score(y[300:], rf.predict(X[300:])) > 0.85

    def test_averaging_smooths(self, rng):
        X = rng.standard_normal((200, 1))
        y = X[:, 0] + 0.5 * rng.standard_normal(200)
        rf = RandomForestRegressor(n_estimators=40, max_depth=12, seed=0).fit(X, y)
        # Ensemble prediction is smoother than a fully grown single tree
        # (which memorises the noise): compare on fresh points.
        from repro.ml import DecisionTreeRegressor

        Xf = rng.standard_normal((200, 1))
        yf = Xf[:, 0]
        tree = DecisionTreeRegressor(max_depth=30).fit(X, y)
        mse_rf = np.mean((rf.predict(Xf) - yf) ** 2)
        mse_tree = np.mean((tree.predict(Xf) - yf) ** 2)
        assert mse_rf < mse_tree
