"""Tests for the 17-feature extractor (paper Table II), incl. hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    ALL_FEATURES,
    FEATURE_SET_1,
    FEATURE_SET_2,
    FEATURE_SET_3,
    FEATURE_SETS,
    IMP_FEATURES,
    extract_features,
    feature_matrix,
    feature_vector,
)
from repro.formats import COOMatrix
from repro.matrices import banded, clustered


class TestFeatureSets:
    def test_cardinalities_match_paper(self):
        assert len(FEATURE_SET_1) == 5      # Table IV: "5 features"
        assert len(FEATURE_SETS["set12"]) == 11   # Table V: "11 features"
        assert len(ALL_FEATURES) == 17      # Table VI: "17 features"
        assert len(IMP_FEATURES) == 7       # Table X: "top 7"

    def test_sets_are_nested_and_disjoint(self):
        assert set(FEATURE_SET_1) & set(FEATURE_SET_2) == set()
        assert set(FEATURE_SET_2) & set(FEATURE_SET_3) == set()
        assert set(FEATURE_SETS["set12"]) == set(FEATURE_SET_1) | set(FEATURE_SET_2)

    def test_imp_features_subset_of_all(self):
        assert set(IMP_FEATURES) <= set(ALL_FEATURES)


class TestValues:
    def test_set1_values(self, small_coo):
        f = extract_features(small_coo)
        assert f["n_rows"] == small_coo.n_rows
        assert f["n_cols"] == small_coo.n_cols
        assert f["nnz_tot"] == small_coo.nnz
        lengths = small_coo.row_lengths()
        assert f["nnz_mu"] == pytest.approx(lengths.mean())
        assert f["nnz_frac"] == pytest.approx(
            100.0 * small_coo.nnz / (small_coo.n_rows * small_coo.n_cols)
        )

    def test_row_statistics(self, skewed_coo):
        f = extract_features(skewed_coo)
        lengths = skewed_coo.row_lengths()
        assert f["nnz_max"] == lengths.max()
        assert f["nnz_min"] == lengths.min()
        assert f["nnz_sigma"] == pytest.approx(lengths.std())

    def test_chunks_on_known_matrix(self):
        # Row 0: cols 0,1,2 and 5,6 -> two chunks of sizes 3 and 2.
        # Row 1: col 4 -> one chunk of size 1.
        coo = COOMatrix(
            (2, 8),
            [0, 0, 0, 0, 0, 1],
            [0, 1, 2, 5, 6, 4],
            [1.0] * 6,
        )
        f = extract_features(coo)
        assert f["nnzb_tot"] == 3
        assert f["nnzb_max"] == 2
        assert f["nnzb_min"] == 1
        assert f["snzb_max"] == 3
        assert f["snzb_min"] == 1
        assert f["snzb_mu"] == pytest.approx(2.0)
        assert f["nnzb_mu"] == pytest.approx(1.5)

    def test_fully_contiguous_rows_one_chunk_each(self):
        A = banded(100, 100, bandwidth=6, fill=1.0, seed=0)
        f = extract_features(A)
        nonempty = int((A.row_lengths() > 0).sum())
        assert f["nnzb_tot"] == nonempty
        assert f["snzb_mu"] == pytest.approx(A.nnz / nonempty)

    def test_scattered_matrix_many_chunks(self):
        rng = np.random.default_rng(0)
        # Columns spaced >= 2 apart: every nnz is its own chunk.
        coo = COOMatrix((10, 100), np.repeat(np.arange(10), 5),
                        np.tile(np.arange(5) * 10, 10), rng.standard_normal(50))
        f = extract_features(coo)
        assert f["nnzb_tot"] == 50
        assert f["snzb_max"] == 1

    def test_empty_matrix(self):
        f = extract_features(COOMatrix.empty((4, 4)))
        assert f["nnz_tot"] == 0
        assert f["nnzb_tot"] == 0
        assert f["snzb_mu"] == 0

    def test_clustered_family_detected(self):
        chunky = extract_features(clustered(500, 500, nnz=5000, chunk=12, seed=1))
        assert chunky["snzb_mu"] > 4


class TestVectorisation:
    def test_feature_vector_order(self, small_coo):
        f = extract_features(small_coo)
        v = feature_vector(f)
        assert v.shape == (17,)
        assert v[0] == f["n_rows"]
        assert v[list(ALL_FEATURES).index("nnz_sigma")] == f["nnz_sigma"]

    def test_feature_vector_subset(self, small_coo):
        f = extract_features(small_coo)
        v = feature_vector(f, ("nnz_tot", "n_cols"))
        assert v.tolist() == [f["nnz_tot"], f["n_cols"]]

    def test_feature_matrix_stacking(self, small_coo, skewed_coo):
        X = feature_matrix([extract_features(small_coo), extract_features(skewed_coo)])
        assert X.shape == (2, 17)

    def test_feature_matrix_empty(self):
        assert feature_matrix([]).shape == (0, 17)


@st.composite
def random_coo(draw):
    m = draw(st.integers(1, 25))
    n = draw(st.integers(1, 25))
    seed = draw(st.integers(0, 10_000))
    density = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(seed)
    dense = (rng.random((m, n)) < density) * rng.standard_normal((m, n))
    return COOMatrix.from_dense(dense)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(coo=random_coo())
    def test_invariants(self, coo):
        f = extract_features(coo)
        assert set(f) == set(ALL_FEATURES)
        assert all(np.isfinite(v) for v in f.values())
        assert f["nnz_min"] <= f["nnz_mu"] <= f["nnz_max"]
        assert 0 <= f["nnz_frac"] <= 100
        if coo.nnz:
            # Chunk counts bound by nnz; sizes bound by chunk totals.
            assert 1 <= f["nnzb_tot"] <= coo.nnz
            assert f["snzb_min"] <= f["snzb_mu"] <= f["snzb_max"]
            assert f["nnzb_min"] <= f["nnzb_mu"] <= f["nnzb_max"]
            # Total nnz = sum over chunks of their sizes.
            assert f["snzb_mu"] * f["nnzb_tot"] == pytest.approx(coo.nnz)

    @settings(max_examples=30, deadline=None)
    @given(coo=random_coo())
    def test_value_independence(self, coo):
        """Features are purely structural: rescaling values changes nothing."""
        scaled = COOMatrix(coo.shape, coo.row, coo.col, 3.7 * coo.val, canonical=False)
        assert extract_features(coo) == extract_features(scaled)

    @settings(max_examples=30, deadline=None)
    @given(coo=random_coo())
    def test_csr_and_coo_inputs_agree(self, coo):
        from repro.formats import CSRMatrix

        assert extract_features(coo) == extract_features(CSRMatrix.from_coo(coo))
