"""Concurrent socket server tests: batching, backpressure, drain, faults.

The failure paths here are the ones that only exist under concurrency:
queue-full backpressure, graceful drain with requests in flight, client
disconnects mid-request, and protocol-error floods — each asserting the
telemetry stays exact while the server survives.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import FormatSelector
from repro.serve import (
    MicroBatcher,
    QueueFull,
    SelectionServer,
    SelectionService,
)


@pytest.fixture(scope="module")
def train(mini_dataset):
    return mini_dataset.drop_coo_best()


@pytest.fixture(scope="module")
def selector(train):
    return FormatSelector("decision_tree", feature_set="set123").fit(train)


@pytest.fixture
def service(selector):
    return SelectionService(selector)


class GatedService:
    """Wraps a SelectionService; predict_batch blocks until released.

    ``started`` is set on entry, so tests can wait until a batch is
    genuinely in flight before acting (deterministic backpressure and
    drain scenarios, no sleeps-as-synchronisation).
    """

    def __init__(self, inner):
        self.inner = inner
        self.telemetry = inner.telemetry
        self.gate = threading.Event()
        self.gate.set()
        self.started = threading.Event()

    def predict_batch(self, items, request_ids=None):
        self.started.set()
        assert self.gate.wait(timeout=30), "test gate never released"
        return self.inner.predict_batch(items, request_ids=request_ids)

    def __getattr__(self, name):  # stats, record_feedback, ... pass through
        return getattr(self.inner, name)


def _connect(address, timeout=10.0):
    sock = socket.create_connection(address, timeout=timeout)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def _roundtrip(fh, request):
    fh.write(json.dumps(request) + "\n")
    fh.flush()
    return json.loads(fh.readline())


def _send(fh, request):
    fh.write(json.dumps(request) + "\n")
    fh.flush()


class TestMicroBatcher:
    def test_gathers_concurrent_submissions_into_one_batch(self, service):
        calls = []
        inner = service

        class Recording:
            telemetry = inner.telemetry

            def predict_batch(self, items, request_ids=None):
                calls.append(len(items))
                return inner.predict_batch(items, request_ids=request_ids)

        batcher = MicroBatcher(Recording(), max_batch=100, window_s=0.1)
        vec = list(range(17))
        futures = [batcher.submit([float(i)] + vec[1:]) for i in range(6)]
        decisions = [f.result(timeout=10) for f in futures]
        batcher.close()
        assert all(d.chosen for d in decisions)
        assert sum(calls) == 6
        assert max(calls) > 1        # cross-submission batching happened

    def test_flushes_at_max_batch(self, service):
        calls = []
        inner = service

        class Recording:
            telemetry = inner.telemetry

            def predict_batch(self, items, request_ids=None):
                calls.append(len(items))
                return inner.predict_batch(items, request_ids=request_ids)

        # Window is effectively infinite: only max_batch can flush.
        batcher = MicroBatcher(Recording(), max_batch=4, window_s=30.0)
        futures = [
            batcher.submit([float(i)] + [0.0] * 16, f"r{i}") for i in range(4)
        ]
        for f in futures:
            f.result(timeout=10)
        batcher.close()
        assert calls == [4]

    def test_queue_full_raises(self, service):
        gated = GatedService(service)
        gated.gate.clear()
        batcher = MicroBatcher(gated, max_batch=1, window_s=0.0, queue_size=1)
        vec = [1.0] * 17
        first = batcher.submit(vec)          # worker takes it, blocks on gate
        assert gated.started.wait(timeout=10)
        second = batcher.submit(vec)         # sits in the queue (capacity 1)
        with pytest.raises(QueueFull):
            batcher.submit(vec)
        gated.gate.set()
        assert first.result(timeout=10).chosen
        assert second.result(timeout=10).chosen
        batcher.close()

    def test_close_drains_admitted_requests(self, service):
        gated = GatedService(service)
        gated.gate.clear()
        batcher = MicroBatcher(gated, max_batch=1, window_s=0.0, queue_size=64)
        futures = [batcher.submit([float(i)] + [0.0] * 16) for i in range(8)]
        assert gated.started.wait(timeout=10)
        closer = threading.Thread(target=batcher.close, daemon=True)
        closer.start()
        gated.gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert all(f.result(timeout=10).chosen for f in futures)
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit([0.0] * 17)

    def test_poisoned_item_fails_alone(self, service):
        batcher = MicroBatcher(service, max_batch=10, window_s=0.2)
        good = batcher.submit([1.0] * 17)
        bad = batcher.submit([1.0] * 5)      # wrong vector length
        assert good.result(timeout=10).chosen
        with pytest.raises(ValueError, match="cannot interpret"):
            bad.result(timeout=10)
        batcher.close()

    def test_validates_parameters(self, service):
        with pytest.raises(ValueError):
            MicroBatcher(service, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(service, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(service, queue_size=0)


class TestConcurrentServing:
    def test_many_clients_share_batches(self, service, train, selector):
        server = SelectionServer(
            service, port=0, max_batch=64, batch_window_s=0.05
        ).start()
        rows = train.feature_array
        n_clients, per_client = 8, 4
        results = [[] for _ in range(n_clients)]
        barrier = threading.Barrier(n_clients)

        def client(c):
            sock, fh = _connect(server.address)
            with sock:
                barrier.wait(timeout=10)
                for j in range(per_client):
                    row = rows[(c * per_client + j) % len(rows)]
                    results[c].append(_roundtrip(
                        fh, {"op": "predict", "vector": row.tolist(),
                             "id": f"c{c}-{j}"}
                    ))

        threads = [
            threading.Thread(target=client, args=(c,), daemon=True)
            for c in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        server.shutdown(drain=True)

        assert all(len(r) == per_client for r in results)
        for c, responses in enumerate(results):
            for j, response in enumerate(responses):
                assert response["ok"] is True
                assert response["id"] == f"c{c}-{j}"
                row = rows[(c * per_client + j) % len(rows)]
                assert response["format"] == selector.predict_formats(
                    np.asarray(row)
                )[0]
        snap = service.telemetry.snapshot()
        assert snap["requests"] == n_clients * per_client
        assert snap["batch_size"]["max"] > 1      # cross-client batching
        assert snap["connections"]["total"] == n_clients
        assert snap["connections"]["active"] == 0

    def test_stats_and_metrics_ops_over_socket(self, service, train):
        server = SelectionServer(service, port=0).start()
        try:
            sock, fh = _connect(server.address)
            with sock:
                vec = train.feature_array[0].tolist()
                assert _roundtrip(fh, {"op": "predict", "vector": vec})["ok"]
                stats = _roundtrip(fh, {"op": "stats"})
                assert stats["ok"] is True
                assert stats["stats"]["requests"] == 1
                assert stats["stats"]["connections"]["active"] == 1
                assert "batch_size" in stats["stats"]
                metrics = _roundtrip(fh, {"op": "metrics"})
                assert metrics["ok"] is True
                # obs metrics are process-global; just check presence.
                assert metrics["metrics"]["metrics"]["serve.requests"]["value"] >= 1
        finally:
            server.shutdown()

    def test_mixed_valid_invalid_lines_keep_counts_exact(self, service, train):
        server = SelectionServer(service, port=0).start()
        try:
            sock, fh = _connect(server.address)
            with sock:
                vec = train.feature_array[0].tolist()
                responses = []
                for line in ("this is not json", "{", "[1, 2"):
                    fh.write(line + "\n")
                    fh.flush()
                    responses.append(json.loads(fh.readline()))
                responses.append(
                    _roundtrip(fh, {"op": "predict", "vector": vec})
                )
                assert [r["ok"] for r in responses] == [False] * 3 + [True]
                assert all("invalid JSON" in r["error"]
                           for r in responses[:3])
            snap = service.telemetry.snapshot()
            assert snap["protocol_errors"] == 3
            assert snap["requests"] == 1          # errors aren't requests
        finally:
            server.shutdown()

    def test_client_disconnect_does_not_kill_server(self, service, train):
        server = SelectionServer(service, port=0).start()
        try:
            vec = train.feature_array[0].tolist()
            # Client 1 fires a request and vanishes without reading.
            sock, fh = _connect(server.address)
            _send(fh, {"op": "predict", "vector": vec})
            sock.close()
            # Client 2 (and the server) must be entirely unaffected.
            sock2, fh2 = _connect(server.address)
            with sock2:
                for _ in range(3):
                    assert _roundtrip(
                        fh2, {"op": "predict", "vector": vec}
                    )["ok"] is True
        finally:
            server.shutdown()

    def test_backpressure_busy_response_shape(self, selector):
        gated = GatedService(SelectionService(selector))
        gated.gate.clear()
        server = SelectionServer(
            gated, port=0, max_batch=1, batch_window_s=0.0, queue_size=1
        ).start()
        try:
            vec = [1.0] * 17
            # First request: worker picks it up and blocks inside the model.
            sock1, fh1 = _connect(server.address)
            _send(fh1, {"op": "predict", "vector": vec, "id": "inflight"})
            assert gated.started.wait(timeout=10)
            # Second request fills the queue (capacity 1).
            sock2, fh2 = _connect(server.address)
            _send(fh2, {"op": "predict", "vector": vec, "id": "queued"})
            # Give it a moment to be admitted before overflowing.
            time.sleep(0.2)
            # Third request overflows: explicit busy response, immediately.
            sock3, fh3 = _connect(server.address)
            busy = _roundtrip(fh3, {"op": "predict", "vector": vec})
            assert busy["ok"] is False
            assert busy["busy"] is True
            assert "overloaded" in busy["error"]
            sock3.close()
            # Release the gate: both admitted requests complete.
            gated.gate.set()
            with sock1:
                assert json.loads(fh1.readline())["id"] == "inflight"
            with sock2:
                assert json.loads(fh2.readline())["id"] == "queued"
        finally:
            gated.gate.set()
            server.shutdown()

    def test_graceful_drain_completes_in_flight_work(self, selector):
        gated = GatedService(SelectionService(selector))
        gated.gate.clear()
        server = SelectionServer(
            gated, port=0, max_batch=1, batch_window_s=0.0, queue_size=64
        ).start()
        address = server.address
        n_inflight = 6
        socks = []
        for i in range(n_inflight):
            sock, fh = _connect(address)
            _send(fh, {"op": "predict", "vector": [1.0 * i] + [0.0] * 16,
                       "id": f"inflight-{i}"})
            socks.append((sock, fh))
        assert gated.started.wait(timeout=10)
        # All six connections must be *accepted* (in flight) before the
        # drain starts; connects still in the TCP backlog are refused.
        deadline = time.monotonic() + 10
        while (gated.telemetry.snapshot()["connections"]["active"]
               < n_inflight):
            assert time.monotonic() < deadline, "connections never accepted"
            time.sleep(0.01)

        stopper = threading.Thread(
            target=lambda: server.shutdown(drain=True), daemon=True
        )
        stopper.start()
        time.sleep(0.2)           # shutdown is underway, work still gated
        gated.gate.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()

        # Zero dropped: every in-flight request got its response.
        answered = []
        for i, (sock, fh) in enumerate(socks):
            with sock:
                response = json.loads(fh.readline())
                assert response["ok"] is True
                answered.append(response["id"])
        assert answered == [f"inflight-{i}" for i in range(n_inflight)]
        assert gated.telemetry.snapshot()["requests"] == n_inflight

        # And new connections are refused after the drain.
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2)

    def test_feedback_op_parity_with_daemon(self, selector, train):
        """Socket feedback must behave exactly like the stdio daemon.

        Both front-ends funnel non-predict ops through
        ``handle_request``; this pins the contract at the socket level
        so a future server-side fast path can't silently diverge.
        """
        from repro.serve.daemon import handle_request

        socket_service = SelectionService(selector)
        daemon_service = SelectionService(selector)
        server = SelectionServer(socket_service, port=0).start()
        try:
            sock, fh = _connect(server.address)
            with sock:
                vec = train.feature_array[0].tolist()
                predicted = _roundtrip(
                    fh, {"op": "predict", "vector": vec, "id": "fp-1"}
                )
                assert predicted["ok"] is True
                handle_request(
                    daemon_service,
                    {"op": "predict", "vector": vec, "id": "fp-1"},
                )
                other = "coo" if predicted["format"] != "coo" else "csr"
                observed = {predicted["format"]: 2.0, other: 1.0}
                request = {"op": "feedback", "id": "fp-1", "times": observed}
                via_socket = _roundtrip(fh, request)
                via_daemon = handle_request(daemon_service, dict(request))
                assert via_socket == via_daemon
                assert via_socket["ok"] is True
                assert via_socket["regret"] == pytest.approx(1.0)

                # Error shape parity too: unknown id without chosen=.
                bad = {"op": "feedback", "id": "nope", "times": {"csr": 1.0}}
                assert _roundtrip(fh, bad) == handle_request(
                    daemon_service, dict(bad)
                )

                # And the socket stats op reflects the recorded event.
                stats = _roundtrip(fh, {"op": "stats"})
                assert stats["stats"]["feedback"]["count"] == 1
                assert stats["stats"]["feedback"]["regret_mean"] == (
                    pytest.approx(1.0)
                )
                assert stats["stats"]["service"]["feedback"][
                    "chosen_distribution"
                ] == {predicted["format"]: 1}
        finally:
            server.shutdown()

    def test_feedback_with_explicit_chosen_over_socket(self, selector):
        # Decisions outside the recent window: client supplies chosen=.
        server = SelectionServer(SelectionService(selector), port=0).start()
        try:
            sock, fh = _connect(server.address)
            with sock:
                response = _roundtrip(fh, {
                    "op": "feedback", "id": "ancient", "chosen": "csr",
                    "times": {"csr": 1.5, "ell": 1.0},
                })
                assert response["ok"] is True
                assert response["optimal"] == "ell"
                assert response["regret"] == pytest.approx(0.5)
        finally:
            server.shutdown()

    def test_adaptive_ops_require_controller_over_socket(self, selector):
        # Without an attached controller, the adaptive ops answer with
        # a protocol error (and the connection stays serviceable).
        server = SelectionServer(SelectionService(selector), port=0).start()
        try:
            sock, fh = _connect(server.address)
            with sock:
                for op in ("adaptive", "promote", "rollback"):
                    response = _roundtrip(fh, {"op": op})
                    assert response["ok"] is False
                    assert "no adaptive controller" in response["error"]
                assert _roundtrip(fh, {"op": "stats"})["ok"] is True
        finally:
            server.shutdown()

    def test_network_shutdown_op_drains_server(self, service, train):
        server = SelectionServer(service, port=0).start()
        serve_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        serve_thread.start()
        sock, fh = _connect(server.address)
        with sock:
            vec = train.feature_array[0].tolist()
            assert _roundtrip(fh, {"op": "predict", "vector": vec})["ok"]
            ack = _roundtrip(fh, {"op": "shutdown"})
            assert ack["ok"] is True and ack["shutdown"] is True
        serve_thread.join(timeout=30)
        assert not serve_thread.is_alive()

    def test_lifecycle_guards(self, service):
        server = SelectionServer(service, port=0)
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        with pytest.raises(RuntimeError, match="not started"):
            server.serve_forever()
        server.start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.shutdown()
        server.shutdown()        # idempotent
