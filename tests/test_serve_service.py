"""SelectionService tests: modes, caching, batching, feedback, threads."""

import threading
import time

import numpy as np
import pytest

from repro.core import FormatSelector
from repro.core.predictor import PerformancePredictor
from repro.features import ALL_FEATURES, extract_features, feature_vector
from repro.serve import ModelRegistry, SelectionService


@pytest.fixture(scope="module")
def train(mini_dataset):
    return mini_dataset.drop_coo_best()


@pytest.fixture(scope="module")
def selector(train):
    return FormatSelector("decision_tree", feature_set="set123").fit(train)


@pytest.fixture(scope="module")
def predictor(train):
    return PerformancePredictor(
        "decision_tree", feature_set="set123", mode="joint"
    ).fit(train)


@pytest.fixture(scope="module")
def matrices(mini_corpus):
    return [entry.build() for entry in list(mini_corpus)[:6]]


class TestConstruction:
    def test_mode_requirements(self, selector, predictor):
        with pytest.raises(ValueError, match="requires a predictor"):
            SelectionService(selector, mode="indirect")
        with pytest.raises(ValueError, match="requires a selector"):
            SelectionService(predictor=predictor, mode="direct")
        with pytest.raises(ValueError, match="requires a predictor"):
            SelectionService(selector, mode="hybrid")
        with pytest.raises(ValueError, match="mode must be"):
            SelectionService(selector, mode="psychic")

    def test_unfitted_selector_rejected(self):
        with pytest.raises(ValueError, match="dataset-fitted"):
            SelectionService(FormatSelector("decision_tree"))

    def test_from_registry_defaults_mode(self, selector, predictor, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(selector, "sel", dataset=train)
        registry.save(predictor, "prd", dataset=train)
        both = SelectionService.from_registry(registry, "sel", "prd")
        assert both.mode == "hybrid"
        assert SelectionService.from_registry(registry, "sel").mode == "direct"
        assert SelectionService.from_registry(
            registry, predictor="prd"
        ).mode == "indirect"


class TestPrediction:
    def test_matches_in_process_model(self, selector, matrices):
        service = SelectionService(selector)
        decisions = service.predict_batch(matrices)
        for matrix, decision in zip(matrices, decisions):
            vec = feature_vector(extract_features(matrix), ALL_FEATURES)
            expected = selector.predict_formats(vec)[0]
            assert decision.chosen == expected

    def test_input_kinds_agree(self, selector, matrices):
        service = SelectionService(selector, feature_cache_size=0,
                                   decision_cache_size=0)
        feats = extract_features(matrices[0])
        by_matrix = service.predict(matrices[0]).chosen
        by_dict = service.predict(feats).chosen
        by_vector = service.predict(feature_vector(feats, ALL_FEATURES)).chosen
        assert by_matrix == by_dict == by_vector

    def test_predict_ms_histogram_recorded(self, selector, matrices):
        # The serve.predict_ms histogram only records while obs is
        # enabled; disabled (the default) it must stay silent.
        from repro import obs

        service = SelectionService(selector)
        service.predict(matrices[0])
        obs.disable(reset=True)
        obs.enable()
        try:
            service.predict_batch(matrices[:3])
            hist = obs.snapshot()["metrics"]["serve.predict_ms"]
        finally:
            obs.disable(reset=True)
        assert hist["type"] == "histogram"
        assert hist["count"] == 3
        assert hist["max"] >= 0.0

    def test_shared_set_vector_accepted(self, train):
        sel = FormatSelector("decision_tree", feature_set="imp").fit(train)
        service = SelectionService(sel)
        feats = {n: float(v) for n, v in zip(ALL_FEATURES, train.feature_array[0])}
        want = service.predict(feats).chosen
        vec7 = feature_vector(feats, service._sel_names)
        assert service.predict(vec7).chosen == want

    def test_bad_vector_length_rejected(self, selector):
        service = SelectionService(selector)
        with pytest.raises(ValueError, match="cannot interpret"):
            service.predict(np.arange(5, dtype=float))
        with pytest.raises(ValueError, match="1-D vector"):
            service.predict(np.zeros((2, 17)))

    def test_missing_feature_rejected(self, selector):
        service = SelectionService(selector)
        with pytest.raises(ValueError, match="missing"):
            service.predict({"n_rows": 10.0})

    def test_indirect_mode_is_argmin(self, predictor, matrices):
        service = SelectionService(predictor=predictor, mode="indirect")
        decision = service.predict(matrices[0])
        times = decision.predicted_times
        assert decision.chosen == min(times, key=times.get)
        vec = feature_vector(extract_features(matrices[0]), ALL_FEATURES)
        np.testing.assert_allclose(
            sorted(times.values()), sorted(predictor.predict(vec)[0])
        )

    def test_hybrid_tolerance_extremes(self, selector, predictor, matrices):
        # Huge tolerance → always the classifier's pick; zero → the argmin.
        loose = SelectionService(selector, predictor, mode="hybrid",
                                 tolerance=1e9)
        tight = SelectionService(selector, predictor, mode="hybrid",
                                 tolerance=0.0)
        for matrix in matrices:
            vec = feature_vector(extract_features(matrix), ALL_FEATURES)
            d_loose = loose.predict(matrix)
            assert d_loose.chosen == d_loose.direct_choice
            assert d_loose.direct_choice == selector.predict_formats(vec)[0]
            d_tight = tight.predict(matrix)
            times = d_tight.predicted_times
            assert d_tight.chosen == min(times, key=times.get)

    def test_request_ids(self, selector, matrices):
        service = SelectionService(selector)
        auto = service.predict(matrices[0])
        named = service.predict(matrices[0], request_id="job-7")
        assert auto.request_id == "r000000"
        assert named.request_id == "job-7"


class TestCaching:
    def test_caches_hit_on_resubmission(self, selector, matrices):
        service = SelectionService(selector)
        first = service.predict_batch(matrices)
        second = service.predict_batch(matrices)
        assert [d.chosen for d in first] == [d.chosen for d in second]
        assert not any(d.cached for d in first)
        assert all(d.cached for d in second)
        snap = service.telemetry.snapshot()
        assert snap["feature_cache"]["hits"] == len(matrices)
        assert snap["decision_cache"]["hits"] == len(matrices)
        assert snap["requests"] == 2 * len(matrices)

    def test_cache_disable(self, selector, matrices):
        service = SelectionService(selector, feature_cache_size=0,
                                   decision_cache_size=0)
        service.predict(matrices[0])
        repeat = service.predict(matrices[0])
        assert not repeat.cached
        snap = service.telemetry.snapshot()
        assert snap["decision_cache"]["hits"] == 0

    def test_clear_caches(self, selector, matrices):
        service = SelectionService(selector)
        service.predict(matrices[0])
        service.clear_caches()
        assert not service.predict(matrices[0]).cached

    def test_latency_recorded(self, selector, matrices):
        service = SelectionService(selector)
        service.predict_batch(matrices)
        snap = service.telemetry.snapshot()
        assert snap["latency_ms"]["p50"] > 0
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"]
        assert snap["throughput_rps"] > 0


class TestBatchSemantics:
    def test_duplicate_items_hit_model_once(self, selector, matrices,
                                            monkeypatch):
        service = SelectionService(selector, feature_cache_size=0,
                                   decision_cache_size=0)
        shapes = []
        real = selector.predict

        def recording(X):
            shapes.append(X.shape[0])
            return real(X)

        monkeypatch.setattr(selector, "predict", recording)
        batch = [matrices[0]] * 5 + [matrices[1]] * 3
        decisions = service.predict_batch(batch)
        # Two unique structures → one model call over exactly two rows,
        # even with every cache disabled (dedupe, not caching).
        assert shapes == [2]
        assert len(decisions) == 8
        assert len({d.chosen for d in decisions[:5]}) == 1
        assert len({d.chosen for d in decisions[5:]}) == 1
        assert not any(d.cached for d in decisions)

    def test_cache_hits_not_billed_model_time(self, selector, matrices,
                                              monkeypatch):
        service = SelectionService(selector)
        real = selector.predict

        def slow(X):
            time.sleep(0.05)
            return real(X)

        monkeypatch.setattr(selector, "predict", slow)
        first = service.predict(matrices[0])
        assert not first.cached and first.latency_ms >= 50
        # Mixed batch: the cache hit must not be billed the miss's
        # model time, only the shared per-batch overhead.
        hit, miss = service.predict_batch([matrices[0], matrices[1]])
        assert hit.cached and not miss.cached
        assert miss.latency_ms >= 50
        assert hit.latency_ms < 50

    def test_registry_provenance_in_stats(self, selector, predictor, train,
                                          tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(selector, "sel", dataset=train)
        registry.save(predictor, "prd", dataset=train)
        service = SelectionService.from_registry(registry, "sel", "prd")
        models = service.stats()["service"]["models"]
        assert set(models) == {"selector", "predictor"}
        assert models["selector"] == {"name": "sel", "version": "v0001"}
        assert models["predictor"] == {"name": "prd", "version": "v0001"}

    def test_records_empty_for_in_process_models(self, selector):
        service = SelectionService(selector)
        assert service.records == {}
        assert service.stats()["service"]["models"] == {}


class TestFeedback:
    def test_regret_against_oracle(self, selector, train, matrices):
        service = SelectionService(selector)
        decision = service.predict(matrices[0])
        observed = {f: 1.0 for f in train.formats}
        observed[decision.chosen] = 1.2   # chosen is 20% worse than best
        event = service.record_feedback(decision.request_id, observed)
        assert event.regret == pytest.approx(0.2)
        snap = service.telemetry.snapshot()
        assert snap["feedback"]["count"] == 1
        assert snap["feedback"]["regret_mean"] == pytest.approx(0.2)
        assert snap["feedback"]["oracle_hit_rate"] == 0.0

    def test_oracle_hit(self, selector, train, matrices):
        service = SelectionService(selector)
        decision = service.predict(matrices[0])
        observed = {f: 2.0 for f in train.formats}
        observed[decision.chosen] = 1.0   # chosen is the fastest
        event = service.record_feedback(decision.request_id, observed)
        assert event.regret == 0.0
        assert event.optimal == decision.chosen
        snap = service.telemetry.snapshot()
        assert snap["feedback"]["oracle_hit_rate"] == 1.0

    def test_unknown_id_needs_chosen(self, selector, train):
        service = SelectionService(selector)
        observed = {f: 1.0 for f in train.formats}
        with pytest.raises(KeyError, match="unknown request id"):
            service.record_feedback("ghost", observed)
        event = service.record_feedback("ghost", observed,
                                        chosen=train.formats[0])
        assert event.regret == 0.0

    def test_stats_distributions(self, selector, train, matrices):
        service = SelectionService(selector)
        decision = service.predict(matrices[0])
        observed = {f: 1.0 + i for i, f in enumerate(train.formats)}
        service.record_feedback(decision.request_id, observed)
        stats = service.stats()
        assert stats["service"]["feedback"]["chosen_distribution"] == {
            decision.chosen: 1
        }
        assert stats["service"]["feedback"]["optimal_distribution"] == {
            train.formats[0]: 1
        }


class TestThreads:
    def test_concurrent_predict_and_feedback(self, selector, train, matrices):
        service = SelectionService(selector)
        observed = {f: 1.0 for f in train.formats}
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(25):
                    m = matrices[int(rng.integers(len(matrices)))]
                    decision = service.predict(m)
                    service.record_feedback(decision.request_id, observed)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = service.telemetry.snapshot()
        assert snap["requests"] == 100
        assert snap["feedback"]["count"] == 100


class TestSimulatorBackend:
    @pytest.fixture(scope="class")
    def simulator(self):
        from repro.gpu import DEVICES, SpMVExecutor

        return SpMVExecutor(DEVICES["v100"], "single", seed=0)

    def test_simulator_alone_backs_indirect(self, simulator, matrices):
        service = SelectionService(simulator=simulator, mode="indirect")
        decision = service.predict(matrices[0])
        # The pick is the simulator's own fastest feasible format.
        est = {
            fmt: simulator.estimate(matrices[0], fmt).seconds
            for fmt in service.formats
        }
        assert decision.chosen == min(est, key=est.get)
        assert decision.predicted_times[decision.chosen] == est[decision.chosen]

    def test_infeasible_formats_masked(self, simulator, matrices):
        from repro.gpu import DEVICES, SpMVExecutor

        strict = SpMVExecutor(DEVICES["k40c"], "single",
                              ell_padding_limit=1.01)
        service = SelectionService(simulator=strict, mode="indirect")
        skewed = next(m for m in matrices
                      if strict.profile(m).nnz_max > 2 * strict.profile(m).nnz_mu)
        decision = service.predict(skewed)
        assert decision.predicted_times["ell"] == np.inf
        assert decision.chosen != "ell"

    def test_dict_input_requires_predictor(self, simulator, matrices):
        service = SelectionService(simulator=simulator, mode="indirect")
        with pytest.raises(ValueError, match="matrix inputs"):
            service.predict(extract_features(matrices[0]))

    def test_hybrid_with_simulator_times(self, selector, simulator, matrices):
        service = SelectionService(selector, simulator=simulator, mode="hybrid")
        decision = service.predict(matrices[1])
        assert decision.direct_choice in service.formats
        assert decision.predicted_times is not None

    def test_decision_cache_keyed_by_structure(self, simulator, matrices):
        service = SelectionService(simulator=simulator, mode="indirect")
        first = service.predict(matrices[2])
        again = service.predict(matrices[2])
        assert again.cached and not first.cached
        assert again.chosen == first.chosen

    def test_stats_surface(self, simulator, matrices):
        service = SelectionService(simulator=simulator, mode="indirect")
        service.predict(matrices[0])
        assert service.stats()["service"]["simulator"] == {
            "device": "Tesla V100",
            "precision": "single",
        }


class TestConfigurationDecisions:
    """The Configuration-first decision surface (repro.tuning)."""

    @pytest.fixture(scope="class")
    def simulator(self):
        from repro.gpu import DEVICES, SpMVExecutor

        return SpMVExecutor(DEVICES["k40c"], "single", seed=0)

    def test_decision_carries_full_configuration(self, simulator, matrices):
        from repro import tuning

        service = SelectionService(simulator=simulator, mode="indirect")
        decision = service.predict(matrices[0])
        assert isinstance(decision.config, tuning.Configuration)
        assert decision.config.key == decision.chosen
        wire = decision.to_dict()
        # Both keys for the deprecation cycle: "format" is the base
        # format name, "config" the structured configuration.
        assert wire["format"] == decision.config.format
        assert wire["config"]["key"] == decision.chosen
        assert wire["config"]["params"] == dict(decision.config.resolved_params)

    def test_tuned_vocabulary_round_trips(self, simulator, matrices):
        """A selector fitted over the joint space serves config keys."""
        from repro import tuning
        from repro.bench.campaign import run_campaign
        from repro.matrices import SyntheticCorpus

        corpus = list(SyntheticCorpus(scale=0.005, seed=5, max_nnz=50_000))
        ds = run_campaign(corpus, simulator.device, "single", tuned=True,
                          reps=4, seed=0, workers=1).to_dataset()
        selector = FormatSelector("decision_tree", feature_set="set123").fit(ds)
        service = SelectionService(selector)
        assert service.formats == tuning.tuned_space()
        decision = service.predict(matrices[0])
        assert decision.config is not None
        assert decision.to_dict()["format"] == decision.config.format
        assert tuning.Configuration.from_key(decision.chosen) == decision.config

    def test_decision_cache_keyed_by_vocabulary(self, simulator, matrices):
        """Two configs of one format must never alias a cache entry."""
        from repro import tuning

        service = SelectionService(simulator=simulator, mode="indirect")
        first = service.predict(matrices[0])
        assert service.predict(matrices[0]).cached
        # Swap the vocabulary in place (what a hot-swapped joint-space
        # model would do); the cached decision belongs to the old
        # vocabulary and its index must not be served against the new.
        service.formats = tuning.tuned_space()
        service._format_configs = tuple(
            tuning.Configuration.from_key(k) for k in service.formats
        )
        swapped = service.predict(matrices[0])
        assert not swapped.cached
        assert swapped.formats == tuning.tuned_space()
        assert first.formats != swapped.formats

    def test_decision_cache_keyed_by_energy_weight(self, simulator, matrices):
        service = SelectionService(simulator=simulator, mode="indirect")
        assert not service.predict(matrices[0]).cached
        assert service.predict(matrices[0]).cached
        service.energy_weight = 0.5
        assert not service.predict(matrices[0]).cached

    def test_energy_weight_validated_and_in_stats(self, simulator, matrices):
        with pytest.raises(ValueError, match="energy_weight"):
            SelectionService(simulator=simulator, mode="indirect",
                             energy_weight=1.5)
        service = SelectionService(simulator=simulator, mode="indirect",
                                   energy_weight=0.25)
        service.predict(matrices[0])
        assert service.stats()["service"]["energy_weight"] == 0.25

    def test_energy_weight_ranks_by_scalarised_score(self, simulator, matrices):
        """w=1 ranks purely by the energy proxy, masked cells stay inf."""
        from repro import tuning

        time_first = SelectionService(simulator=simulator, mode="indirect")
        energy_first = SelectionService(simulator=simulator, mode="indirect",
                                        energy_weight=1.0)
        m = matrices[0]
        td = time_first.predict(m)
        ed = energy_first.predict(m)
        prof = simulator.profile(m)
        joules = {
            fmt: tuning.energy_joules(
                simulator.estimate(m, fmt), simulator.device
            )
            for fmt in energy_first.formats
            if np.isfinite(td.predicted_times[fmt])
        }
        assert ed.chosen == min(joules, key=joules.get)

    def test_feedback_accepts_configurations_and_warns_on_bare(
        self, simulator, matrices
    ):
        import warnings

        from repro import tuning
        from repro._compat import reset_warning_registry

        service = SelectionService(simulator=simulator, mode="indirect")
        times = {"csr?lanes=8": 1.0, "csr": 2.0}
        event = service.record_feedback(
            "a", times, chosen=tuning.Configuration("csr", {"lanes": 8})
        )
        assert event.chosen == "csr?lanes=8"
        event = service.record_feedback(
            "b", times, chosen={"format": "csr", "params": {"lanes": 8}}
        )
        assert event.chosen == "csr?lanes=8"
        event = service.record_feedback("c", times, chosen="csr?lanes=8")
        assert event.chosen == "csr?lanes=8"
        reset_warning_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.record_feedback("d", times, chosen="csr")
        assert any(w.category is DeprecationWarning for w in caught)
        # Once per process: the next bare string is silent.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.record_feedback("e", times, chosen="csr")
        assert not any(w.category is DeprecationWarning for w in caught)
