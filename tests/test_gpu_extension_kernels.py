"""Behavioural tests for the DIA/BSR kernel cost models."""

import pytest

from repro.gpu import KEPLER_K40C, PASCAL_P100, estimate_time, profile_matrix
from repro.matrices import banded, fem_blocks, multi_diagonal, random_uniform


@pytest.fixture(scope="module")
def band_profile():
    return profile_matrix(banded(80_000, 80_000, bandwidth=9, fill=1.0, seed=0))


@pytest.fixture(scope="module")
def scattered_profile():
    return profile_matrix(random_uniform(40_000, 40_000, nnz=400_000, seed=0))


class TestDIAModel:
    def test_dia_wins_on_pure_band(self, band_profile):
        dia = estimate_time("dia", band_profile, KEPLER_K40C, "single").seconds
        for other in ("csr", "ell", "csr5"):
            assert dia < estimate_time(other, band_profile, KEPLER_K40C, "single").seconds

    def test_dia_dies_on_scatter(self, scattered_profile):
        dia = estimate_time("dia", scattered_profile, KEPLER_K40C, "single").seconds
        csr = estimate_time("csr", scattered_profile, KEPLER_K40C, "single").seconds
        assert dia > 10 * csr

    def test_dia_bytes_scale_with_diagonals(self):
        few = profile_matrix(multi_diagonal(20_000, offsets=(-1, 0, 1), seed=0))
        many = profile_matrix(
            multi_diagonal(20_000, offsets=tuple(range(-10, 11)), seed=0)
        )
        b_few = estimate_time("dia", few, KEPLER_K40C, "single").matrix_bytes
        b_many = estimate_time("dia", many, KEPLER_K40C, "single").matrix_bytes
        assert b_many > 5 * b_few


class TestBSRModel:
    def test_bsr_competitive_on_blocks(self):
        prof = profile_matrix(fem_blocks(4000, 16, block_fill=0.9, seed=1))
        bsr = estimate_time("bsr", prof, KEPLER_K40C, "single").seconds
        csr = estimate_time("csr", prof, KEPLER_K40C, "single").seconds
        assert bsr < 1.2 * csr

    def test_bsr_pays_fill_on_scatter(self, scattered_profile):
        bsr = estimate_time("bsr", scattered_profile, KEPLER_K40C, "single")
        csr = estimate_time("csr", scattered_profile, KEPLER_K40C, "single")
        # Near-one-entry-per-block: ~16x value traffic.
        assert bsr.matrix_bytes > 4 * csr.matrix_bytes

    def test_pascal_faster(self, band_profile):
        for fmt in ("dia", "bsr"):
            k = estimate_time(fmt, band_profile, KEPLER_K40C, "single").seconds
            p = estimate_time(fmt, band_profile, PASCAL_P100, "single").seconds
            assert p < k

    def test_double_slower(self, band_profile):
        for fmt in ("dia", "bsr"):
            s = estimate_time(fmt, band_profile, KEPLER_K40C, "single").seconds
            d = estimate_time(fmt, band_profile, KEPLER_K40C, "double").seconds
            assert d > s
