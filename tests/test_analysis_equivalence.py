"""Bit-for-bit equivalence of the one-pass analyzer vs the frozen two-pass.

The unified :func:`repro.analysis.analyze_matrix` must reproduce the
historical back-to-back ``profile_matrix`` + ``extract_features``
results *exactly* — same floats to the last bit, not approximately —
because labels, digests and every downstream model are keyed off them.
The pre-refactor implementations are frozen in
:mod:`repro.analysis` precisely to anchor this test.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    MatrixAnalysis,
    analyze_matrix,
    extract_features_two_pass,
    profile_matrix_two_pass,
)
from repro.features import ALL_FEATURES, extract_features
from repro.formats import COOMatrix
from repro.gpu import profile_matrix
from repro.matrices import SyntheticCorpus, banded, power_law, random_uniform


def _bits(x: float) -> bytes:
    return np.float64(x).tobytes()


def _assert_profiles_identical(p_new, p_old) -> None:
    for f in dataclasses.fields(p_old):
        a, b = getattr(p_new, f.name), getattr(p_old, f.name)
        if isinstance(b, float):
            assert _bits(a) == _bits(b), f"profile field {f.name}: {a!r} != {b!r}"
        else:
            assert a == b, f"profile field {f.name}: {a!r} != {b!r}"


def _assert_features_identical(f_new, f_old) -> None:
    assert list(f_new) == list(f_old)
    assert set(f_old) == set(ALL_FEATURES)
    for name in f_old:
        assert _bits(f_new[name]) == _bits(f_old[name]), (
            f"feature {name}: {f_new[name]!r} != {f_old[name]!r}"
        )


def _edge_cases():
    rng = np.random.default_rng(99)
    dense = (rng.random((12, 9)) < 0.3) * rng.standard_normal((12, 9))
    dense[3] = 0.0  # an all-zero row in the middle
    dense[7] = 0.0
    return {
        "empty": COOMatrix.empty((4, 4)),
        "zero_rows_shape": COOMatrix.empty((0, 5)),
        "single_row": COOMatrix.from_dense(np.ones((1, 7))),
        "single_col": COOMatrix.from_dense(np.ones((7, 1))),
        "single_entry": COOMatrix.from_dense(np.eye(1)),
        "with_empty_rows": COOMatrix.from_dense(dense),
        "all_rows_empty": COOMatrix.empty((6, 3)),
        "banded": banded(48, 48, bandwidth=3, fill=0.8, seed=1),
        "power_law": power_law(60, 50, nnz=400, seed=2),
        "uniform": random_uniform(40, 55, nnz=300, seed=3),
    }


@pytest.mark.parametrize("name", sorted(_edge_cases()))
def test_edge_case_bit_identical(name):
    matrix = _edge_cases()[name]
    analysis = analyze_matrix(matrix)
    _assert_profiles_identical(analysis.profile, profile_matrix_two_pass(matrix))
    _assert_features_identical(analysis.features, extract_features_two_pass(matrix))


def test_corpus_bit_identical():
    corpus = SyntheticCorpus(scale=0.005, seed=3, max_nnz=60_000)
    matrices = [entry.build() for entry in corpus]
    assert matrices, "corpus sample must not be empty"
    for matrix in matrices:
        analysis = analyze_matrix(matrix)
        _assert_profiles_identical(analysis.profile, profile_matrix_two_pass(matrix))
        _assert_features_identical(analysis.features, extract_features_two_pass(matrix))


def test_public_wrappers_delegate(small_coo):
    analysis = analyze_matrix(small_coo)
    assert profile_matrix(small_coo) == analysis.profile
    assert extract_features(small_coo) == analysis.features


def test_digest_matches_two_pass(small_coo):
    assert analyze_matrix(small_coo).profile.digest == (
        profile_matrix_two_pass(small_coo).digest
    )


def test_analysis_is_frozen(small_coo):
    analysis = analyze_matrix(small_coo)
    assert isinstance(analysis, MatrixAnalysis)
    with pytest.raises(dataclasses.FrozenInstanceError):
        analysis.features = {}
