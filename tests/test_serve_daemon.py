"""JSON-lines daemon protocol tests plus the registry/serve CLI flow."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import FormatSelector
from repro.features import extract_features
from repro.serve import ModelRegistry, SelectionService, handle_request, serve_jsonl


@pytest.fixture(scope="module")
def train(mini_dataset):
    return mini_dataset.drop_coo_best()


@pytest.fixture(scope="module")
def selector(train):
    return FormatSelector("decision_tree", feature_set="set123").fit(train)


@pytest.fixture(scope="module")
def matrices(mini_corpus):
    return [entry.build() for entry in list(mini_corpus)[:3]]


@pytest.fixture
def service(selector):
    return SelectionService(selector)


class TestProtocol:
    def test_predict_features(self, service, matrices, train):
        response = handle_request(
            service,
            {"op": "predict", "id": "q1",
             "features": extract_features(matrices[0])},
        )
        assert response["ok"] is True
        assert response["id"] == "q1"
        assert response["format"] in train.formats
        assert response["latency_ms"] >= 0

    def test_predict_vector(self, service, train):
        response = handle_request(
            service,
            {"op": "predict", "vector": train.feature_array[0].tolist()},
        )
        assert response["ok"] is True

    def test_predict_path(self, service, matrices, train, tmp_path):
        from repro.matrices import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(matrices[0], path)
        response = handle_request(
            service, {"op": "predict", "path": str(path)}
        )
        assert response["ok"] is True
        assert response["format"] in train.formats

    def test_predict_source_validation(self, service):
        assert handle_request(service, {"op": "predict"})["ok"] is False
        both = handle_request(
            service, {"op": "predict", "vector": [], "features": {}}
        )
        assert both["ok"] is False
        assert "exactly one" in both["error"]

    def test_feedback_and_stats(self, service, matrices, train):
        predict = handle_request(
            service,
            {"op": "predict", "id": "f1",
             "features": extract_features(matrices[0])},
        )
        observed = {f: 1.0 for f in train.formats}
        observed[predict["format"]] = 1.5
        feedback = handle_request(
            service, {"op": "feedback", "id": "f1", "times": observed}
        )
        assert feedback["ok"] is True
        assert feedback["regret"] == pytest.approx(0.5)
        stats = handle_request(service, {"op": "stats"})
        assert stats["ok"] is True
        assert stats["stats"]["feedback"]["count"] == 1

    def test_unknown_op(self, service):
        response = handle_request(service, {"op": "levitate"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_errors_do_not_crash(self, service):
        assert handle_request(service, ["not", "a", "dict"])["ok"] is False
        assert handle_request(
            service, {"op": "feedback", "id": "nope", "times": {}}
        )["ok"] is False


class TestServeLoop:
    def test_loop_end_to_end(self, service, matrices, train):
        lines = [
            json.dumps({"op": "predict", "id": f"q{i}",
                        "features": extract_features(m)})
            for i, m in enumerate(matrices)
        ]
        lines += ["", "garbage", json.dumps({"op": "stats"}),
                  json.dumps({"op": "shutdown"}),
                  json.dumps({"op": "predict"})]  # after shutdown: unreached
        out = io.StringIO()
        served = serve_jsonl(service, lines, out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        # Six responses (3 predicts + bad JSON + stats + shutdown; blank
        # skipped, tail unread) but only five *served* requests — the
        # malformed line is a protocol error, not a served request.
        assert len(responses) == 6
        assert served == 5
        assert [r["ok"] for r in responses] == [True] * 3 + [False, True, True]
        assert responses[-1]["shutdown"] is True
        assert service.telemetry.n_protocol_errors == 1
        assert service.stats()["protocol_errors"] == 1

    def test_malformed_lines_do_not_consume_budget(self, service, train):
        """An error flood must not truncate the daemon via max_requests."""
        request = json.dumps(
            {"op": "predict", "vector": train.feature_array[0].tolist()}
        )
        lines = ["{broken", request, "%%%", request, "{", request]
        out = io.StringIO()
        served = serve_jsonl(service, lines, out, max_requests=3)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert served == 3                      # every valid request served
        assert len(responses) == 6              # errors still answered
        assert [r["ok"] for r in responses] == [False, True] * 3
        assert service.telemetry.n_protocol_errors == 3

    def test_max_requests(self, service, train):
        request = json.dumps(
            {"op": "predict", "vector": train.feature_array[0].tolist()}
        )
        out = io.StringIO()
        served = serve_jsonl(service, [request] * 10, out, max_requests=4)
        assert served == 4


class TestCLI:
    @pytest.fixture(scope="class")
    def registry_dir(self, mini_dataset, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_registry")
        dataset_path = root / "ds.npz"
        mini_dataset.save(dataset_path)
        registry = root / "registry"
        rc = main([
            "registry", "save", "--registry", str(registry),
            "--name", "sel", "--dataset", str(dataset_path),
            "--kind", "selector", "--model", "decision_tree",
            "--feature-set", "set123", "--promote",
        ])
        assert rc == 0
        rc = main([
            "registry", "save", "--registry", str(registry),
            "--name", "prd", "--dataset", str(dataset_path),
            "--kind", "predictor", "--model", "decision_tree",
            "--feature-set", "set123", "--promote",
        ])
        assert rc == 0
        return registry

    @pytest.fixture(scope="class")
    def mtx_files(self, mini_corpus, tmp_path_factory):
        from repro.matrices import write_matrix_market

        root = tmp_path_factory.mktemp("cli_mtx")
        paths = []
        for entry in list(mini_corpus)[:3]:
            path = root / f"{entry.name}.mtx"
            write_matrix_market(entry.build(), path)
            paths.append(path)
        return paths

    def test_registry_list(self, registry_dir, capsys):
        assert main(["registry", "list", "--registry", str(registry_dir)]) == 0
        out = capsys.readouterr().out
        assert "sel:v0001" in out and "prd:v0001" in out
        assert out.count(" *") == 2  # both promoted

    def test_registry_promote_unknown_fails(self, registry_dir, capsys):
        rc = main(["registry", "promote", "--registry", str(registry_dir),
                   "--name", "sel", "--version", "v0099"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_serve_one_shot_matches_cold_load(self, registry_dir, mtx_files,
                                              mini_dataset, capsys):
        # CLI (fresh registry load) must agree with the in-process model.
        rc = main(["serve", "--registry", str(registry_dir),
                   "--selector", "sel", "--predictor", "prd",
                   "--mode", "hybrid", "--stats"]
                  + [str(p) for p in mtx_files])
        assert rc == 0
        out = capsys.readouterr().out
        service = SelectionService.from_registry(
            registry_dir, "sel", "prd", mode="hybrid"
        )
        from repro.matrices import read_matrix_market

        for path in mtx_files:
            expected = service.predict(read_matrix_market(path)).chosen
            assert f"{path.name}: {expected}" in out
        assert '"requests": 3' in out  # --stats telemetry block

    def test_serve_daemon_via_stdin(self, registry_dir, mtx_files,
                                    monkeypatch, capsys):
        requests = [
            json.dumps({"op": "predict", "id": "d0", "path": str(mtx_files[0])}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        rc = main(["serve", "--registry", str(registry_dir),
                   "--selector", "sel", "--daemon"])
        assert rc == 0
        responses = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert [r["ok"] for r in responses] == [True, True, True]
        assert responses[0]["id"] == "d0"
        assert responses[2]["shutdown"] is True

    def test_serve_requires_models_and_input(self, registry_dir, capsys):
        assert main(["serve", "--registry", str(registry_dir)]) == 1
        assert main(["serve", "--registry", str(registry_dir),
                     "--selector", "sel"]) == 1
        assert main(["serve", "--registry", str(registry_dir),
                     "--selector", "ghost", "--daemon"]) == 1


class TestObservability:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        from repro import obs

        obs.disable(reset=True)
        yield
        obs.disable(reset=True)

    def test_metrics_op_returns_snapshot(self, service, train):
        from repro.obs.export import SNAPSHOT_SCHEMA

        response = handle_request(service, {"op": "metrics"})
        assert response["ok"] is True
        assert response["metrics"]["schema"] == SNAPSHOT_SCHEMA

    def test_serve_counters_match_service_stats(self, service, matrices):
        """The obs mirrors and the ServiceTelemetry stats must agree."""
        from repro import obs

        obs.enable()
        lines = [
            json.dumps({"op": "predict", "features": extract_features(m)})
            for m in matrices * 2
        ]
        out = io.StringIO()
        served = serve_jsonl(service, lines, out)
        stats = service.stats()
        metrics = obs.snapshot()["metrics"]
        assert metrics["serve.requests"]["value"] == stats["requests"] == served
        assert metrics["serve.request_seconds"]["count"] == served
        hits = stats["decision_cache"]["hits"]
        assert metrics["serve.decision_cache_hits"]["value"] == hits

    def test_mid_session_metrics_snapshot_is_consistent(self, service, train):
        from repro import obs
        from repro.obs.export import check_snapshot

        obs.enable()
        lines = [
            json.dumps({"op": "predict",
                        "vector": train.feature_array[0].tolist()}),
            json.dumps({"op": "metrics"}),
        ]
        out = io.StringIO()
        serve_jsonl(service, lines, out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        snap = responses[1]["metrics"]
        # Taken inside serve.session/serve.request: both spans are open,
        # yet the snapshot must still be hierarchy-consistent.
        assert check_snapshot(snap) == []
        assert snap["spans"]["serve.session"]["open"] == 1
        assert snap["spans"]["serve.session/serve.request"]["open"] == 1

    def test_snapshot_every_emits_flight_records(self, service, train):
        from repro import obs
        from repro.obs.export import SNAPSHOT_SCHEMA

        events = []
        obs.enable(sink=lambda event, payload: events.append((event, payload)))
        request = json.dumps(
            {"op": "predict", "vector": train.feature_array[0].tolist()}
        )
        out = io.StringIO()
        served = serve_jsonl(service, [request] * 5, out, snapshot_every=2)
        assert served == 5
        snaps = [p for e, p in events if e == "serve.snapshot"]
        # After requests 2 and 4, plus the final one at loop exit.
        assert len(snaps) == 3
        assert all(s["schema"] == SNAPSHOT_SCHEMA for s in snaps)
        # The final snapshot reports the closed session span.
        assert "open" not in snaps[-1]["spans"]["serve.session"]

    def test_snapshot_every_validates(self, service):
        with pytest.raises(ValueError):
            serve_jsonl(service, [], io.StringIO(), snapshot_every=0)

    def test_protocol_errors_are_spanned_and_counted(self, service, train):
        """Malformed lines hit the serve.request span and serve.errors,
        and don't advance the snapshot_every flight recorder."""
        from repro import obs

        events = []
        obs.enable(sink=lambda event, payload: events.append(event))
        request = json.dumps(
            {"op": "predict", "vector": train.feature_array[0].tolist()}
        )
        lines = ["garbage1", request, "garbage2", "garbage3", request]
        out = io.StringIO()
        served = serve_jsonl(service, lines, out, snapshot_every=2)
        assert served == 2
        snap = obs.snapshot()
        spans = snap["spans"]["serve.session/serve.request"]
        assert spans["count"] == 5              # every handled line spanned
        assert snap["metrics"]["serve.errors"]["value"] == 3
        # One snapshot at served==2 plus the final one at loop exit; the
        # three garbage lines advanced nothing.
        assert events.count("serve.snapshot") == 2


class TestConfigProtocol:
    """Wire-level Configuration surface of the daemon."""

    def test_predict_response_carries_config(self, service, matrices):
        from repro import tuning

        response = handle_request(
            service,
            {"op": "predict", "id": "c1",
             "features": extract_features(matrices[0])},
        )
        assert response["ok"] is True
        config = response["config"]
        # "format" stays the bare base name for legacy clients; the
        # structured configuration round-trips through its key.
        assert response["format"] == config["format"]
        parsed = tuning.Configuration.from_key(config["key"])
        assert parsed.as_dict() == config

    def test_feedback_accepts_config_alias(self, service, train):
        times = {f: 1.0 for f in train.formats}
        response = handle_request(
            service,
            {"op": "feedback", "id": "cfg-1", "times": times,
             "config": {"format": train.formats[0], "params": {}}},
        )
        assert response["ok"] is True
        assert response["regret"] == pytest.approx(0.0)
