"""Tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.gpu import NoiseModel


class TestStructuralFactor:
    def test_deterministic(self):
        nm = NoiseModel(0.05, 0.0, seed=1)
        a = nm.structural_factor(b"digest", "csr", "K40c", "single")
        b = nm.structural_factor(b"digest", "csr", "K40c", "single")
        assert a == b

    def test_varies_with_every_key_component(self):
        nm = NoiseModel(0.05, 0.0, seed=1)
        base = nm.structural_factor(b"digest", "csr", "K40c", "single")
        assert nm.structural_factor(b"other", "csr", "K40c", "single") != base
        assert nm.structural_factor(b"digest", "ell", "K40c", "single") != base
        assert nm.structural_factor(b"digest", "csr", "P100", "single") != base
        assert nm.structural_factor(b"digest", "csr", "K40c", "double") != base

    def test_seed_gives_new_hardware_instance(self):
        a = NoiseModel(0.05, 0.0, seed=1).structural_factor(b"d", "csr", "K", "single")
        b = NoiseModel(0.05, 0.0, seed=2).structural_factor(b"d", "csr", "K", "single")
        assert a != b

    def test_zero_sigma_is_identity(self):
        nm = NoiseModel(0.0, 0.0)
        assert nm.structural_factor(b"d", "csr", "K", "single") == 1.0

    def test_mean_is_approximately_one(self):
        nm = NoiseModel(0.10, 0.0, seed=0)
        factors = [
            nm.structural_factor(i.to_bytes(4, "little"), "csr", "K", "single")
            for i in range(2000)
        ]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.02)
        assert all(f > 0 for f in factors)


class TestRunJitter:
    def test_shape_and_positivity(self):
        nm = NoiseModel(0.0, 0.05)
        f = nm.run_factors(np.random.default_rng(0), 100)
        assert f.shape == (100,)
        assert np.all(f > 0)

    def test_zero_sigma(self):
        nm = NoiseModel(0.0, 0.0)
        np.testing.assert_array_equal(nm.run_factors(np.random.default_rng(0), 5), 1.0)

    def test_mean_one(self):
        nm = NoiseModel(0.0, 0.10)
        f = nm.run_factors(np.random.default_rng(1), 100_000)
        assert f.mean() == pytest.approx(1.0, abs=0.01)


def test_negative_sigma_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        NoiseModel(-0.1, 0.0)
    with pytest.raises(ValueError, match="non-negative"):
        NoiseModel(0.0, -0.1)
