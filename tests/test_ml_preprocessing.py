"""Tests for scaling, log transform, label encoding, pipelines."""

import numpy as np
import pytest

from repro.ml import (
    LabelEncoder,
    Log1pTransformer,
    NotFittedError,
    Pipeline,
    StandardScaler,
    clone,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.standard_normal((200, 4)) * 7 + 3
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-12)

    def test_inverse_transform(self, rng):
        X = rng.standard_normal((50, 3)) * 2 + 1
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_constant_feature_is_noop(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)
        assert np.all(np.isfinite(Z))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_without_mean_or_std(self, rng):
        X = rng.standard_normal((30, 2)) + 5
        no_mean = StandardScaler(with_mean=False).fit_transform(X)
        assert no_mean.mean() > 1  # mean untouched
        no_std = StandardScaler(with_std=False).fit_transform(X)
        np.testing.assert_allclose(no_std.mean(axis=0), 0, atol=1e-12)


class TestLog1p:
    def test_applies_log1p(self):
        X = np.array([[0.0, 10.0], [np.e - 1.0, 0.0]])
        Z = Log1pTransformer().fit_transform(X)
        assert Z[1, 0] == pytest.approx(1.0)
        assert Z[0, 0] == 0.0

    def test_selected_columns_only(self):
        X = np.array([[np.e - 1.0, np.e - 1.0]])
        Z = Log1pTransformer(columns=[1]).fit_transform(X)
        assert Z[0, 0] == pytest.approx(np.e - 1.0)
        assert Z[0, 1] == pytest.approx(1.0)

    def test_clips_negatives(self):
        Z = Log1pTransformer().fit_transform(np.array([[-5.0]]))
        assert Z[0, 0] == 0.0

    def test_does_not_mutate_input(self):
        X = np.ones((2, 2))
        Log1pTransformer().fit_transform(X)
        np.testing.assert_array_equal(X, np.ones((2, 2)))


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["csr", "ell", "csr", "hyb"])
        idx = enc.transform(["ell", "csr", "hyb"])
        assert idx.tolist() == [1, 0, 2]
        assert enc.inverse_transform(idx).tolist() == ["ell", "csr", "hyb"]

    def test_classes_sorted(self):
        enc = LabelEncoder().fit(["z", "a", "m"])
        assert enc.classes_.tolist() == ["a", "m", "z"]

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["c"])

    def test_out_of_range_index_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="range"):
            enc.inverse_transform(np.array([5]))


class TestPipeline:
    def test_chains_transformers(self, rng):
        from repro.ml import DecisionTreeClassifier

        X = np.abs(rng.standard_normal((60, 3))) * 100
        y = (X[:, 0] > np.median(X[:, 0])).astype(int)
        pipe = Pipeline(
            [
                ("log", Log1pTransformer()),
                ("scale", StandardScaler()),
                ("tree", DecisionTreeClassifier(max_depth=3)),
            ]
        )
        pipe.fit(X, y)
        assert pipe.predict(X).shape == y.shape
        assert pipe.predict_proba(X).shape == (60, 2)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Pipeline([])

    def test_clone_does_not_share_steps(self, rng):
        from repro.ml import DecisionTreeClassifier

        pipe = Pipeline(
            [("scale", StandardScaler()), ("tree", DecisionTreeClassifier())]
        )
        X = rng.standard_normal((20, 2))
        y = (X[:, 0] > 0).astype(int)
        pipe.fit(X, y)
        twin = clone(pipe)
        assert twin.steps[0][1] is not pipe.steps[0][1]
        assert not hasattr(twin.steps[1][1], "root_")
