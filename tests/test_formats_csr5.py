"""Unit tests for the CSR5 format."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSR5Matrix, CSRMatrix, FormatError


@pytest.fixture
def csr5(small_coo):
    return CSR5Matrix.from_coo(small_coo)


class TestTiling:
    def test_tile_count(self, small_coo):
        m = CSR5Matrix.from_coo(small_coo, omega=4, sigma=2)
        expected = -(-small_coo.nnz // 8)
        assert m.n_tiles == expected

    def test_perm_is_a_permutation(self, csr5):
        assert np.array_equal(np.sort(csr5.perm), np.arange(csr5.nnz))

    def test_full_tiles_are_transposed(self, small_coo):
        omega, sigma = 4, 2
        m = CSR5Matrix.from_coo(small_coo, omega=omega, sigma=sigma)
        csr = CSRMatrix.from_coo(small_coo)
        tile = omega * sigma
        if m.nnz >= tile:
            # Storage slot (step, lane) of tile 0 holds CSR element
            # lane * sigma + step.
            block = m.perm[:tile].reshape(sigma, omega)
            expected = np.arange(tile).reshape(omega, sigma).T
            np.testing.assert_array_equal(block, expected)

    def test_partial_tail_keeps_csr_order(self, small_coo):
        m = CSR5Matrix.from_coo(small_coo, omega=16, sigma=16)
        tile = 16 * 16
        tail = m.perm[(m.nnz // tile) * tile :]
        assert np.all(np.diff(tail) == 1) or tail.size <= 1

    def test_tile_ptr_rows_monotone(self, csr5):
        assert np.all(np.diff(csr5.tile_ptr) >= 0)
        assert csr5.tile_ptr[-1] == csr5.n_rows

    def test_bit_flag_counts_rows(self, small_coo):
        m = CSR5Matrix.from_coo(small_coo)
        bits = np.unpackbits(m.bit_flag)[: m.nnz]
        nonempty_rows = int((small_coo.row_lengths() > 0).sum())
        assert bits.sum() == nonempty_rows

    def test_rejects_bad_omega(self, small_coo):
        with pytest.raises(FormatError, match="positive"):
            CSR5Matrix.from_coo(small_coo, omega=0)


class TestBehaviour:
    @pytest.mark.parametrize("omega,sigma", [(2, 2), (4, 3), (32, 16), (8, 1)])
    def test_spmv_matches_dense(self, rng, small_coo, omega, sigma):
        m = CSR5Matrix.from_coo(small_coo, omega=omega, sigma=sigma)
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(m.spmv(x), small_coo.to_dense() @ x, atol=1e-12)

    def test_spmv_on_skewed(self, rng, skewed_coo):
        m = CSR5Matrix.from_coo(skewed_coo, omega=4, sigma=4)
        x = rng.standard_normal(skewed_coo.n_cols)
        np.testing.assert_allclose(m.spmv(x), skewed_coo.to_dense() @ x, atol=1e-12)

    def test_roundtrip(self, small_coo, csr5):
        np.testing.assert_allclose(csr5.to_coo().to_dense(), small_coo.to_dense())

    def test_empty_matrix(self):
        m = CSR5Matrix.from_coo(COOMatrix.empty((3, 3)))
        assert m.n_tiles == 0
        np.testing.assert_array_equal(m.spmv(np.ones(3)), np.zeros(3))

    def test_memory_exceeds_csr_by_metadata_only(self, small_coo, csr5):
        csr = CSRMatrix.from_coo(small_coo)
        extra = csr5.memory_bytes() - csr.memory_bytes()
        assert 0 < extra < 0.5 * csr.memory_bytes() + 64

    def test_from_csr_equivalent(self, small_coo):
        a = CSR5Matrix.from_coo(small_coo)
        b = CSR5Matrix.from_csr(CSRMatrix.from_coo(small_coo))
        np.testing.assert_array_equal(a.tile_col, b.tile_col)
        np.testing.assert_allclose(a.tile_val, b.tile_val)
