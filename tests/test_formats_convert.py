"""Tests for the cross-format conversion hub."""

import numpy as np
import pytest

from repro.formats import (
    ADVANCED_FORMATS,
    BASIC_FORMATS,
    EXTENSION_FORMATS,
    FORMAT_NAMES,
    FORMATS,
    COOMatrix,
    as_format,
)


def test_registry_is_complete():
    assert set(FORMAT_NAMES) | set(EXTENSION_FORMATS) == set(FORMATS)
    assert set(BASIC_FORMATS) | set(ADVANCED_FORMATS) | {"coo", "csr"} == set(FORMAT_NAMES)


@pytest.mark.parametrize("src", FORMAT_NAMES)
@pytest.mark.parametrize("dst", FORMAT_NAMES)
def test_every_pairwise_conversion(rng, small_coo, src, dst):
    a = as_format(small_coo, src)
    b = as_format(a, dst)
    assert b.name == dst
    np.testing.assert_allclose(b.to_dense(), small_coo.to_dense())


def test_identity_conversion_returns_same_object(small_coo):
    csr = as_format(small_coo, "csr")
    assert as_format(csr, "csr") is csr


def test_kwargs_force_reconstruction(small_coo):
    hyb1 = as_format(small_coo, "hyb")
    hyb2 = as_format(hyb1, "hyb", threshold=1)
    assert hyb2 is not hyb1
    assert hyb2.threshold <= 1


def test_unknown_format_rejected(small_coo):
    with pytest.raises(KeyError, match="unknown format"):
        as_format(small_coo, "sell")


def test_conversion_preserves_dtype(small_coo):
    single = small_coo.astype(np.float32)
    for name in FORMAT_NAMES:
        assert as_format(single, name).dtype == np.float32
