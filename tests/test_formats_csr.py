"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, FormatError


@pytest.fixture
def csr(small_coo):
    return CSRMatrix.from_coo(small_coo)


class TestConstruction:
    def test_from_coo_roundtrip(self, small_coo, csr):
        np.testing.assert_allclose(csr.to_dense(), small_coo.to_dense())

    def test_indptr_invariants(self, csr):
        assert csr.indptr[0] == 0
        assert csr.indptr[-1] == csr.nnz
        assert np.all(np.diff(csr.indptr) >= 0)

    def test_columns_sorted_within_rows(self, csr):
        for i in range(csr.n_rows):
            cols, _ = csr.row_slice(i)
            assert np.all(np.diff(cols) > 0)

    def test_shares_arrays_with_canonical_coo(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        # Zero-copy: CSR's indices/data are the canonical COO arrays.
        assert csr.indices.base is small_coo.col or csr.indices is small_coo.col
        assert csr.data.base is small_coo.val or csr.data is small_coo.val

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError, match="length"):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            CSRMatrix((3, 2), [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_rejects_wrong_terminal_indptr(self):
        with pytest.raises(FormatError, match="end at nnz"):
            CSRMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_rejects_column_out_of_bounds(self):
        with pytest.raises(FormatError, match="out of bounds"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 4], [1.0, 2.0])

    def test_empty_rows_allowed(self):
        csr = CSRMatrix((3, 3), [0, 0, 2, 2], [0, 1], [1.0, 2.0])
        assert csr.row_lengths().tolist() == [0, 2, 0]


class TestBehaviour:
    def test_spmv_matches_dense(self, rng, csr):
        x = rng.standard_normal(csr.n_cols)
        np.testing.assert_allclose(csr.spmv(x), csr.to_dense() @ x)

    def test_spmv_with_empty_rows(self, rng):
        csr = CSRMatrix((4, 3), [0, 0, 2, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        x = rng.standard_normal(3)
        expected = csr.to_dense() @ x
        np.testing.assert_allclose(csr.spmv(x), expected)
        assert csr.spmv(x)[0] == 0.0

    def test_spmv_empty_matrix(self):
        csr = CSRMatrix.from_coo(COOMatrix.empty((3, 4)))
        np.testing.assert_array_equal(csr.spmv(np.ones(4)), np.zeros(3))

    def test_to_coo_roundtrip(self, csr, small_coo):
        back = csr.to_coo()
        np.testing.assert_allclose(back.to_dense(), small_coo.to_dense())

    def test_memory_accounting(self, csr):
        expected = csr.nnz * (4 + 8) + (csr.n_rows + 1) * 4
        assert csr.memory_bytes() == expected

    def test_row_slice_views(self, csr):
        cols, vals = csr.row_slice(0)
        assert cols.size == vals.size == csr.row_lengths()[0]
