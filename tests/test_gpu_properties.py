"""Property-based tests of the GPU simulator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMAT_NAMES, COOMatrix
from repro.gpu import (
    KEPLER_K40C,
    PASCAL_P100,
    NoiseModel,
    SpMVExecutor,
    estimate_time,
    profile_matrix,
)


@st.composite
def random_structures(draw):
    m = draw(st.integers(2, 60))
    n = draw(st.integers(2, 60))
    seed = draw(st.integers(0, 10_000))
    density = draw(st.floats(0.01, 0.5))
    rng = np.random.default_rng(seed)
    dense = (rng.random((m, n)) < density) * 1.0
    if not dense.any():
        dense[0, 0] = 1.0
    return COOMatrix.from_dense(dense)


@settings(max_examples=30, deadline=None)
@given(coo=random_structures(), fmt=st.sampled_from(FORMAT_NAMES),
       precision=st.sampled_from(["single", "double"]))
def test_estimates_positive_and_finite(coo, fmt, precision):
    prof = profile_matrix(coo)
    for device in (KEPLER_K40C, PASCAL_P100):
        cb = estimate_time(fmt, prof, device, precision)
        assert np.isfinite(cb.seconds) and cb.seconds > 0
        assert cb.matrix_bytes >= 0 and cb.x_bytes >= 0 and cb.y_bytes >= 0
        assert cb.imbalance >= 1.0
        assert 0 < cb.efficiency <= 1.0


@settings(max_examples=30, deadline=None)
@given(coo=random_structures(), fmt=st.sampled_from(FORMAT_NAMES))
def test_profile_scale_invariance_of_values(coo, fmt):
    """Timing depends only on structure: rescaling values changes nothing."""
    scaled = COOMatrix(coo.shape, coo.row, coo.col, 5.0 * coo.val, canonical=False)
    a = estimate_time(fmt, profile_matrix(coo), KEPLER_K40C, "single").seconds
    b = estimate_time(fmt, profile_matrix(scaled), KEPLER_K40C, "single").seconds
    assert a == b


@settings(max_examples=20, deadline=None)
@given(coo=random_structures(), reps=st.integers(1, 60),
       seed=st.integers(0, 100))
def test_benchmark_mean_tracks_estimate(coo, reps, seed):
    """The noisy mean stays within a few sigma of the deterministic model."""
    ex = SpMVExecutor(KEPLER_K40C, "single", seed=seed,
                      noise=NoiseModel(0.02, 0.03))
    det = ex.estimate(coo, "csr").seconds
    mean = ex.benchmark(coo, "csr", reps=reps).seconds
    assert 0.7 * det < mean < 1.4 * det


@settings(max_examples=20, deadline=None)
@given(coo=random_structures())
def test_row_permutation_changes_little_for_balanced_formats(coo):
    """COO/CSR5/merge are (near) insensitive to row order, per the paper."""
    rng = np.random.default_rng(0)
    perm = rng.permutation(coo.n_rows)
    shuffled = COOMatrix(coo.shape, perm[coo.row], coo.col, coo.val)
    for fmt in ("coo", "csr5", "merge_csr"):
        a = estimate_time(fmt, profile_matrix(coo), KEPLER_K40C, "single").seconds
        b = estimate_time(fmt, profile_matrix(shuffled), KEPLER_K40C, "single").seconds
        # Identical row-length multiset; only locality shifts slightly.
        assert 0.6 < a / b < 1.7, fmt


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 12), min_size=1, max_size=40),
       st.integers(0, 10_000))
def test_merge_path_search_total_coverage(lengths, seed):
    """Merge-path coordinates are monotone, exhaustive and consistent for
    arbitrary row-length distributions (incl. empty rows)."""
    from repro.formats import merge_path_search

    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    n_rows, nnz = len(lengths), int(indptr[-1])
    d = np.arange(n_rows + nnz + 1)
    rows, elems = merge_path_search(d, indptr)
    np.testing.assert_array_equal(rows + elems, d)
    assert np.all(np.diff(rows) >= 0) and np.all(np.diff(elems) >= 0)
    assert np.all(np.diff(rows) <= 1) or nnz == 0
    # Invariant: a consumed row's elements are all consumed.
    np.testing.assert_array_less(indptr[rows], elems + 1)
