"""The joint format+parameter tuning space (:mod:`repro.tuning`).

Covers the PR's acceptance properties: every grid configuration
round-trips through its string key, is feasible-or-masked in the
batched cost models, default configurations are bit-identical to the
bare formats they canonicalise to, and tuned campaign datasets are
bit-identical for any worker count.
"""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tuning
from repro.formats import FORMAT_NAMES, COOMatrix, as_format
from repro.formats.base import FormatError
from repro.gpu import KEPLER_K40C, PASCAL_P100, SpMVExecutor, profile_matrix
from repro.gpu.batch import ProfileBatch, estimate_batch, format_bytes_batch
from repro.gpu.kernels import estimate_time
from repro.matrices import SyntheticCorpus


def _profiles(n=12, seed=3):
    entries = list(SyntheticCorpus(scale=0.01, seed=seed, max_nnz=100_000))[:n]
    return [profile_matrix(e.build()) for e in entries]


# -- the configuration value object -------------------------------------


def test_grid_round_trips_through_key():
    for config in tuning.configurations(FORMAT_NAMES + ("dia", "bsr")):
        again = tuning.Configuration.from_key(config.key)
        assert again == config
        assert hash(again) == hash(config)
        assert again.key == config.key


def test_default_config_key_is_bare_format_name():
    for fmt in FORMAT_NAMES:
        assert tuning.Configuration.default(fmt).key == fmt
    # Explicitly passing default values canonicalises away.
    assert tuning.Configuration("csr", {"lanes": 32}).key == "csr"
    assert tuning.Configuration("ell", {"rows_per_thread": 1}).key == "ell"


def test_key_is_order_insensitive():
    a = tuning.Configuration("ell", {"rows_per_thread": 2, "width_cap": 512})
    b = tuning.Configuration("ell", {"width_cap": 512, "rows_per_thread": 2})
    assert a == b and a.key == b.key


def test_unknown_format_and_param_raise():
    with pytest.raises(tuning.ConfigError):
        tuning.Configuration("nope", {})
    with pytest.raises(tuning.ConfigError):
        tuning.Configuration("csr", {"bogus": 1})
    with pytest.raises(tuning.ConfigError):
        tuning.Configuration.from_key("csr?lanes=not_an_int")


def test_coerce_accepts_all_spellings_and_warns_on_bare_strings():
    cfg = tuning.Configuration("hyb", {"split": 2.0})
    assert tuning.coerce(cfg) is cfg
    assert tuning.coerce("hyb?split=2") == cfg
    assert tuning.coerce({"format": "hyb", "params": {"split": 2.0}}) == cfg
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        tuning.coerce("hyb", context="test_coerce_spellings")
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_tuned_space_defaults_first_per_format():
    space = tuning.tuned_space()
    assert set(tuning.default_space()) <= set(space)
    seen = []
    for key in space:
        fmt = tuning.base_format(key)
        if fmt not in seen:
            # The first configuration of each format is its default.
            assert key == fmt
            seen.append(fmt)
    assert tuple(seen) == FORMAT_NAMES


# -- cost models over the joint space -----------------------------------


def test_estimate_batch_feasible_or_masked():
    batch = ProfileBatch.from_profiles(_profiles())
    ex = SpMVExecutor(KEPLER_K40C, "single")
    space = tuning.tuned_space()
    cost = estimate_batch(batch, space, KEPLER_K40C, "single")
    failures = ex.feasibility_batch(batch, space)
    for j, key in enumerate(space):
        masked = np.array([key in failures[i] for i in range(len(batch))])
        finite = np.isfinite(cost.seconds[:, j]) & (cost.seconds[:, j] > 0)
        # Every cell is either a positive finite estimate or flagged
        # infeasible by the executor (estimates stay finite even for
        # masked cells — the mask is what consumers must honour).
        assert np.all(finite | masked)


def test_default_columns_bit_identical_to_base_formats():
    batch = ProfileBatch.from_profiles(_profiles())
    tuned = estimate_batch(batch, tuning.tuned_space(), KEPLER_K40C, "single")
    base = estimate_batch(batch, FORMAT_NAMES, KEPLER_K40C, "single")
    for fmt in FORMAT_NAMES:
        np.testing.assert_array_equal(
            tuned.seconds[:, tuned.column(fmt)],
            base.seconds[:, base.column(fmt)],
        )


def test_scalar_estimates_match_batch_cells():
    profiles = _profiles(6)
    batch = ProfileBatch.from_profiles(profiles)
    keys = ("csr?lanes=8", "ell?rows_per_thread=4", "hyb?split=2",
            "bsr?block_shape=2x2")
    cost = estimate_batch(batch, keys, PASCAL_P100, "double")
    for i, prof in enumerate(profiles):
        for key in keys:
            scalar = estimate_time(key, prof, PASCAL_P100, "double")
            assert scalar.seconds == cost.at(i, key).seconds


def test_config_footprint_matches_batch():
    batch = ProfileBatch.from_profiles(_profiles(6))
    for key in ("hyb?split=0.5", "bsr?block_shape=8x8", "csr?lanes=16"):
        per = format_bytes_batch(batch, key, "single")
        assert per.shape == (len(batch),)
        assert np.all(per > 0)


def test_width_cap_infeasible_and_error_string_stable():
    rng = np.random.default_rng(0)
    dense = np.zeros((64, 700))
    dense[0, :650] = 1.0  # one 650-wide row
    dense[rng.integers(0, 64, 200), rng.integers(0, 700, 200)] = 1.0
    coo = COOMatrix.from_dense(dense)
    prof = profile_matrix(coo)
    ex = SpMVExecutor(KEPLER_K40C, "single")
    key = "ell?width_cap=512"
    from repro.gpu.executor import KernelFailure

    with pytest.raises(KernelFailure, match="width cap 512"):
        ex.check_feasible(prof, key)
    batch = ProfileBatch.from_profiles([prof])
    failures = ex.feasibility_batch(batch, (key, "ell"))
    assert key in failures[0]
    # The conversion-time twin trips identically.
    with pytest.raises(FormatError, match="width cap 512"):
        as_format(coo, key)


def test_energy_scalarisation():
    prof = _profiles(1)[0]
    cost = estimate_time("csr", prof, KEPLER_K40C, "single")
    joules = tuning.energy_joules(cost, KEPLER_K40C)
    assert joules > 0
    seconds = np.array([1.0, 4.0, 9.0])
    energy = np.array([9.0, 1.0, 4.0])
    assert tuning.scalarize(seconds, energy, 0.0) is seconds
    blended = tuning.scalarize(seconds, energy, 0.5)
    assert np.argmin(seconds) == 0
    assert np.argmin(blended) == 1  # geometric blend flips the argmin
    with pytest.raises(ValueError):
        tuning.scalarize(seconds, energy, 1.5)


@settings(max_examples=25, deadline=None)
@given(
    key=st.sampled_from(tuning.tuned_space() + ("bsr?block_shape=2x2",
                                                "bsr?block_shape=8x8")),
    seed=st.integers(0, 500),
)
def test_property_config_estimates_round_trip_and_stay_positive(key, seed):
    """Any grid configuration: key round-trip + finite positive batch cell."""
    config = tuning.Configuration.from_key(key)
    assert config.key == key or config.is_default
    rng = np.random.default_rng(seed)
    dense = (rng.random((20, 24)) < 0.2) * 1.0
    dense[0, 0] = 1.0
    prof = profile_matrix(COOMatrix.from_dense(dense))
    batch = ProfileBatch.from_profiles([prof])
    cost = estimate_batch(batch, (key,), KEPLER_K40C, "single")
    infeasible = tuning.infeasible_batch(batch, config)
    if 0 not in infeasible:
        assert np.isfinite(cost.seconds[0, 0]) and cost.seconds[0, 0] > 0
        assert estimate_time(key, prof, KEPLER_K40C, "single").seconds == \
            cost.at(0, key).seconds


# -- formats take the uniform params mapping ----------------------------


def test_formats_params_mapping_uniform():
    rng = np.random.default_rng(1)
    dense = (rng.random((32, 40)) < 0.2) * rng.standard_normal((32, 40))
    dense[0, 0] = 1.0
    coo = COOMatrix.from_dense(dense)

    ell = as_format(coo, "ell", params={"rows_per_thread": 4})
    assert ell.params["rows_per_thread"] == 4

    hyb = as_format(coo, "hyb?split=2")
    k = max(1, math.ceil(2.0 * coo.nnz / coo.n_rows))
    assert hyb.threshold <= k  # padded width never exceeds the split rule
    assert hyb.params["split"] == 2.0

    bsr = as_format(coo, "bsr?block_shape=2x2")
    assert bsr.block_shape == (2, 2)
    assert bsr.params == {"block_shape": (2, 2)}

    # Execution-only knobs leave the stored data unchanged.
    csr = as_format(coo, "csr?lanes=8")
    np.testing.assert_array_equal(csr.to_coo().val, coo.val)

    with pytest.raises(FormatError):
        as_format(coo, "hyb", threshold=3, params={"split": 2.0})
    with pytest.raises(FormatError):
        as_format(coo, "ell", params={"bogus": 1})
    with pytest.raises(tuning.ConfigError):
        as_format(coo, "csr", params={"lanes": "wide"})


def test_as_format_accepts_configuration_objects():
    rng = np.random.default_rng(2)
    dense = (rng.random((16, 16)) < 0.3) * 1.0
    dense[0, 0] = 1.0
    coo = COOMatrix.from_dense(dense)
    cfg = tuning.Configuration("bsr", {"block_shape": (8, 8)})
    assert as_format(coo, cfg).block_shape == (8, 8)


# -- campaigns over the joint space -------------------------------------


def test_tuned_campaign_bit_identical_across_workers(tmp_path):
    from repro.bench.campaign import run_campaign

    corpus = list(SyntheticCorpus(scale=0.005, seed=11, max_nnz=100_000))
    kw = dict(reps=4, seed=0, shard_dir=None)
    ds1 = run_campaign(corpus, KEPLER_K40C, "single", tuned=True,
                       workers=1, **kw).to_dataset()
    ds2 = run_campaign(corpus, KEPLER_K40C, "single", tuned=True,
                       workers=2, **kw).to_dataset()
    assert ds1.formats == ds2.formats == tuning.tuned_space()
    np.testing.assert_array_equal(ds1.times, ds2.times)
    np.testing.assert_array_equal(ds1.labels, ds2.labels)
    np.testing.assert_array_equal(ds1.feature_array, ds2.feature_array)


def test_tuned_campaign_default_columns_match_default_campaign():
    """Noise-free tuned campaigns nest the default campaign bit for bit.

    (With noise enabled the per-matrix jitter block is positional over
    the feasible formats — the long-standing scalar-sweep-compatible
    draw order — so widening the vocabulary shifts later columns'
    draws; the *models* underneath are still bit-identical, which is
    what this asserts.)
    """
    from repro.bench.campaign import run_campaign
    from repro.gpu import NoiseModel

    corpus = list(SyntheticCorpus(scale=0.005, seed=11, max_nnz=100_000))
    quiet = NoiseModel(0.0, 0.0)
    tuned_ds = run_campaign(corpus, KEPLER_K40C, "single", tuned=True,
                            noise=quiet, reps=4, seed=0,
                            workers=1).to_dataset()
    base_ds = run_campaign(corpus, KEPLER_K40C, "single", noise=quiet,
                           reps=4, seed=0, workers=1).to_dataset()
    base_rows = {name: row for name, row in zip(base_ds.names, base_ds.times)}
    cols = [tuned_ds.formats.index(f) for f in base_ds.formats]
    checked = 0
    for name, row in zip(tuned_ds.names, tuned_ds.times):
        # Matrices only the tuned campaign dropped (width-cap failures)
        # are absent from tuned_ds; every surviving one must agree.
        np.testing.assert_array_equal(row[cols], base_rows[name])
        checked += 1
    assert checked > 0


def test_tuned_vs_default_speedup_summary():
    times = np.array([
        [2.0, 1.0, 0.5],   # tuned config wins 2x
        [1.0, 2.0, 1.0],   # tie
    ])
    out = tuning.tuned_vs_default_speedup(times, ("csr", "coo", "csr?lanes=8"))
    assert out["n"] == 2
    assert out["max"] == pytest.approx(2.0)
    assert out["geomean"] == pytest.approx(math.sqrt(2.0))
    assert out["tuned_wins"] == pytest.approx(0.5)
