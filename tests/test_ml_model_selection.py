"""Tests for splits, k-fold CV and grid search."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


@pytest.fixture
def blobs(rng):
    centers = rng.standard_normal((3, 4)) * 6
    y = rng.integers(0, 3, 150)
    X = centers[y] + rng.standard_normal((150, 4))
    return X, y


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=0)
        assert Xte.shape[0] == 30
        assert Xtr.shape[0] == 120
        assert ytr.shape[0] == 120

    def test_disjoint_and_exhaustive(self, blobs):
        X, y = blobs
        X = X + np.arange(150)[:, None] * 1e-9  # make rows unique
        Xtr, Xte, _, _ = train_test_split(X, y, seed=1)
        rows = {tuple(r) for r in np.vstack([Xtr, Xte])}
        assert len(rows) == 150

    def test_seed_reproducible(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=3)
        b = train_test_split(X, y, seed=3)
        np.testing.assert_array_equal(a[1], b[1])

    def test_stratified_preserves_proportions(self, rng):
        y = np.array([0] * 80 + [1] * 20)
        X = rng.standard_normal((100, 2))
        _, _, _, yte = train_test_split(X, y, test_size=0.25, seed=0, stratify=True)
        assert 0.1 <= (yte == 1).mean() <= 0.3

    def test_bad_test_size(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)


class TestKFold:
    def test_folds_partition_the_data(self):
        seen = np.zeros(103, dtype=int)
        for train, test in KFold(5, seed=0).split(103):
            assert np.intersect1d(train, test).size == 0
            assert np.union1d(train, test).size == 103
            seen[test] += 1
        assert np.all(seen == 1)

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="cannot split"):
            list(KFold(5).split(3))

    def test_min_splits(self):
        with pytest.raises(ValueError, match="at least 2"):
            KFold(1)

    def test_stratified_balances_classes(self):
        y = np.array([0] * 50 + [1] * 10)
        for train, test in StratifiedKFold(5, seed=0).split_labels(y):
            # Every fold holds exactly 2 of the 10 minority samples.
            assert (y[test] == 1).sum() == 2


class TestCrossValScore:
    def test_scores_shape_and_range(self, blobs):
        X, y = blobs
        scores = cross_val_score(DecisionTreeClassifier(max_depth=6), X, y, cv=4)
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))
        assert scores.mean() > 0.7  # separable blobs

    def test_estimator_not_mutated(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier()
        cross_val_score(tree, X, y, cv=3)
        assert not hasattr(tree, "root_")

    def test_custom_scorer(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3),
            X,
            y,
            cv=3,
            scorer=lambda est, Xt, yt: -1.0,
        )
        np.testing.assert_array_equal(scores, -1.0)


class TestGridSearch:
    def test_finds_better_depth(self, rng):
        # XOR-ish target: depth-1 stumps fail, deeper trees succeed.
        X = rng.standard_normal((300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        gs = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 6]}, cv=3
        )
        gs.fit(X, y)
        assert gs.best_params_["max_depth"] == 6
        assert gs.best_score_ > 0.8
        assert len(gs.results_) == 2

    def test_best_estimator_refit_on_full_data(self, blobs):
        X, y = blobs
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [4]}, cv=3)
        gs.fit(X, y)
        assert hasattr(gs.best_estimator_, "root_")
        assert gs.predict(X).shape == y.shape

    def test_grid_covers_cartesian_product(self, blobs):
        X, y = blobs
        gs = GridSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [2, 4], "min_samples_leaf": [1, 5, 9]},
            cv=3,
        )
        gs.fit(X, y)
        assert len(gs.results_) == 6

    def test_empty_grid_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="empty"):
            GridSearchCV(DecisionTreeClassifier(), {}).fit(X, y)

    def test_predict_before_fit_rejected(self):
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [2]})
        with pytest.raises(RuntimeError, match="not fitted"):
            gs.predict(np.zeros((1, 2)))
