"""Edge-case tests across formats: precision, extremes, API corners."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSR5Matrix,
    CSRMatrix,
    ELLMatrix,
    FORMAT_NAMES,
    FormatError,
    HYBMatrix,
    MergeCSRMatrix,
    as_format,
)


class TestPrecision:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_float32_spmv_dtype(self, small_coo, fmt):
        single = small_coo.astype(np.float32)
        A = as_format(single, fmt)
        y = A.spmv(np.ones(single.n_cols, dtype=np.float32))
        assert y.dtype == np.float32
        assert A.precision == "single"

    def test_float32_roundtrip_values(self, small_coo):
        single = small_coo.astype(np.float32)
        back = as_format(single, "csr5").to_coo()
        np.testing.assert_array_equal(back.val, single.val)


class TestExtremeShapes:
    def test_single_column_matrix(self, rng):
        coo = COOMatrix((50, 1), rng.integers(0, 50, 20), np.zeros(20, int),
                        rng.standard_normal(20))
        x = np.array([2.0])
        for fmt in FORMAT_NAMES:
            np.testing.assert_allclose(
                as_format(coo, fmt).spmv(x), coo.to_dense() @ x, atol=1e-12
            )

    def test_single_row_matrix(self, rng):
        coo = COOMatrix((1, 50), np.zeros(20, int), rng.integers(0, 50, 20),
                        rng.standard_normal(20))
        x = rng.standard_normal(50)
        for fmt in FORMAT_NAMES:
            np.testing.assert_allclose(
                as_format(coo, fmt).spmv(x), coo.to_dense() @ x, atol=1e-12
            )

    def test_fully_dense_matrix(self, rng):
        dense = rng.standard_normal((12, 12))
        dense[dense == 0] = 1.0
        coo = COOMatrix.from_dense(dense)
        assert coo.nnz == 144
        x = rng.standard_normal(12)
        for fmt in FORMAT_NAMES:
            np.testing.assert_allclose(
                as_format(coo, fmt).spmv(x), dense @ x, atol=1e-10
            )

    def test_one_by_one(self):
        coo = COOMatrix((1, 1), [0], [0], [3.0])
        for fmt in FORMAT_NAMES:
            np.testing.assert_allclose(as_format(coo, fmt).spmv([2.0]), [6.0])

    def test_zero_row_matrix(self):
        coo = COOMatrix.empty((0, 5))
        assert CSRMatrix.from_coo(coo).spmv(np.ones(5)).shape == (0,)


class TestNumericalBehaviour:
    def test_cancellation_consistency(self):
        """Formats agree even with catastrophic cancellation inputs."""
        coo = COOMatrix((1, 3), [0, 0, 0], [0, 1, 2], [1e16, 1.0, -1e16])
        x = np.ones(3)
        results = {f: as_format(coo, f).spmv(x)[0] for f in FORMAT_NAMES}
        # All summation orders land on a small set of values near 1 or 0
        # (floating point); none may produce garbage like 1e16.
        assert all(abs(v) <= 2.0 for v in results.values())

    def test_negative_values_roundtrip(self, small_coo):
        neg = COOMatrix(small_coo.shape, small_coo.row, small_coo.col,
                        -np.abs(small_coo.val), canonical=False)
        for fmt in FORMAT_NAMES:
            back = as_format(neg, fmt).to_coo()
            assert back.val.max() < 0


class TestApiCorners:
    def test_memory_ratio_of_csr_close_to_one(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        assert csr.memory_ratio() == pytest.approx(1.0)

    def test_memory_ratio_of_padded_ell(self, skewed_coo):
        ell = ELLMatrix.from_coo(skewed_coo)
        assert ell.memory_ratio() > 5.0

    def test_repr_smoke(self, small_coo):
        for fmt in FORMAT_NAMES:
            text = repr(as_format(small_coo, fmt))
            assert "nnz=" in text

    def test_csr5_degenerate_tiles(self, small_coo):
        # omega*sigma == 1: every element its own tile.
        m = CSR5Matrix.from_coo(small_coo, omega=1, sigma=1)
        assert m.n_tiles == small_coo.nnz
        np.testing.assert_allclose(
            m.spmv(np.ones(small_coo.n_cols)),
            small_coo.to_dense().sum(axis=1),
        )

    def test_hyb_of_hyb_roundtrips(self, skewed_coo):
        hyb = HYBMatrix.from_coo(skewed_coo)
        again = as_format(hyb, "hyb", threshold=2)
        np.testing.assert_allclose(again.to_dense(), skewed_coo.to_dense())

    def test_merge_more_partitions_than_work(self):
        coo = COOMatrix((2, 2), [0], [1], [5.0])
        m = MergeCSRMatrix.from_coo(coo, partitions=64)
        np.testing.assert_allclose(m.spmv(np.ones(2)), [5.0, 0.0])

    def test_duplicate_heavy_construction(self, rng):
        # Many duplicates collapsing to few entries.
        row = np.zeros(1000, int)
        col = rng.integers(0, 3, 1000)
        coo = COOMatrix((1, 3), row, col, np.ones(1000))
        assert coo.nnz <= 3
        assert coo.to_dense().sum() == pytest.approx(1000.0)
