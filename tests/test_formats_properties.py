"""Property-based tests over all formats (hypothesis).

Invariants:

* every format computes the same ``A @ x`` as the dense oracle and as
  ``scipy.sparse`` (scipy is used *only* here, as an oracle);
* conversion round-trips are lossless for any structure;
* nnz and memory accounting are consistent;
* merge-path SpMV is invariant to the partition count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMAT_NAMES, COOMatrix, MergeCSRMatrix, as_format

scipy_sparse = pytest.importorskip("scipy.sparse")


@st.composite
def sparse_matrices(draw):
    """Random COO matrices with adversarial shapes and densities."""
    m = draw(st.integers(1, 30))
    n = draw(st.integers(1, 30))
    nnz = draw(st.integers(0, m * n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if nnz:
        cells = rng.choice(m * n, size=min(nnz, m * n), replace=False)
        row, col = np.divmod(cells, n)
        val = rng.standard_normal(cells.size)
        val[val == 0] = 1.0
    else:
        row = col = np.zeros(0, dtype=np.int64)
        val = np.zeros(0)
    return COOMatrix((m, n), row, col, val)


@settings(max_examples=40, deadline=None)
@given(coo=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
def test_spmv_matches_dense_oracle(coo, fmt):
    A = as_format(coo, fmt)
    rng = np.random.default_rng(coo.nnz + 17)
    x = rng.standard_normal(coo.n_cols)
    np.testing.assert_allclose(A.spmv(x), coo.to_dense() @ x, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(coo=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
def test_spmv_matches_scipy(coo, fmt):
    A = as_format(coo, fmt)
    S = scipy_sparse.coo_matrix(
        (coo.val, (coo.row, coo.col)), shape=coo.shape
    ).tocsr()
    x = np.linspace(-1.0, 1.0, coo.n_cols)
    np.testing.assert_allclose(A.spmv(x), S @ x, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(coo=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
def test_roundtrip_lossless(coo, fmt):
    A = as_format(coo, fmt)
    back = A.to_coo()
    assert back.shape == coo.shape
    np.testing.assert_allclose(back.to_dense(), coo.to_dense())


@settings(max_examples=40, deadline=None)
@given(coo=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
def test_nnz_preserved(coo, fmt):
    assert as_format(coo, fmt).nnz == coo.nnz


@settings(max_examples=40, deadline=None)
@given(coo=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
def test_memory_positive_and_bounded_below_by_values(coo, fmt):
    A = as_format(coo, fmt)
    assert A.memory_bytes() >= coo.nnz * coo.dtype.itemsize


@settings(max_examples=25, deadline=None)
@given(coo=sparse_matrices(), parts=st.integers(1, 100))
def test_merge_partition_invariance(coo, parts):
    m = MergeCSRMatrix.from_coo(coo, partitions=parts)
    x = np.ones(coo.n_cols)
    np.testing.assert_allclose(m.spmv(x), coo.to_dense() @ x, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(coo=sparse_matrices())
def test_spmv_linearity(coo):
    """A @ (a x + b y) == a (A @ x) + b (A @ y) for every format."""
    rng = np.random.default_rng(coo.nnz + 3)
    x = rng.standard_normal(coo.n_cols)
    y = rng.standard_normal(coo.n_cols)
    for fmt in ("csr", "csr5", "merge_csr"):
        A = as_format(coo, fmt)
        lhs = A.spmv(2.0 * x - 3.0 * y)
        rhs = 2.0 * A.spmv(x) - 3.0 * A.spmv(y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)
