"""Tests for matrix reordering transforms (permute, sort, RCM)."""

import numpy as np
import pytest

from repro.matrices import (
    bandwidth,
    banded,
    permute,
    power_law,
    random_uniform,
    reverse_cuthill_mckee,
    sort_rows_by_length,
)


class TestPermute:
    def test_row_permutation_moves_entries(self, small_coo):
        n = small_coo.n_rows
        perm = np.roll(np.arange(n), 1)
        moved = permute(small_coo, row_perm=perm)
        dense = small_coo.to_dense()
        np.testing.assert_allclose(moved.to_dense()[perm, :], dense)

    def test_identity_permutation_is_noop(self, small_coo):
        same = permute(
            small_coo,
            row_perm=np.arange(small_coo.n_rows),
            col_perm=np.arange(small_coo.n_cols),
        )
        np.testing.assert_allclose(same.to_dense(), small_coo.to_dense())

    def test_permutation_preserves_spmv_up_to_reordering(self, rng, small_coo):
        n, m = small_coo.shape
        rp = rng.permutation(n)
        cp = rng.permutation(m)
        B = permute(small_coo, row_perm=rp, col_perm=cp)
        x = rng.standard_normal(m)
        # B[rp[i], cp[j]] = A[i, j]  =>  (B @ x_permuted)[rp] = A @ x
        x_perm = np.empty_like(x)
        x_perm[cp] = x
        from repro.formats import CSRMatrix

        yB = CSRMatrix.from_coo(B).spmv(x_perm)
        yA = CSRMatrix.from_coo(small_coo).spmv(x)
        np.testing.assert_allclose(yB[rp], yA, atol=1e-12)

    def test_rejects_non_permutation(self, small_coo):
        bad = np.zeros(small_coo.n_rows, dtype=int)
        with pytest.raises(ValueError, match="permutation"):
            permute(small_coo, row_perm=bad)


class TestSortRows:
    def test_descending_lengths(self, skewed_coo):
        sorted_m, perm = sort_rows_by_length(skewed_coo)
        lengths = sorted_m.row_lengths()
        assert np.all(np.diff(lengths) <= 0)

    def test_perm_maps_back(self, skewed_coo):
        sorted_m, perm = sort_rows_by_length(skewed_coo)
        np.testing.assert_allclose(
            sorted_m.to_dense()[perm, :], skewed_coo.to_dense()
        )

    def test_ascending(self, skewed_coo):
        sorted_m, _ = sort_rows_by_length(skewed_coo, descending=False)
        assert np.all(np.diff(sorted_m.row_lengths()) >= 0)


class TestBandwidth:
    def test_band_matrix(self):
        A = banded(100, 100, bandwidth=7, fill=1.0, seed=0)
        assert bandwidth(A) <= 7

    def test_empty(self):
        from repro.formats import COOMatrix

        assert bandwidth(COOMatrix.empty((5, 5))) == 0


class TestRCM:
    def test_returns_permutation(self, rng):
        A = random_uniform(60, 60, nnz=300, seed=0)
        perm = reverse_cuthill_mckee(A)
        assert sorted(perm.tolist()) == list(range(60))

    def test_recovers_shuffled_band(self, rng):
        A = banded(300, 300, bandwidth=5, fill=1.0, seed=0)
        p = rng.permutation(300)
        shuffled = permute(A, row_perm=p, col_perm=p)
        assert bandwidth(shuffled) > 50
        perm = reverse_cuthill_mckee(shuffled)
        restored = permute(shuffled, row_perm=perm, col_perm=perm)
        assert bandwidth(restored) < 0.1 * bandwidth(shuffled)

    def test_reduces_bandwidth_on_random_sparse(self):
        A = random_uniform(300, 300, nnz=900, seed=3)
        perm = reverse_cuthill_mckee(A)
        reordered = permute(A, row_perm=perm, col_perm=perm)
        # RCM never guarantees optimality, but it shouldn't blow up.
        assert bandwidth(reordered) <= bandwidth(A) * 1.05

    def test_disconnected_components(self):
        from repro.formats import COOMatrix

        # Two separate 2-cliques and an isolated vertex.
        A = COOMatrix((5, 5), [0, 1, 3, 4], [1, 0, 4, 3], np.ones(4))
        perm = reverse_cuthill_mckee(A)
        assert sorted(perm.tolist()) == list(range(5))

    def test_rejects_rectangular(self, rng):
        A = random_uniform(10, 20, nnz=30, seed=0)
        with pytest.raises(ValueError, match="square"):
            reverse_cuthill_mckee(A)

    def test_improves_gather_locality(self):
        """RCM measurably cuts the simulated gather traffic."""
        from repro.gpu import KEPLER_K40C, gather_traffic_bytes, profile_matrix

        A = banded(3000, 3000, bandwidth=9, fill=1.0, seed=0)
        rng = np.random.default_rng(5)
        p = rng.permutation(3000)
        shuffled = permute(A, row_perm=p, col_perm=p)
        perm = reverse_cuthill_mckee(shuffled)
        restored = permute(shuffled, row_perm=perm, col_perm=perm)
        t_shuffled = gather_traffic_bytes(
            profile_matrix(shuffled), KEPLER_K40C, "single"
        )
        t_restored = gather_traffic_bytes(
            profile_matrix(restored), KEPLER_K40C, "single"
        )
        assert t_restored < t_shuffled
