"""Tests for the one-pass matrix profiler."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.gpu import profile_matrix
from repro.matrices import banded, clustered, power_law


class TestRowStatistics:
    def test_matches_numpy(self, small_coo):
        prof = profile_matrix(small_coo)
        lengths = small_coo.row_lengths()
        assert prof.nnz_mu == pytest.approx(lengths.mean())
        assert prof.nnz_sigma == pytest.approx(lengths.std())
        assert prof.nnz_max == lengths.max()
        assert prof.nnz_min == lengths.min()
        assert prof.empty_rows == int((lengths == 0).sum())

    def test_density(self, small_coo):
        prof = profile_matrix(small_coo)
        assert prof.density == pytest.approx(
            small_coo.nnz / (small_coo.n_rows * small_coo.n_cols)
        )

    def test_empty_matrix(self):
        prof = profile_matrix(COOMatrix.empty((5, 5)))
        assert prof.nnz == 0
        assert prof.warp_divergence == 1.0
        assert prof.ell_padding_ratio == 1.0


class TestWarpFactors:
    def test_uniform_rows_have_no_divergence(self):
        A = banded(256, 256, bandwidth=4, fill=1.0, seed=0)
        prof = profile_matrix(A)
        # Nearly equal row lengths: warp max ~= mean.
        assert prof.warp_divergence < 1.3

    def test_skew_increases_divergence(self, skewed_coo):
        prof = profile_matrix(skewed_coo)
        assert prof.warp_divergence > 2.0

    def test_vector_waste_for_short_rows(self):
        A = banded(256, 256, bandwidth=4, fill=1.0, seed=0)
        prof = profile_matrix(A)
        # 4-long rows waste 28 of 32 lanes in a warp-per-row kernel.
        assert prof.vector_waste == pytest.approx(8.0, rel=0.1)

    def test_wide_rows_waste_little(self):
        A = banded(128, 4096, bandwidth=640, fill=1.0, seed=0)
        prof = profile_matrix(A)
        assert prof.vector_waste < 1.15


class TestHybSplit:
    def test_split_consistent_with_format(self, skewed_coo):
        from repro.formats import HYBMatrix

        prof = profile_matrix(skewed_coo)
        hyb = HYBMatrix.from_coo(skewed_coo, threshold=prof.hyb_threshold)
        assert prof.hyb_ell_nnz == hyb.ell.nnz
        assert prof.hyb_spill_nnz == hyb.coo.nnz
        assert prof.hyb_spill_rows == np.unique(hyb.coo.row).size


class TestGatherStats:
    def test_double_lines_hold_fewer_elements(self, small_coo):
        prof = profile_matrix(small_coo)
        assert prof.gather["single"].elems_per_line == 32
        assert prof.gather["double"].elems_per_line == 16
        assert (
            prof.gather["double"].unique_lines >= prof.gather["single"].unique_lines
        )

    def test_clustered_touches_fewer_lines_than_scattered(self):
        from repro.matrices import random_uniform

        n, nnz = 4000, 40_000
        local = clustered(n, n, nnz=nnz, chunk=16, seed=1)
        scattered = random_uniform(n, n, nnz=nnz, seed=1)
        pl = profile_matrix(local).gather["single"]
        ps = profile_matrix(scattered).gather["single"]
        assert pl.line_fetches < ps.line_fetches

    def test_line_fetches_bounds(self, small_coo):
        g = profile_matrix(small_coo).gather["single"]
        assert g.unique_lines <= g.line_fetches <= small_coo.nnz
        assert g.unique_lines <= g.x_lines


class TestDigest:
    def test_deterministic(self, small_coo):
        assert profile_matrix(small_coo).digest == profile_matrix(small_coo).digest

    def test_distinguishes_structures(self, small_coo, skewed_coo):
        assert profile_matrix(small_coo).digest != profile_matrix(skewed_coo).digest

    def test_value_changes_do_not_change_digest(self, small_coo):
        scaled = COOMatrix(
            small_coo.shape, small_coo.row, small_coo.col, 2.0 * small_coo.val,
            canonical=False,
        )
        assert profile_matrix(scaled).digest == profile_matrix(small_coo).digest
