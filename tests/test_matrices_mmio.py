"""Tests for Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.matrices import MatrixMarketError, read_matrix_market, write_matrix_market


def test_roundtrip_through_file(tmp_path, small_coo):
    path = tmp_path / "m.mtx"
    write_matrix_market(small_coo, path, comment="test matrix")
    back = read_matrix_market(path)
    assert back.shape == small_coo.shape
    np.testing.assert_allclose(back.to_dense(), small_coo.to_dense())


def test_roundtrip_through_handles(small_coo):
    buf = io.StringIO()
    write_matrix_market(small_coo, buf)
    back = read_matrix_market(io.StringIO(buf.getvalue()))
    np.testing.assert_allclose(back.to_dense(), small_coo.to_dense())


def test_values_roundtrip_exactly(small_coo):
    buf = io.StringIO()
    write_matrix_market(small_coo, buf)
    back = read_matrix_market(io.StringIO(buf.getvalue()))
    np.testing.assert_array_equal(back.val, small_coo.val)  # %.17g is lossless


def test_read_pattern_matrix():
    text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n3 2\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.nnz == 2
    assert m.to_dense()[0, 0] == 1.0
    assert m.to_dense()[2, 1] == 1.0


def test_read_symmetric_expands():
    text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n"
    m = read_matrix_market(io.StringIO(text))
    dense = m.to_dense()
    assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
    assert dense[2, 2] == 7.0
    assert m.nnz == 3


def test_read_skew_symmetric():
    text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n"
    m = read_matrix_market(io.StringIO(text))
    dense = m.to_dense()
    assert dense[1, 0] == 4.0 and dense[0, 1] == -4.0


def test_read_with_comments():
    text = "%%MatrixMarket matrix coordinate real general\n% a comment\n%another\n2 2 1\n1 2 3.5\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.to_dense()[0, 1] == 3.5


def test_read_empty_matrix():
    text = "%%MatrixMarket matrix coordinate real general\n4 5 0\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.shape == (4, 5)
    assert m.nnz == 0


def test_rejects_missing_header():
    with pytest.raises(MatrixMarketError, match="header"):
        read_matrix_market(io.StringIO("2 2 1\n1 1 1.0\n"))


def test_rejects_unsupported_field():
    text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
    with pytest.raises(MatrixMarketError, match="field"):
        read_matrix_market(io.StringIO(text))


def test_rejects_dense_layout():
    text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
    with pytest.raises(MatrixMarketError, match="coordinate"):
        read_matrix_market(io.StringIO(text))


def test_rejects_count_mismatch():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
    with pytest.raises(MatrixMarketError, match="entries"):
        read_matrix_market(io.StringIO(text))


def test_rejects_bad_size_line():
    text = "%%MatrixMarket matrix coordinate real general\nnot a size\n"
    with pytest.raises(MatrixMarketError, match="size line"):
        read_matrix_market(io.StringIO(text))


def test_comment_written_with_percent_prefix(small_coo):
    buf = io.StringIO()
    write_matrix_market(small_coo, buf, comment="line one\nline two")
    lines = buf.getvalue().splitlines()
    assert lines[1] == "% line one"
    assert lines[2] == "% line two"
