"""Degenerate-matrix hardening for the one-pass analyzer.

A serving endpoint sees whatever clients send — including empty
matrices and matrices with all-zero rows.  Every path must return
finite, well-defined features and profiles without tripping a single
numpy runtime warning (the tests promote warnings to errors).
"""

import warnings

import numpy as np
import pytest

from repro.analysis import analyze_matrix
from repro.features import ALL_FEATURES, extract_features, feature_vector
from repro.formats import COOMatrix, CSRMatrix


def _empty(shape):
    return COOMatrix(
        shape,
        np.array([], dtype=int),
        np.array([], dtype=int),
        np.array([], dtype=float),
    )


@pytest.fixture(autouse=True)
def warnings_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


class TestEmptyMatrices:
    @pytest.mark.parametrize("shape", [(5, 7), (1, 1), (200, 3)])
    def test_zero_nnz(self, shape):
        analysis = analyze_matrix(_empty(shape))
        feats = analysis.features
        assert feats["n_rows"] == shape[0]
        assert feats["nnz_tot"] == 0.0
        vec = feature_vector(feats, ALL_FEATURES)
        assert np.all(np.isfinite(vec))
        # All chunk statistics collapse to zero, not NaN.
        for name in ("nnzb_mu", "nnzb_sigma", "snzb_mu", "snzb_max"):
            assert feats[name] == 0.0
        assert analysis.profile.nnz == 0
        assert analysis.profile.warp_divergence == 1.0

    def test_zero_by_zero(self):
        analysis = analyze_matrix(_empty((0, 0)))
        vec = feature_vector(analysis.features, ALL_FEATURES)
        assert np.all(np.isfinite(vec))
        assert analysis.features["nnz_mu"] == 0.0
        assert analysis.features["nnz_frac"] == 0.0

    def test_zero_rows_some_cols(self):
        vec = feature_vector(extract_features(_empty((0, 9))), ALL_FEATURES)
        assert np.all(np.isfinite(vec))


class TestAllZeroRows:
    def test_interleaved_empty_rows(self):
        # Rows 0, 2, 4... empty; odd rows hold one element each.
        rows = np.arange(1, 20, 2)
        coo = COOMatrix((20, 10), rows, rows % 10, np.ones(len(rows)))
        analysis = analyze_matrix(coo)
        feats = analysis.features
        assert feats["nnz_min"] == 0.0
        assert feats["nnzb_min"] == 0.0          # empty rows have 0 chunks
        assert feats["snzb_mu"] == 1.0           # every chunk is one element
        vec = feature_vector(feats, ALL_FEATURES)
        assert np.all(np.isfinite(vec))
        assert analysis.profile.empty_rows == 10

    def test_single_dense_row_rest_empty(self):
        coo = COOMatrix(
            (50, 50), np.zeros(50, dtype=int), np.arange(50), np.ones(50)
        )
        feats = extract_features(coo)
        assert feats["nnz_max"] == 50.0
        assert feats["nnzb_tot"] == 1.0          # one 50-wide chunk
        assert np.all(np.isfinite(feature_vector(feats, ALL_FEATURES)))

    def test_csr_input_equivalent(self):
        rows = np.array([1, 3])
        coo = COOMatrix((6, 4), rows, np.array([0, 2]), np.ones(2))
        csr = CSRMatrix.from_coo(coo)
        np.testing.assert_array_equal(
            feature_vector(extract_features(coo), ALL_FEATURES),
            feature_vector(extract_features(csr), ALL_FEATURES),
        )


class TestServiceDegenerateInputs:
    def test_service_serves_empty_matrix(self, mini_dataset):
        # End to end: a 0-nnz matrix must get a decision, not a warning.
        from repro.core import FormatSelector
        from repro.serve import SelectionService

        train = mini_dataset.drop_coo_best()
        selector = FormatSelector("decision_tree", feature_set="set123").fit(train)
        service = SelectionService(selector)
        decision = service.predict(_empty((30, 30)))
        assert decision.chosen in train.formats
