"""Tests for the command-line interface (driven in-process)."""

import pickle

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Corpus + labeled dataset + trained model, built once via the CLI."""
    root = tmp_path_factory.mktemp("cli")
    mtx_dir = root / "corpus"
    ds_path = root / "ds.npz"
    model_path = root / "sel.pkl"
    assert main(["corpus", "--scale", "0.004", "--max-nnz", "20000",
                 "--out", str(mtx_dir)]) == 0
    assert main(["label", "--scale", "0.008", "--max-nnz", "50000",
                 "--out", str(ds_path)]) == 0
    assert main(["train", "--dataset", str(ds_path), "--model", "decision_tree",
                 "--feature-set", "set12", "--out", str(model_path)]) == 0
    return root, mtx_dir, ds_path, model_path


class TestCorpus:
    def test_writes_mtx_and_manifest(self, workspace):
        _, mtx_dir, _, _ = workspace
        files = sorted(mtx_dir.glob("*.mtx"))
        assert files
        manifest = (mtx_dir / "manifest.csv").read_text().splitlines()
        assert manifest[0] == "name,family,rows,cols,nnz"
        assert len(manifest) - 1 == len(files)

    def test_mtx_files_parse(self, workspace):
        from repro.matrices import read_matrix_market

        _, mtx_dir, _, _ = workspace
        m = read_matrix_market(sorted(mtx_dir.glob("*.mtx"))[0])
        assert m.nnz > 0


class TestFeatures:
    def test_features_csv(self, workspace, capsys):
        _, mtx_dir, _, _ = workspace
        f = sorted(mtx_dir.glob("*.mtx"))[0]
        assert main(["features", str(f)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("matrix,n_rows,n_cols")
        assert out[1].startswith(f.name)
        assert len(out[1].split(",")) == 18  # name + 17 features


class TestLabelTrainPredict:
    def test_dataset_loads(self, workspace):
        from repro.core import SpMVDataset

        _, _, ds_path, _ = workspace
        ds = SpMVDataset.load(ds_path)
        assert len(ds) > 5
        assert ds.precision == "single"

    def test_model_pickle_roundtrip(self, workspace):
        _, _, _, model_path = workspace
        with open(model_path, "rb") as fh:
            selector = pickle.load(fh)
        assert selector.model_name == "decision_tree"

    def test_predict_prints_formats(self, workspace, capsys):
        from repro.formats import FORMAT_NAMES

        _, mtx_dir, _, model_path = workspace
        files = [str(p) for p in sorted(mtx_dir.glob("*.mtx"))[:3]]
        assert main(["predict", "--model", str(model_path)] + files) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        for line in out:
            fmt = line.split(": ")[1]
            assert fmt in FORMAT_NAMES


class TestCampaign:
    def test_campaign_runs_and_resumes(self, tmp_path, capsys):
        out = tmp_path / "campaign.npz"
        failures = tmp_path / "failures.csv"
        argv = ["campaign", "--scale", "0.008", "--max-nnz", "40000",
                "--workers", "2", "--out", str(out),
                "--failures", str(failures)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "best-format distribution" in first
        assert out.exists() and failures.exists()
        assert out.with_suffix(".npz.shards").is_dir()
        # Second run resumes from shards instead of re-measuring.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cached=" in second

    def test_campaign_dataset_matches_label(self, tmp_path):
        from repro.core import SpMVDataset

        camp, lab = tmp_path / "c.npz", tmp_path / "l.npz"
        common = ["--scale", "0.008", "--max-nnz", "40000"]
        assert main(["campaign", *common, "--no-resume", "--quiet",
                     "--out", str(camp)]) == 0
        assert main(["label", *common, "--out", str(lab)]) == 0
        a, b = SpMVDataset.load(camp), SpMVDataset.load(lab)
        assert a.names == b.names
        np.testing.assert_array_equal(a.times, b.times)
        assert a.reps == b.reps == 50


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "table99"])


class TestTableCommand:
    def test_table1_runs_at_tiny_scale(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_SCALE", "0.008")
        monkeypatch.setenv("REPRO_MAX_NNZ", "50000")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro.bench import runner

        runner.bench_corpus.cache_clear()
        runner.bench_dataset.cache_clear()
        try:
            assert main(["table", "table1"]) == 0
            out = capsys.readouterr().out
            assert "range" in out
        finally:
            runner.bench_corpus.cache_clear()
            runner.bench_dataset.cache_clear()


class TestObservability:
    def test_metrics_out_writes_checkable_snapshot(self, tmp_path):
        import json

        snap_path = tmp_path / "snap.json"
        assert main(["--metrics-out", str(snap_path), "campaign",
                     "--scale", "0.004", "--max-nnz", "20000", "--quiet",
                     "--no-resume", "--out", str(tmp_path / "ds.npz")]) == 0
        snap = json.loads(snap_path.read_text())
        assert snap["spans"]["campaign.run"]["count"] == 1
        assert "campaign.run/campaign.matrix" in snap["spans"]
        assert snap["metrics"]["campaign.matrices_ok"]["value"] > 0
        # The obs subcommand validates and renders it back.
        assert main(["obs", str(snap_path), "--check"]) == 0
        assert main(["obs", str(snap_path)]) == 0

    def test_trace_flag_prints_tables(self, tmp_path, capsys):
        assert main(["--trace", "label", "--scale", "0.004",
                     "--max-nnz", "20000",
                     "--out", str(tmp_path / "ds.npz")]) == 0
        err = capsys.readouterr().err
        assert "campaign.run" in err
        assert "gpu.benchmarks" in err

    def test_obs_disabled_without_flags(self, tmp_path):
        from repro import obs

        assert main(["corpus", "--scale", "0.004", "--max-nnz", "20000",
                     "--out", str(tmp_path / "mtx")]) == 0
        assert not obs.enabled()

    def test_obs_check_flags_corrupt_snapshot(self, tmp_path, capsys):
        import json

        bad = {
            "schema": "repro-obs-snapshot/v1",
            "spans": {"a/b": {"count": 1, "total_s": 1.0, "mean_s": 1.0,
                              "min_s": 1.0, "max_s": 1.0}},
            "metrics": {},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["obs", str(path), "--check"]) == 1
        assert "parent" in capsys.readouterr().out

    def test_obs_rejects_non_snapshot(self, tmp_path, capsys):
        path = tmp_path / "not.json"
        path.write_text('{"hello": 1}')
        assert main(["obs", str(path)]) == 1
        assert "error" in capsys.readouterr().err
