"""Smoke tests for the example scripts (run in-process, scaled down)."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    """Import an example file as a fresh module namespace."""
    return runpy.run_path(str(EXAMPLES / name))


class TestFormatExplorer:
    def test_synthetic_tour_yields_ten_families(self):
        mod = _load("format_explorer.py")
        tour = list(mod["synthetic_tour"]())
        assert len(tour) == 10
        names = [t[0] for t in tour]
        assert "banded" in names and "rmat" in names

    def test_main_with_mtx_file(self, tmp_path, monkeypatch, capsys):
        from repro.matrices import random_uniform, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(random_uniform(500, 500, nnz=4000, seed=0), path)
        mod = _load("format_explorer.py")
        monkeypatch.setattr(sys, "argv", ["format_explorer.py", str(path)])
        mod["main"]()
        out = capsys.readouterr().out
        assert "m.mtx" in out
        assert "coo" in out and "merge_csr" in out


class TestAutotuneSolver:
    def test_jacobi_converges(self):
        mod = _load("autotune_solver.py")
        from repro.formats import COOMatrix
        from repro.matrices import stencil_2d

        A = stencil_2d(12, 12, points=5, seed=0)
        vals = np.where(A.row == A.col, 8.0 + np.abs(A.val), 0.25 * A.val)
        A = COOMatrix(A.shape, A.row, A.col, vals)
        b = np.ones(A.n_rows)
        x = mod["jacobi"](A, b, "csr", iters=150)
        from repro.formats import as_format

        residual = np.linalg.norm(b - as_format(A, "csr").spmv(x))
        assert residual < 1e-8 * np.linalg.norm(b)


class TestQuickstart:
    @pytest.mark.slow
    def test_runs_end_to_end(self, capsys):
        mod = _load("quickstart.py")
        mod["main"]()
        out = capsys.readouterr().out
        assert "formats agree" in out
        assert "predicted best format" in out
