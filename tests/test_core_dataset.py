"""Tests for dataset assembly, views and persistence."""

import numpy as np
import pytest

from repro.core import SpMVDataset, build_dataset
from repro.features import ALL_FEATURES
from repro.formats import FORMAT_NAMES
from repro.gpu import KEPLER_K40C, PASCAL_P100


class TestBuild:
    def test_shapes(self, mini_dataset):
        n = len(mini_dataset)
        assert n > 10
        assert mini_dataset.feature_array.shape == (n, 17)
        assert mini_dataset.times.shape == (n, 6)
        assert mini_dataset.formats == FORMAT_NAMES

    def test_labels_are_argmin(self, mini_dataset):
        np.testing.assert_array_equal(
            mini_dataset.labels, np.argmin(mini_dataset.times, axis=1)
        )

    def test_label_names(self, mini_dataset):
        names = mini_dataset.label_names
        assert all(n in FORMAT_NAMES for n in names)

    def test_times_positive(self, mini_dataset):
        assert np.all(mini_dataset.times > 0)

    def test_gflops(self, mini_dataset):
        nnz = mini_dataset.feature_array[:, ALL_FEATURES.index("nnz_tot")]
        expected = 2.0 * nnz[:, None] / mini_dataset.times / 1e9
        np.testing.assert_allclose(mini_dataset.gflops, expected)

    def test_deterministic(self, mini_corpus, mini_dataset):
        again = build_dataset(mini_corpus, KEPLER_K40C, "single", seed=3)
        np.testing.assert_allclose(again.times, mini_dataset.times)


class TestViews:
    def test_X_feature_sets(self, mini_dataset):
        assert mini_dataset.X("set1").shape[1] == 5
        assert mini_dataset.X("set12").shape[1] == 11
        assert mini_dataset.X("set123").shape[1] == 17
        assert mini_dataset.X("imp").shape[1] == 7

    def test_X_explicit_names(self, mini_dataset):
        X = mini_dataset.X(("nnz_tot", "n_rows"))
        np.testing.assert_array_equal(
            X[:, 0], mini_dataset.feature_array[:, ALL_FEATURES.index("nnz_tot")]
        )

    def test_subset_bool_and_index(self, mini_dataset):
        mask = mini_dataset.labels == mini_dataset.labels[0]
        sub = mini_dataset.subset(mask)
        assert len(sub) == mask.sum()
        sub2 = mini_dataset.subset(np.array([0, 1, 2]))
        assert len(sub2) == 3
        assert sub2.names == mini_dataset.names[:3]

    def test_restrict_formats(self, mini_dataset):
        basic = mini_dataset.restrict_formats(("ell", "csr", "hyb"))
        assert basic.formats == ("ell", "csr", "hyb")
        assert basic.times.shape[1] == 3
        # Labels re-derived over the subset.
        assert set(basic.label_names) <= {"ell", "csr", "hyb"}

    def test_drop_coo_best(self, mini_dataset):
        kept = mini_dataset.drop_coo_best()
        assert "coo" not in kept.label_names
        assert len(kept) <= len(mini_dataset)

    def test_drop_coo_best_noop_without_coo(self, mini_dataset):
        basic = mini_dataset.restrict_formats(("ell", "csr"))
        assert basic.drop_coo_best() is basic


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, mini_dataset):
        path = tmp_path / "ds.npz"
        mini_dataset.save(path)
        loaded = SpMVDataset.load(path)
        assert loaded.names == mini_dataset.names
        assert loaded.formats == mini_dataset.formats
        assert loaded.device == mini_dataset.device
        assert loaded.reps == mini_dataset.reps == 50
        np.testing.assert_allclose(loaded.times, mini_dataset.times)
        np.testing.assert_allclose(loaded.feature_array, mini_dataset.feature_array)

    def test_build_uses_cache(self, tmp_path, mini_corpus, mini_dataset):
        path = tmp_path / "cache.npz"
        mini_dataset.save(path)
        loaded = build_dataset(
            mini_corpus, KEPLER_K40C, "single", seed=99, cache_path=path
        )
        # Served from cache: seed 99 never ran.
        np.testing.assert_allclose(loaded.times, mini_dataset.times)

    def test_cache_wrong_device_rebuilt(self, tmp_path, mini_corpus, mini_dataset):
        """A cache from another GPU must not be served (it used to be)."""
        path = tmp_path / "cache.npz"
        mini_dataset.save(path)  # measured on the K40c
        rebuilt = build_dataset(
            mini_corpus, PASCAL_P100, "single", seed=3, cache_path=path
        )
        assert rebuilt.device == PASCAL_P100.name
        assert not np.allclose(rebuilt.times, mini_dataset.times)
        # The stale cache was replaced with the rebuilt measurements.
        assert SpMVDataset.load(path).device == PASCAL_P100.name

    def test_cache_wrong_reps_rebuilt(self, tmp_path, mini_corpus, mini_dataset):
        path = tmp_path / "cache.npz"
        mini_dataset.save(path)  # reps=50
        rebuilt = build_dataset(
            mini_corpus, KEPLER_K40C, "single", seed=3, reps=5, cache_path=path
        )
        assert rebuilt.reps == 5

    def test_cache_legacy_reps_accepted(self, tmp_path, mini_corpus, mini_dataset):
        """Datasets saved before reps was recorded (reps=0) stay usable."""
        path = tmp_path / "cache.npz"
        legacy = SpMVDataset(
            names=mini_dataset.names,
            feature_array=mini_dataset.feature_array,
            times=mini_dataset.times,
            formats=mini_dataset.formats,
            device=mini_dataset.device,
            precision=mini_dataset.precision,
            reps=0,
        )
        legacy.save(path)
        loaded = build_dataset(
            mini_corpus, KEPLER_K40C, "single", seed=99, cache_path=path
        )
        np.testing.assert_allclose(loaded.times, mini_dataset.times)

    def test_validation_on_construction(self, mini_dataset):
        with pytest.raises(ValueError, match="times shape"):
            SpMVDataset(
                names=mini_dataset.names,
                feature_array=mini_dataset.feature_array,
                times=mini_dataset.times[:, :2],
                formats=mini_dataset.formats,
                device="d",
                precision="single",
            )
