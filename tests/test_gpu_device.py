"""Tests for the device descriptors."""

import pytest

from repro.gpu import DEVICES, DeviceSpec, KEPLER_K40C, PASCAL_P100


class TestPresets:
    def test_paper_table3_parameters(self):
        # Table III: 13 Kepler SMs, 192 cores/MP, 12GB, 824 MHz, 1.5MB L2.
        assert KEPLER_K40C.n_sm == 13
        assert KEPLER_K40C.cores_per_sm == 192
        assert KEPLER_K40C.clock_mhz == 824.0
        assert KEPLER_K40C.l2_bytes == 1_572_864
        assert KEPLER_K40C.global_mem_bytes == 12 * 1024**3
        # 56 Pascal SMs, 64 cores/MP, 16GB, 1328 MHz, 4MB L2.
        assert PASCAL_P100.n_sm == 56
        assert PASCAL_P100.cores_per_sm == 64
        assert PASCAL_P100.clock_mhz == 1328.0
        assert PASCAL_P100.l2_bytes == 4_194_304

    def test_registry_aliases(self):
        assert DEVICES["k40c"] is KEPLER_K40C
        assert DEVICES["k80c"] is KEPLER_K40C  # the paper uses both names
        assert DEVICES["p100"] is PASCAL_P100

    def test_pascal_is_faster(self):
        assert PASCAL_P100.peak_bandwidth > KEPLER_K40C.peak_bandwidth
        assert PASCAL_P100.peak_gflops("double") > KEPLER_K40C.peak_gflops("double")
        assert PASCAL_P100.atomic_efficiency > KEPLER_K40C.atomic_efficiency


class TestDerived:
    def test_peak_gflops_precision_ratio(self):
        ratio = KEPLER_K40C.peak_gflops("double") / KEPLER_K40C.peak_gflops("single")
        assert ratio == pytest.approx(KEPLER_K40C.fp64_throughput_ratio)

    def test_stream_bandwidth_below_peak(self):
        for dev in (KEPLER_K40C, PASCAL_P100):
            assert dev.stream_bandwidth < dev.peak_bandwidth

    def test_utilization_monotone_saturating(self):
        dev = KEPLER_K40C
        values = [dev.utilization(w) for w in (0, 1e4, 1e6, 1e8, 1e12)]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] <= 1.0
        assert dev.utilization(dev.saturation_bytes) == pytest.approx(0.5)

    def test_with_overrides(self):
        tweaked = KEPLER_K40C.with_overrides(mem_bw_gbps=500.0)
        assert tweaked.mem_bw_gbps == 500.0
        assert tweaked.n_sm == KEPLER_K40C.n_sm
        assert KEPLER_K40C.mem_bw_gbps == 288.0  # original untouched


class TestValidation:
    def test_rejects_unknown_arch(self):
        with pytest.raises(ValueError, match="arch"):
            KEPLER_K40C.with_overrides(arch="fermi")

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError, match="positive"):
            KEPLER_K40C.with_overrides(n_sm=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            KEPLER_K40C.n_sm = 99
