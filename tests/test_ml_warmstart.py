"""Warm-restart training tests for the pure-numpy ML stack.

``warm_fit`` continues training an already-fitted model on new rows —
the entry point the adaptive serving loop uses to turn accumulated
feedback into candidate models without refitting from scratch.  The
invariants: warm rounds must actually learn, must leave the cold-fit
RNG stream untouched (cold fits stay bit-identical), and must freeze
whatever calibration the fitted state depends on (pipeline scalers,
regressor target normalisation).
"""

import numpy as np
import pytest

from repro.core import FormatSelector, SpMVDataset
from repro.features import ALL_FEATURES
from repro.ml import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    MLPClassifier,
    MLPEnsembleClassifier,
    MLPRegressor,
    NotFittedError,
    Pipeline,
    StandardScaler,
    accuracy_score,
    mean_squared_error,
)


def _cls_data(n=150, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


def _reg_data(n=150, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = X[:, 0] * 2.0 + np.sin(X[:, 1])
    return X, y


class TestMLPWarmFit:
    def test_requires_fitted_model(self):
        X, y = _cls_data()
        with pytest.raises(NotFittedError):
            MLPClassifier().warm_fit(X, y)

    def test_warm_rounds_improve_on_fresh_data(self):
        X, y = _cls_data()
        X2, y2 = _cls_data(seed=1)
        clf = MLPClassifier(hidden_layer_sizes=(16,), n_epochs=30, seed=3).fit(X, y)
        before = accuracy_score(y2, clf.predict(X2))
        for _ in range(3):
            clf.warm_fit(X2, y2, n_epochs=30)
        after = accuracy_score(y2, clf.predict(X2))
        assert after >= before
        assert clf.n_warm_fits_ == 3

    def test_cold_fit_stays_bit_identical_after_warm_rounds_elsewhere(self):
        X, y = _cls_data()
        ref = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=5).fit(X, y)
        other = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=5).fit(X, y)
        other.warm_fit(X, y)  # must not perturb any shared RNG stream
        again = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=5).fit(X, y)
        for w_ref, w_again in zip(ref.weights_, again.weights_):
            np.testing.assert_array_equal(w_ref, w_again)

    def test_warm_rounds_are_deterministic(self):
        X, y = _cls_data()

        def run():
            clf = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=5).fit(X, y)
            clf.warm_fit(X, y, n_epochs=5)
            clf.warm_fit(X, y, n_epochs=5)
            return clf.weights_

        for a, b in zip(run(), run()):
            np.testing.assert_array_equal(a, b)

    def test_dimension_and_label_validation(self):
        X, y = _cls_data()
        clf = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=5, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            clf.warm_fit(X[:, :3], y)
        with pytest.raises(ValueError):
            clf.warm_fit(X, y + 7)  # labels beyond the fitted classes

    def test_regressor_keeps_target_normalisation_frozen(self):
        X, y = _reg_data()
        reg = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=30, seed=1).fit(X, y)
        mean_before = reg._y_mean
        X2, y2 = _reg_data(seed=2)
        before = mean_squared_error(y2, reg.predict(X2))
        reg.warm_fit(X2, y2, n_epochs=30)
        assert reg._y_mean == mean_before
        assert mean_squared_error(y2, reg.predict(X2)) <= before

    def test_ensemble_warm_fits_every_member(self):
        X, y = _cls_data()
        ens = MLPEnsembleClassifier(
            n_members=3, hidden_layer_sizes=(8,), n_epochs=5, seed=2
        ).fit(X, y)
        ens.warm_fit(X, y, n_epochs=2)
        assert all(m.n_warm_fits_ == 1 for m in ens.members_)


class TestBoostingWarmFit:
    def test_classifier_appends_rounds_and_improves(self):
        X, y = _cls_data()
        clf = GradientBoostingClassifier(
            n_estimators=5, max_depth=2, seed=0
        ).fit(X, y)
        n_before = len(clf.trees_)
        before = accuracy_score(y, clf.predict(X))
        clf.warm_fit(X, y, n_rounds=10)
        assert len(clf.trees_) == n_before + 10
        assert accuracy_score(y, clf.predict(X)) >= before

    def test_regressor_appends_rounds_and_reduces_error(self):
        X, y = _reg_data()
        reg = GradientBoostingRegressor(
            n_estimators=5, max_depth=2, seed=0
        ).fit(X, y)
        before = mean_squared_error(y, reg.predict(X))
        reg.warm_fit(X, y, n_rounds=20)
        assert mean_squared_error(y, reg.predict(X)) < before

    def test_validates_rounds_and_labels(self):
        X, y = _cls_data()
        clf = GradientBoostingClassifier(n_estimators=3, seed=0).fit(X, y)
        with pytest.raises(ValueError, match="n_rounds"):
            clf.warm_fit(X, y, n_rounds=0)
        with pytest.raises(ValueError):
            clf.warm_fit(X, y + 9)

    def test_cold_fit_unaffected_by_warm_rounds_elsewhere(self):
        X, y = _reg_data()
        ref = GradientBoostingRegressor(n_estimators=4, seed=7).fit(X, y)
        other = GradientBoostingRegressor(n_estimators=4, seed=7).fit(X, y)
        other.warm_fit(X, y, n_rounds=3)
        again = GradientBoostingRegressor(n_estimators=4, seed=7).fit(X, y)
        np.testing.assert_array_equal(ref.predict(X), again.predict(X))
        assert len(ref.trees_) == len(again.trees_) == 4


class TestPipelineWarmFit:
    def test_transformers_stay_frozen(self):
        X, y = _cls_data()
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("mlp", MLPClassifier(hidden_layer_sizes=(8,), n_epochs=5, seed=0)),
        ]).fit(X, y)
        mean_before = pipe.steps[0][1].mean_.copy()
        X2, y2 = _cls_data(seed=9)
        pipe.warm_fit(X2 + 100.0, y2)  # wildly shifted inputs
        np.testing.assert_array_equal(pipe.steps[0][1].mean_, mean_before)

    def test_final_step_without_warm_fit_raises(self):
        from repro.ml import DecisionTreeClassifier

        X, y = _cls_data()
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("tree", DecisionTreeClassifier(max_depth=3)),
        ]).fit(X, y)
        with pytest.raises(AttributeError, match="warm_fit"):
            pipe.warm_fit(X, y)


class TestFormatSelectorWarmFit:
    @pytest.fixture
    def toy(self):
        rng = np.random.default_rng(0)
        n, formats = 120, ("coo", "csr", "ell", "hyb")
        X = np.abs(rng.normal(size=(n, len(ALL_FEATURES)))) + 0.1
        times = 1.0 + rng.random((n, len(formats)))
        return SpMVDataset(
            names=[f"m{i}" for i in range(n)],
            feature_array=X,
            times=times,
            formats=formats,
            device="toy",
            precision="single",
        )

    def test_supports_warm_start_flags(self):
        assert FormatSelector("mlp").supports_warm_start
        assert FormatSelector("mlp_ensemble").supports_warm_start
        assert FormatSelector("xgboost").supports_warm_start
        assert not FormatSelector("decision_tree").supports_warm_start
        assert not FormatSelector("svm").supports_warm_start

    def test_unsupported_family_raises(self, toy):
        sel = FormatSelector("decision_tree").fit(toy)
        with pytest.raises(ValueError, match="warm-start"):
            sel.warm_fit(toy)

    def test_warm_fit_on_dataset(self, toy):
        sel = FormatSelector(
            "mlp", feature_set="set123", n_epochs=5, seed=0
        ).fit(toy)
        before = sel.score(toy)
        sel.warm_fit(toy, n_epochs=20)
        assert sel.score(toy) >= before

    def test_format_vocabulary_mismatch_raises(self, toy):
        sel = FormatSelector("mlp", n_epochs=5).fit(toy)
        other = SpMVDataset(
            names=toy.names,
            feature_array=toy.feature_array,
            times=toy.times[:, :3],
            formats=toy.formats[:3],
            device="toy",
            precision="single",
        )
        with pytest.raises(ValueError, match="formats"):
            sel.warm_fit(other)

    def test_raw_array_requires_labels(self, toy):
        sel = FormatSelector("mlp", n_epochs=5).fit(toy)
        with pytest.raises(ValueError, match="y is required"):
            sel.warm_fit(toy.X(sel.feature_set))

    def test_warm_state_serializes(self, toy):
        sel = FormatSelector("mlp", n_epochs=5, seed=1).fit(toy)
        sel.warm_fit(toy, n_epochs=2)
        restored = FormatSelector.from_state(sel.get_state())
        np.testing.assert_array_equal(restored.predict(toy), sel.predict(toy))
        assert restored.supports_warm_start
        restored.warm_fit(toy, n_epochs=2)
