"""Adaptive serving tests: the online-learning loop end to end.

Unit coverage of every loop component (experience buffer, promotion
policy, Page–Hinkley / drift monitor, shadow scoreboard) plus the
acceptance scenario: a deliberately mistrained PRODUCTION selector is
corrected live — feedback accumulates into training rows, a candidate
trains and shadow-evaluates, the regret gate promotes it, and the
post-promotion regret drops measurably.  Also: gate-refusal, manual
promote/rollback (API, daemon ops, CLI), drift alarms, and the
registry's promotion audit trail.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core import FormatSelector, SpMVDataset
from repro.features import ALL_FEATURES
from repro.serve import (
    AdaptiveController,
    AdaptiveError,
    DriftMonitor,
    ExperienceBuffer,
    ModelRegistry,
    PageHinkley,
    PromotionPolicy,
    SelectionService,
    ShadowScoreboard,
    handle_request,
)

FORMATS = ("coo", "csr", "ell", "hyb")


def _toy_dataset(n=160, seed=0):
    """Synthetic workload where the best format follows feature 0."""
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(size=(n, len(ALL_FEATURES)))) + 0.1
    cuts = np.quantile(X[:, 0], [0.25, 0.5, 0.75])
    truth = np.digitize(X[:, 0], cuts)
    times = np.empty((n, len(FORMATS)))
    for i, t in enumerate(truth):
        times[i] = 1.0 + 0.5 * rng.random(len(FORMATS))
        times[i, t] = 0.5
    return SpMVDataset(
        names=[f"m{i}" for i in range(n)],
        feature_array=X,
        times=times,
        formats=FORMATS,
        device="toy",
        precision="single",
    )


def _mistrained(ds, model="decision_tree"):
    """A selector fitted on rotated labels — deliberately wrong."""
    bad = FormatSelector(model, feature_set="set123")
    bad.fit(ds.X("set123"), (ds.labels + 1) % len(FORMATS))
    bad.formats_ = tuple(ds.formats)
    return bad


def _observed(ds, i):
    return {f: float(t) for f, t in zip(ds.formats, ds.times[i])}


@pytest.fixture
def toy():
    return _toy_dataset()


@pytest.fixture
def rig(toy, tmp_path):
    """Registry with a mistrained production selector + live service."""
    registry = ModelRegistry(tmp_path)
    registry.save(_mistrained(toy), "sel", dataset=toy, promote=True)
    model, record = registry.load("sel")
    service = SelectionService(model, mode="direct")
    service.records["selector"] = record
    return toy, registry, service


# ---------------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------------


class TestExperienceBuffer:
    def test_rows_accumulate_and_bound(self):
        buf = ExperienceBuffer(maxlen=4)
        vec = np.ones(len(ALL_FEATURES))
        for i in range(7):
            buf.add(f"r{i}", vec, {"csr": 1.0, "ell": 2.0})
        assert len(buf) == 4
        assert buf.n_added == 7
        assert [r[0] for r in buf.rows()] == ["r3", "r4", "r5", "r6"]

    def test_rejects_non_canonical_vectors(self):
        buf = ExperienceBuffer()
        with pytest.raises(ValueError, match="canonical"):
            buf.add("r0", np.ones(3), {"csr": 1.0})

    def test_to_dataset_fills_missing_formats_with_inf(self):
        buf = ExperienceBuffer()
        vec = np.ones(len(ALL_FEATURES))
        buf.add("a", vec, {"csr": 2.0, "ell": 1.0})
        ds = buf.to_dataset(FORMATS, device="d", precision="single")
        assert ds is not None and len(ds) == 1
        row = ds.times[0]
        assert row[FORMATS.index("ell")] == 1.0
        assert np.isinf(row[FORMATS.index("coo")])
        assert ds.labels[0] == FORMATS.index("ell")

    def test_min_coverage_filters_uninformative_rows(self):
        buf = ExperienceBuffer(min_coverage=2)
        vec = np.ones(len(ALL_FEATURES))
        buf.add("only-chosen", vec, {"csr": 1.0})
        assert buf.to_dataset(FORMATS) is None
        buf.add("covered", vec, {"csr": 1.0, "hyb": 3.0})
        ds = buf.to_dataset(FORMATS)
        assert ds.names == ["covered"]

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ExperienceBuffer(maxlen=0)
        with pytest.raises(ValueError):
            ExperienceBuffer(min_coverage=0)


class TestPromotionPolicy:
    def test_gate_sequence(self):
        policy = PromotionPolicy(
            min_samples=10, min_improvement=0.1, cooldown_s=60.0
        )
        ok, why = policy.evaluate(
            n_paired=3, shadow_regret_mean=0.0, production_regret_mean=1.0
        )
        assert not ok and "insufficient samples" in why
        ok, why = policy.evaluate(
            n_paired=20, shadow_regret_mean=0.0, production_regret_mean=1.0,
            seconds_since_promotion=5.0,
        )
        assert not ok and "cooldown" in why
        ok, why = policy.evaluate(
            n_paired=20, shadow_regret_mean=0.0, production_regret_mean=0.0
        )
        assert not ok and "already zero" in why
        ok, why = policy.evaluate(
            n_paired=20, shadow_regret_mean=0.95, production_regret_mean=1.0
        )
        assert not ok and "improvement" in why
        ok, why = policy.evaluate(
            n_paired=20, shadow_regret_mean=0.2, production_regret_mean=1.0,
            seconds_since_promotion=120.0,
        )
        assert ok and "improvement" in why


class TestPageHinkley:
    def test_stationary_stream_stays_quiet(self):
        rng = np.random.default_rng(0)
        ph = PageHinkley(delta=0.005, threshold=0.5, min_samples=30)
        assert not any(ph.update(x) for x in 0.2 + 0.01 * rng.random(500))

    def test_upward_mean_shift_alarms(self):
        rng = np.random.default_rng(0)
        ph = PageHinkley(delta=0.005, threshold=0.5, min_samples=30)
        for x in 0.2 + 0.01 * rng.random(100):
            assert not ph.update(x)
        fired = [ph.update(x) for x in 1.0 + 0.01 * rng.random(100)]
        assert any(fired)

    def test_reset_clears_state(self):
        ph = PageHinkley(min_samples=1, threshold=0.1)
        ph.update(0.0)
        assert ph.update(10.0)
        ph.reset()
        assert ph.n == 0 and ph.statistic == 0.0


class TestDriftMonitor:
    def test_feature_shift_alarm_is_rising_edge(self):
        rng = np.random.default_rng(1)
        mon = DriftMonitor(window=32, shift_threshold=3.0)
        base = rng.normal(size=(200, 4))
        edges = [mon.update(features=v) for v in base]
        assert not any(edges)
        assert mon.feature_shift() < 3.0
        shifted = rng.normal(size=(64, 4)) + 10.0
        edges = [mon.update(features=v) for v in shifted]
        assert sum(edges) == 1  # alarm latches; only the edge counts
        assert mon.feature_shift() > 3.0
        assert mon.n_alarms == 1

    def test_regret_stream_feeds_page_hinkley(self):
        mon = DriftMonitor(
            window=8,
            page_hinkley=PageHinkley(min_samples=5, threshold=0.2),
        )
        for _ in range(20):
            mon.update(regret=0.01)
        assert any(mon.update(regret=2.0) for _ in range(20))
        snap = mon.snapshot()
        assert snap["alarmed"] and snap["regret_ph"] > 0.2

    def test_snapshot_shape(self):
        snap = DriftMonitor(window=4).snapshot()
        for key in ("observations", "feature_shift", "shift_threshold",
                    "reference_filled", "regret_ph", "alarms", "alarmed"):
            assert key in snap


class TestShadowScoreboard:
    def test_pairing_math(self):
        board = ShadowScoreboard("sel", "v0002")
        board.record_decisions(5)
        board.record_pair(0.0, 1.0, agreed=False)
        board.record_pair(0.5, 1.5, agreed=True)
        board.record_uncovered()
        snap = board.snapshot()
        assert snap["n_decisions"] == 5
        assert snap["n_paired"] == 2
        assert snap["n_uncovered"] == 1
        assert snap["agreement_rate"] == 0.5
        assert snap["shadow_regret_mean"] == pytest.approx(0.25)
        assert snap["production_regret_mean"] == pytest.approx(1.25)
        assert snap["improvement"] == pytest.approx(1.0 - 0.25 / 1.25)


# ---------------------------------------------------------------------------
# Registry audit trail
# ---------------------------------------------------------------------------


class TestPromotionAudit:
    def test_promote_appends_audit_records(self, toy, tmp_path):
        registry = ModelRegistry(tmp_path)
        sel = _mistrained(toy)
        registry.save(sel, "sel", dataset=toy)
        registry.save(sel, "sel", dataset=toy)
        registry.promote("sel", "v0001", reason="bootstrap")
        registry.promote("sel", "v0002", reason="better",
                         stats={"n_paired": 7})
        registry.promote("sel", "v0001", action="rollback", reason="revert")
        history = registry.promotion_history("sel")
        assert [e["action"] for e in history] == [
            "promote", "promote", "rollback"
        ]
        assert history[0]["previous"] is None
        assert history[1]["previous"] == "v0001"
        assert history[1]["stats"] == {"n_paired": 7}
        assert history[2]["version"] == "v0001"
        assert registry.production_version("sel") == "v0001"

    def test_returned_record_carries_the_entry(self, toy, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(_mistrained(toy), "sel", dataset=toy)
        record = registry.promote("sel", "v0001", reason="why not")
        assert record.meta["promotion"]["reason"] == "why not"

    def test_unreadable_lines_are_skipped(self, toy, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(_mistrained(toy), "sel", dataset=toy)
        registry.promote("sel", "v0001")
        with open(tmp_path / "sel" / "PROMOTIONS.jsonl", "a") as fh:
            fh.write("not json\n")
        assert len(registry.promotion_history("sel")) == 1

    def test_history_empty_without_file(self, tmp_path):
        assert ModelRegistry(tmp_path).promotion_history("sel") == []


# ---------------------------------------------------------------------------
# The closed loop
# ---------------------------------------------------------------------------


def _drive(service, ds, indices):
    """Serve + report observed times for the given dataset rows."""
    regrets = []
    for i in indices:
        decision = service.predict(ds.feature_array[i])
        event = service.record_feedback(decision.request_id, _observed(ds, i))
        regrets.append(event.regret)
    return regrets


class TestAdaptiveLoop:
    def test_mistrained_production_is_corrected_end_to_end(self, rig):
        """The acceptance scenario: train -> shadow -> gated promote."""
        ds, registry, service = rig
        controller = AdaptiveController(
            service,
            registry,
            "sel",
            policy=PromotionPolicy(min_samples=20, min_improvement=0.05),
            train_every=50,
            min_train_rows=40,
        )
        assert service.adaptive is controller
        regrets = _drive(service, ds, range(len(ds)))

        assert controller.n_trainings >= 1
        assert controller.n_promotions >= 1
        assert registry.production_version("sel") != "v0001"
        # The mistrained model was wrong nearly everywhere; the promoted
        # candidate must cut live mean regret down hard.
        before = np.mean(regrets[:40])
        after = np.mean(regrets[-40:])
        assert before > 0.5
        assert after < before / 2
        # Audit trail records the gated move with its evidence.
        audited = [e for e in registry.promotion_history("sel")
                   if e["action"] == "promote" and e.get("stats")]
        assert audited
        assert audited[0]["stats"]["n_paired"] >= 20
        assert audited[0]["stats"]["improvement"] >= 0.05
        # The service hot-swapped: provenance follows the new version.
        assert service.records["selector"].version == (
            registry.production_version("sel")
        )

    def test_gate_unmet_skips_promotion(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(
            service,
            registry,
            "sel",
            # Impossible bar: nothing improves regret by 100x.
            policy=PromotionPolicy(min_samples=15, min_improvement=1.5),
            train_every=40,
            min_train_rows=30,
        )
        _drive(service, ds, range(120))
        assert controller.n_trainings >= 1
        assert controller.n_promotions == 0
        assert registry.production_version("sel") == "v0001"
        with pytest.raises(AdaptiveError, match="gate not met"):
            controller.promote()
        status = controller.status()
        assert status["shadow"] is not None
        assert status["shadow"]["gate"]["ok"] is False

    def test_shadow_scoreboard_pairs_against_production(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(
            service, registry, "sel",
            policy=PromotionPolicy(min_samples=10 ** 6),  # never promote
            train_every=40, min_train_rows=40,
        )
        _drive(service, ds, range(60))
        board = controller.status()["shadow"]
        assert board is not None
        assert board["n_paired"] > 0
        # Observations cover every format, so no shadow pick is uncovered.
        assert board["n_uncovered"] == 0
        assert board["shadow_regret_mean"] <= board["production_regret_mean"]

    def test_train_candidate_needs_experience(self, rig):
        _, registry, service = rig
        controller = AdaptiveController(service, registry, "sel", auto=False)
        assert controller.train_candidate() is None
        with pytest.raises(AdaptiveError, match="not enough experience"):
            controller.train_candidate(force=True)
        with pytest.raises(AdaptiveError, match="no shadow candidate"):
            controller.promote(force=True)

    def test_warm_start_candidate_for_mlp_family(self, toy, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(_mistrained(toy, model="mlp"), "sel", dataset=toy,
                      promote=True)
        model, _ = registry.load("sel")
        service = SelectionService(model, mode="direct")
        controller = AdaptiveController(
            service, registry, "sel", auto=False,
            min_train_rows=30, warm_kwargs={"n_epochs": 5},
        )
        _drive(service, toy, range(40))
        record = controller.train_candidate()
        assert record is not None
        assert record.meta["warm_start"] is True
        assert record.meta["trained_by"] == "adaptive"
        assert record.meta["parent_version"] == "v0001"

    def test_cold_refit_candidate_for_tree_family(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(
            service, registry, "sel", auto=False, min_train_rows=30,
        )
        _drive(service, ds, range(40))
        record = controller.train_candidate()
        assert record.meta["warm_start"] is False
        assert record.meta["n_experience_rows"] >= 30

    def test_manual_rollback_restores_previous_version(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(
            service, registry, "sel",
            policy=PromotionPolicy(min_samples=20, min_improvement=0.05),
            train_every=50, min_train_rows=40,
        )
        _drive(service, ds, range(len(ds)))
        promoted = registry.production_version("sel")
        assert controller.n_promotions >= 1 and promoted != "v0001"
        entry = controller.rollback(reason="bad rollout")
        assert entry["action"] == "rollback"
        assert registry.production_version("sel") != promoted
        assert service.records["selector"].version == (
            registry.production_version("sel")
        )
        assert controller.n_rollbacks == 1

    def test_rollback_without_history_fails(self, rig):
        _, registry, service = rig
        controller = AdaptiveController(service, registry, "sel", auto=False)
        with pytest.raises(AdaptiveError, match="no previous"):
            controller.rollback()

    def test_hook_errors_are_counted_not_raised(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(service, registry, "sel", auto=False)
        controller.buffer = None  # break the ingest path
        errors_before = controller._m_errors.value
        decision = service.predict(ds.feature_array[0])
        service.record_feedback(decision.request_id, _observed(ds, 0))
        assert controller._m_errors.value > errors_before

    def test_stats_exposes_adaptive_and_drift_sections(self, rig):
        ds, registry, service = rig
        AdaptiveController(service, registry, "sel", auto=False)
        _drive(service, ds, range(5))
        section = service.stats()["service"]["adaptive"]
        assert section["model"] == "sel"
        assert section["production"] == "v0001"
        assert section["buffer"]["rows"] == 5
        assert "feature_shift" in section["drift"]
        assert "regret_ph" in section["drift"]

    def test_drift_alarm_fires_on_feature_shift(self, rig):
        ds, registry, service = rig
        controller = AdaptiveController(
            service, registry, "sel", auto=False,
            # Regret PH disabled: the mistrained production would trip
            # it immediately; this test isolates the feature detector.
            drift=DriftMonitor(window=16, shift_threshold=3.0,
                               page_hinkley=PageHinkley(threshold=1e9)),
        )
        _drive(service, ds, range(32))
        assert controller.status()["drift"]["alarms"] == 0
        shifted = ds.feature_array[:32] + 100.0
        for i in range(32):
            decision = service.predict(shifted[i])
            service.record_feedback(decision.request_id, _observed(ds, i))
        status = controller.status()["drift"]
        assert status["alarms"] >= 1
        assert status["feature_shift"] > 3.0
        # The obs gauge mirrors the detector.
        gauge = obs.gauge("serve.adaptive.drift.feature_shift")
        assert gauge.value > 3.0

    def test_adopt_selector_validates_vocabulary(self, rig, mini_dataset):
        _, _, service = rig
        other = FormatSelector("decision_tree", feature_set="set123").fit(
            mini_dataset.drop_coo_best()
        )
        if tuple(other.formats_) != tuple(service.formats):
            with pytest.raises(ValueError, match="formats"):
                service.adopt_selector(other)
        with pytest.raises(ValueError, match="dataset-fitted"):
            service.adopt_selector(FormatSelector("decision_tree"))


# ---------------------------------------------------------------------------
# Daemon ops + CLI
# ---------------------------------------------------------------------------


class TestDaemonOps:
    def test_ops_require_a_controller(self, rig):
        _, _, service = rig
        for op in ("adaptive", "promote", "rollback"):
            response = handle_request(service, {"op": op})
            assert response["ok"] is False
            assert "no adaptive controller" in response["error"]

    def test_adaptive_status_and_forced_train(self, rig):
        ds, registry, service = rig
        AdaptiveController(service, registry, "sel", auto=False,
                           min_train_rows=20)
        response = handle_request(service, {"op": "adaptive"})
        assert response["ok"] and response["adaptive"]["model"] == "sel"
        _drive(service, ds, range(30))
        response = handle_request(service, {"op": "adaptive", "train": True})
        assert response["ok"] and response["trained"] == "v0002"
        assert response["adaptive"]["shadow"]["version"] == "v0002"

    def test_promote_and_rollback_ops(self, rig):
        ds, registry, service = rig
        AdaptiveController(service, registry, "sel", auto=False,
                           min_train_rows=20)
        _drive(service, ds, range(30))
        handle_request(service, {"op": "adaptive", "train": True})
        response = handle_request(
            service, {"op": "promote", "reason": "operator says so"}
        )
        assert response["ok"]
        assert response["promotion"]["version"] == "v0002"
        assert registry.production_version("sel") == "v0002"
        response = handle_request(service, {"op": "rollback"})
        assert response["ok"]
        assert response["promotion"]["action"] == "rollback"
        assert registry.production_version("sel") == "v0001"

    def test_promote_explicit_version(self, rig):
        ds, registry, service = rig
        AdaptiveController(service, registry, "sel", auto=False,
                           min_train_rows=20)
        _drive(service, ds, range(30))
        handle_request(service, {"op": "adaptive", "train": True})
        response = handle_request(
            service, {"op": "promote", "version": "v0002", "reason": "pin"}
        )
        assert response["ok"]
        assert registry.production_version("sel") == "v0002"
        assert service.records["selector"].version == "v0002"


class TestAdaptCLI:
    @pytest.fixture
    def audited_registry(self, toy, tmp_path):
        root = tmp_path / "reg"
        registry = ModelRegistry(root)
        sel = _mistrained(toy)
        registry.save(sel, "sel", dataset=toy)
        registry.save(sel, "sel", dataset=toy)
        registry.promote("sel", "v0001", reason="bootstrap")
        return root

    def test_status(self, audited_registry, capsys):
        assert main(["adapt", "status", "--registry", str(audited_registry),
                     "--name", "sel"]) == 0
        out = capsys.readouterr().out
        assert "production: v0001" in out
        assert "v0001, v0002" in out

    def test_history_table_and_json(self, audited_registry, capsys):
        assert main(["adapt", "history", "--registry", str(audited_registry),
                     "--name", "sel"]) == 0
        assert "bootstrap" in capsys.readouterr().out
        assert main(["adapt", "history", "--registry", str(audited_registry),
                     "--name", "sel", "--json"]) == 0
        entry = json.loads(capsys.readouterr().out.splitlines()[0])
        assert entry["action"] == "promote"

    def test_promote_and_rollback(self, audited_registry, capsys):
        assert main(["adapt", "promote", "--registry", str(audited_registry),
                     "--name", "sel", "--version", "v0002",
                     "--reason", "ship it"]) == 0
        registry = ModelRegistry(audited_registry)
        assert registry.production_version("sel") == "v0002"
        assert main(["adapt", "rollback", "--registry", str(audited_registry),
                     "--name", "sel"]) == 0
        assert registry.production_version("sel") == "v0001"
        history = registry.promotion_history("sel")
        assert history[-1]["action"] == "rollback"

    def test_unknown_model_fails(self, tmp_path, capsys):
        assert main(["adapt", "status", "--registry", str(tmp_path),
                     "--name", "ghost"]) == 1
        assert "error" in capsys.readouterr().err
