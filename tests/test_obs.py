"""repro.obs: spans, metrics, exporters, and the disabled fast path."""

import io
import json
import threading
import time

import pytest

from repro import obs
from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    JsonLinesSink,
    check_snapshot,
    render_snapshot,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with obs disabled and empty."""
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


class TestSpans:
    def test_nesting_builds_paths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = obs.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert "inner" not in spans

    def test_parent_total_bounds_children(self):
        obs.enable()
        with obs.span("parent"):
            for _ in range(5):
                with obs.span("child"):
                    time.sleep(0.001)
        snap = obs.snapshot()
        spans = snap["spans"]
        assert spans["parent"]["total_s"] >= spans["parent/child"]["total_s"]
        assert check_snapshot(snap) == []

    def test_exception_unwinds_stack(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("a"):
                with obs.span("b"):
                    raise RuntimeError("boom")
        # Both spans closed; a new top-level span is not nested under 'a'.
        with obs.span("c"):
            pass
        spans = obs.snapshot()["spans"]
        assert set(spans) == {"a", "a/b", "c"}

    def test_threads_trace_independently(self):
        obs.enable()
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()
            with obs.span(name):
                with obs.span("leaf"):
                    pass

        threads = [threading.Thread(target=work, args=(n,))
                   for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = obs.snapshot()["spans"]
        # Each thread has its own stack: leaves nest under their own
        # thread's root, never under the other's.
        assert spans["t1/leaf"]["count"] == 1
        assert spans["t2/leaf"]["count"] == 1

    def test_record_span_attaches_to_open_parent(self):
        obs.enable()
        with obs.span("run"):
            obs.record_span("step", 0.25)
        spans = obs.snapshot()["spans"]
        assert spans["run/step"]["total_s"] == pytest.approx(0.25)

    def test_open_spans_appear_in_live_snapshot(self):
        obs.enable()
        with obs.span("session"):
            with obs.span("request"):
                pass
            snap = obs.snapshot()
        spans = snap["spans"]
        assert spans["session"]["open"] == 1
        assert spans["session"]["total_s"] > 0
        assert check_snapshot(snap) == []

    def test_traced_decorator(self):
        obs.enable()

        @obs.traced("ml.fit")
        def fit():
            return 42

        assert fit() == 42
        assert obs.snapshot()["spans"]["ml.fit"]["count"] == 1


class TestMetrics:
    def test_counter_gauge(self):
        obs.enable()
        obs.incr("jobs")
        obs.incr("jobs", 2)
        obs.set_gauge("workers", 8)
        metrics = obs.snapshot()["metrics"]
        assert metrics["jobs"] == {"type": "counter", "value": 3.0}
        assert metrics["workers"]["value"] == 8

    def test_histogram_quantiles(self):
        obs.enable()
        for ms in range(1, 101):
            obs.observe("latency", ms * 1e-3)
        h = obs.snapshot()["metrics"]["latency"]
        assert h["count"] == 100
        assert h["min"] == pytest.approx(1e-3)
        assert h["max"] == pytest.approx(0.1)
        # Bucketed estimates: right bucket, not exact order statistics.
        assert 0.03 <= h["p50"] <= 0.08
        assert 0.08 <= h["p95"] <= 0.11
        assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"] + 1e-12

    def test_accessors_live_when_disabled(self):
        # counter()/gauge()/histogram() handles bypass the enabled check:
        # the serve telemetry facade needs exact counts regardless.
        c = obs.counter("always")
        c.inc()
        c.inc(4)
        assert obs.snapshot()["metrics"]["always"]["value"] == 5.0

    def test_module_helpers_noop_when_disabled(self):
        obs.incr("nope")
        obs.observe("nope_h", 1.0)
        with obs.span("nope_span"):
            pass
        snap = obs.snapshot()
        assert snap["spans"] == {}
        assert "nope" not in snap["metrics"]


class TestExporters:
    def test_snapshot_schema_and_roundtrip(self):
        obs.enable()
        with obs.span("s"):
            obs.incr("c")
            obs.observe("h", 0.5)
        snap = obs.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        clone = json.loads(json.dumps(snap))
        assert clone == snap
        assert check_snapshot(clone) == []

    def test_render_snapshot_tables(self):
        obs.enable()
        with obs.span("run"):
            with obs.span("step"):
                pass
        obs.incr("done")
        obs.observe("seconds", 2.0)
        text = render_snapshot(obs.snapshot())
        assert "run" in text and "step" in text
        assert "done" in text and "counter" in text
        assert "seconds" in text and "p95" in text

    def test_render_empty(self):
        assert "empty" in render_snapshot(obs.snapshot())

    def test_jsonl_sink_receives_events(self, tmp_path):
        stream = io.StringIO()
        obs.enable(sink=JsonLinesSink(stream))
        obs.emit("campaign.progress", {"done": 3, "total": 10})
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert len(lines) == 1
        assert lines[0]["event"] == "campaign.progress"
        # Payload keys are flattened into the event record.
        assert lines[0]["done"] == 3 and lines[0]["total"] == 10
        assert "ts" in lines[0]

    def test_jsonl_sink_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.enable(sink=JsonLinesSink(path))
        obs.emit("e1", {})
        obs.emit("e2", {"k": 1})
        obs.disable(reset=True)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["e1", "e2"]

    def test_check_snapshot_flags_violations(self):
        bad = {
            "schema": SNAPSHOT_SCHEMA,
            "spans": {
                "a/b": {"count": 1, "total_s": 2.0, "mean_s": 2.0,
                        "min_s": 2.0, "max_s": 2.0},
            },
            "metrics": {},
        }
        problems = check_snapshot(bad)
        assert any("parent" in p for p in problems)


class TestDisabledOverhead:
    def test_disabled_path_is_cheap(self):
        """The always-compiled-in disabled checks must cost an
        instrumented hot loop under 2% of its runtime."""
        import numpy as np

        from repro.ml import GradientBoostingClassifier

        n_calls = 20_000
        start = time.perf_counter()
        for _ in range(n_calls):
            with obs.span("noop"):
                pass
            obs.incr("noop_c")
            obs.observe("noop_h", 1.0)
        per_site_s = (time.perf_counter() - start) / (3 * n_calls)

        rng = np.random.default_rng(0)
        X = rng.random((200, 17))
        y = rng.integers(0, 4, 200)
        n_estimators = 8
        start = time.perf_counter()
        GradientBoostingClassifier(n_estimators=n_estimators, max_depth=4).fit(X, y)
        fit_s = time.perf_counter() - start

        # Bill every boosting round three full disabled primitives — a
        # deliberate overestimate (the fit hoists the enabled() check).
        rounds = n_estimators * 4
        overhead = rounds * 3 * per_site_s / fit_s
        assert overhead < 0.02, (
            f"disabled obs overhead {100 * overhead:.2f}% >= 2% "
            f"(per-site {1e9 * per_site_s:.0f}ns, fit {fit_s:.3f}s)"
        )

    def test_enable_disable_toggles(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        with obs.span("x"):
            pass
        obs.disable(reset=True)
        assert not obs.enabled()
        assert obs.snapshot()["spans"] == {}
