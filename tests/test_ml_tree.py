"""Tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor, accuracy_score


@pytest.fixture
def blobs(rng):
    centers = rng.standard_normal((4, 5)) * 8
    y = rng.integers(0, 4, 200)
    X = centers[y] + rng.standard_normal((200, 5))
    return X, y


class TestClassifier:
    def test_fits_training_data_exactly_when_unbounded(self, rng):
        X = rng.standard_normal((100, 4))
        y = rng.integers(0, 3, 100)
        tree = DecisionTreeClassifier(max_depth=64).fit(X, y)
        # Continuous features make exact memorisation possible.
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_generalises_on_blobs(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=8).fit(X[:150], y[:150])
        assert accuracy_score(y[150:], tree.predict(X[150:])) > 0.85

    def test_depth_limit_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_stump_on_pure_labels(self, rng):
        X = rng.standard_normal((20, 3))
        tree = DecisionTreeClassifier().fit(X, np.ones(20, dtype=int))
        assert tree.depth_ == 0
        assert np.all(tree.predict(X) == 1)

    def test_min_samples_leaf(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=30, min_samples_leaf=40).fit(X, y)

        def leaves(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaves(node.left) + leaves(node.right)

        assert min(leaves(tree.root_)) >= 40

    def test_predict_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        p = tree.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert p.shape == (200, 4)

    def test_feature_importance_finds_signal(self, rng):
        X = rng.standard_normal((300, 6))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_feature_count_checked_at_predict(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict(X[:, :3])

    def test_rejects_negative_labels(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            DecisionTreeClassifier().fit(rng.standard_normal((5, 2)), [-1, 0, 1, 0, 1])

    def test_max_features_subsampling(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=5, max_features=2, seed=1).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.5

    def test_single_sample(self):
        tree = DecisionTreeClassifier().fit(np.array([[1.0]]), np.array([2]))
        assert tree.predict(np.array([[5.0]]))[0] == 2

    def test_deterministic(self, blobs):
        X, y = blobs
        a = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y).predict(X)
        b = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestRegressor:
    def test_fits_piecewise_constant(self, rng):
        X = np.sort(rng.random((200, 1)), axis=0)
        y = np.where(X[:, 0] > 0.5, 3.0, -1.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_approximates_smooth_function(self, rng):
        X = rng.random((500, 1)) * 6
        y = np.sin(X[:, 0])
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        mse = np.mean((tree.predict(X) - y) ** 2)
        assert mse < 0.01

    def test_leaf_is_mean(self, rng):
        X = np.ones((10, 1))  # no split possible
        y = rng.standard_normal(10)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X)[0] == pytest.approx(y.mean())

    def test_importance_on_regression_signal(self, rng):
        X = rng.standard_normal((300, 4))
        y = 5.0 * X[:, 1] + 0.01 * rng.standard_normal(300)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_invalid_depth(self, rng):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeRegressor(max_depth=0).fit(
                rng.standard_normal((5, 2)), rng.standard_normal(5)
            )
