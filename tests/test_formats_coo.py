"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.formats import COOMatrix, FormatError, INDEX_BYTES


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = (rng.random((8, 5)) < 0.4) * rng.standard_normal((8, 5))
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(coo.to_dense(), dense)

    def test_canonical_ordering(self):
        # Entries given out of order end up sorted row-major.
        coo = COOMatrix((3, 3), [2, 0, 1, 0], [0, 2, 1, 0], [1.0, 2.0, 3.0, 4.0])
        assert list(coo.row) == [0, 0, 1, 2]
        assert list(coo.col) == [0, 2, 1, 0]
        assert list(coo.val) == [4.0, 2.0, 3.0, 1.0]

    def test_duplicates_are_summed(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.5, 2.5, 3.0])
        assert coo.nnz == 2
        assert coo.to_dense()[0, 1] == pytest.approx(4.0)

    def test_empty_matrix(self):
        coo = COOMatrix.empty((5, 7))
        assert coo.nnz == 0
        assert coo.shape == (5, 7)
        assert coo.to_dense().sum() == 0

    def test_rejects_out_of_bounds_row(self):
        with pytest.raises(FormatError, match="row index"):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_rejects_out_of_bounds_col(self):
        with pytest.raises(FormatError, match="column index"):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_rejects_negative_indices(self):
        with pytest.raises(FormatError, match="negative"):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(FormatError, match="mismatch"):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_rejects_bad_shape(self):
        with pytest.raises(FormatError):
            COOMatrix((2,), [0], [0], [1.0])

    def test_arrays_are_read_only(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.val[0] = 99.0

    def test_integer_values_upcast_to_float(self):
        coo = COOMatrix((2, 2), [0], [0], np.array([3], dtype=np.int32))
        assert coo.dtype == np.float64


class TestBehaviour:
    def test_spmv_matches_dense(self, rng, small_coo):
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(small_coo.spmv(x), small_coo.to_dense() @ x)

    def test_spmv_rejects_wrong_length(self, small_coo):
        with pytest.raises(FormatError, match="mismatch"):
            small_coo.spmv(np.ones(small_coo.n_cols + 1))

    def test_spmv_rejects_matrix_input(self, small_coo):
        with pytest.raises(FormatError, match="1-D"):
            small_coo.spmv(np.ones((small_coo.n_cols, 1)))

    def test_spmv_preserves_dtype(self, small_coo):
        single = small_coo.astype(np.float32)
        y = single.spmv(np.ones(single.n_cols, dtype=np.float32))
        assert y.dtype == np.float32

    def test_transpose(self, small_coo, rng):
        x = rng.standard_normal(small_coo.n_rows)
        t = small_coo.transpose()
        np.testing.assert_allclose(t.spmv(x), small_coo.to_dense().T @ x)

    def test_select_rows_keeps_shape(self, small_coo):
        mask = np.zeros(small_coo.n_rows, dtype=bool)
        mask[:10] = True
        sub = small_coo.select_rows(mask)
        assert sub.shape == small_coo.shape
        assert set(np.unique(sub.row)) <= set(range(10))

    def test_row_lengths(self, small_coo):
        lengths = small_coo.row_lengths()
        assert lengths.sum() == small_coo.nnz
        dense = small_coo.to_dense()
        np.testing.assert_array_equal(lengths, (dense != 0).sum(axis=1))

    def test_memory_bytes(self, small_coo):
        expected = small_coo.nnz * (2 * INDEX_BYTES + 8)
        assert small_coo.memory_bytes() == expected

    def test_astype_roundtrip(self, small_coo):
        single = small_coo.astype(np.float32)
        assert single.dtype == np.float32
        assert single.precision == "single"
        assert small_coo.astype(np.float64) is small_coo
