"""Failure-injection tests: datasets under simulated execution failures."""

import numpy as np
import pytest

from repro.core import SpMVDataset, build_dataset, label_matrix
from repro.gpu import KEPLER_K40C, NoiseModel, SpMVExecutor
from repro.matrices import SyntheticCorpus


class TestLabelingUnderFailures:
    def test_partial_failure_keeps_other_formats(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=1.5)
        label = label_matrix(ex, skewed_coo, name="victim")
        assert "ell" in label.failed
        assert label.best_format != "ell"
        assert len(label.times) == 5

    def test_failed_format_slowdown_is_inf(self, skewed_coo):
        """A failed format is infinitely worse, not a KeyError."""
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=1.5)
        label = label_matrix(ex, skewed_coo)
        assert label.slowdown("ell") == float("inf")
        # Formats never requested still raise.
        with pytest.raises(KeyError):
            label.slowdown("not_a_format")


class TestDatasetDropsIncomplete:
    def test_paper_drop_rule(self):
        """Matrices failing any format are dropped, like the paper's ~400."""
        corpus = SyntheticCorpus(scale=0.01, seed=9, max_nnz=100_000)
        full = build_dataset(corpus, KEPLER_K40C, "single", seed=9)
        # Re-run the labeling pass with a harsh ELL padding guard: every
        # matrix failing any format must be excluded, as in the paper.
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=3.0, seed=9)
        kept = 0
        dropped = 0
        for entry in corpus:
            matrix = entry.build()
            try:
                label = label_matrix(ex, matrix, name=entry.name)
            except ValueError:
                dropped += 1
                continue
            if label.complete:
                kept += 1
            else:
                dropped += 1
        assert kept + dropped == len(corpus)
        assert kept <= len(full)

    def test_empty_survivors_rejected(self):
        corpus = SyntheticCorpus(
            scale=0.004, seed=1, max_nnz=5_000, families=("power_law",)
        )
        # Nothing wrong here; just ensure the builder returns a dataset
        # or raises the documented error — never a silent empty object.
        try:
            ds = build_dataset(corpus, KEPLER_K40C, "single", seed=1)
            assert len(ds) > 0
        except ValueError as exc:
            assert "no corpus matrix survived" in str(exc)


class TestDeterminismAcrossNoiseSeeds:
    def test_noise_seed_changes_labels_only_at_margins(self):
        corpus = SyntheticCorpus(scale=0.01, seed=4, max_nnz=80_000)
        a = build_dataset(corpus, KEPLER_K40C, "single",
                          noise=NoiseModel(0.02, 0.03, seed=1), seed=4)
        b = build_dataset(corpus, KEPLER_K40C, "single",
                          noise=NoiseModel(0.02, 0.03, seed=2), seed=4)
        assert a.names == b.names
        agreement = float(np.mean(a.labels == b.labels))
        # Different "hardware instances" agree on most labels (the
        # deterministic model dominates) but not all (near-ties flip).
        assert agreement > 0.5
