"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.matrices import (
    GENERATOR_FAMILIES,
    banded,
    clustered,
    dense_rows,
    fem_blocks,
    multi_diagonal,
    power_law,
    random_uniform,
    rmat,
    stencil_2d,
    stencil_3d,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda s: random_uniform(50, 60, nnz=300, seed=s),
            lambda s: banded(100, 100, bandwidth=5, fill=0.9, seed=s),
            lambda s: power_law(100, 100, nnz=800, seed=s),
            lambda s: rmat(7, edge_factor=4, seed=s),
            lambda s: clustered(80, 80, nnz=400, seed=s),
            lambda s: dense_rows(80, 80, base_density=0.01, n_dense=2, seed=s),
            lambda s: fem_blocks(8, 10, seed=s),
        ],
    )
    def test_same_seed_same_matrix(self, make):
        a, b = make(42), make(42)
        np.testing.assert_array_equal(a.row, b.row)
        np.testing.assert_array_equal(a.col, b.col)
        np.testing.assert_allclose(a.val, b.val)

    def test_different_seed_different_matrix(self):
        a = random_uniform(100, 100, nnz=500, seed=1)
        b = random_uniform(100, 100, nnz=500, seed=2)
        assert not (
            a.nnz == b.nnz
            and np.array_equal(a.row, b.row)
            and np.array_equal(a.col, b.col)
        )


class TestStructure:
    def test_random_uniform_hits_nnz_target(self):
        m = random_uniform(1000, 1000, nnz=5000, seed=0)
        assert 0.95 * 5000 <= m.nnz <= 5000

    def test_random_uniform_density_mode(self):
        m = random_uniform(200, 200, density=0.05, seed=0)
        assert abs(m.nnz - 2000) < 200

    def test_random_uniform_dense_regime_exact(self):
        m = random_uniform(30, 30, nnz=500, seed=0)
        assert m.nnz == 500  # sampled without replacement

    def test_banded_stays_in_band(self):
        bw = 7
        m = banded(200, 200, bandwidth=bw, fill=1.0, seed=0)
        assert np.all(np.abs(m.col - m.row) <= bw)
        lengths = m.row_lengths()
        assert lengths.max() - lengths.min() <= bw  # near-uniform rows

    def test_banded_rectangular_follows_diagonal(self):
        m = banded(100, 300, bandwidth=5, fill=1.0, seed=0)
        assert np.all(np.abs(m.col - 3 * m.row) <= 5 + 3)

    def test_multi_diagonal_offsets(self):
        offs = (-3, 0, 2)
        m = multi_diagonal(50, offsets=offs, fill=1.0, seed=0)
        assert set(np.unique(m.col - m.row)) == set(offs)

    def test_stencil_2d_row_degree(self):
        m = stencil_2d(10, 10, points=5)
        assert m.shape == (100, 100)
        assert m.row_lengths().max() == 5  # interior nodes
        assert m.row_lengths().min() == 3  # corner nodes
        # Symmetric stencil => symmetric matrix.
        np.testing.assert_allclose(
            (m.to_dense() != 0), (m.to_dense() != 0).T
        )

    def test_stencil_3d_row_degree(self):
        m = stencil_3d(5, 5, 5, points=7)
        assert m.shape == (125, 125)
        assert m.row_lengths().max() == 7
        assert m.row_lengths().min() == 4

    def test_power_law_is_heavy_tailed(self):
        m = power_law(2000, 2000, nnz=40_000, alpha=2.5, seed=1)
        lengths = np.sort(m.row_lengths())[::-1]
        # Top 1% of rows hold a disproportionate share of nnz.
        top = lengths[:20].sum()
        assert top > 0.15 * m.nnz

    def test_rmat_shape_is_power_of_two(self):
        m = rmat(8, edge_factor=4, seed=0)
        assert m.shape == (256, 256)

    def test_rmat_skewed_degrees(self):
        m = rmat(10, edge_factor=16, seed=0)
        lengths = m.row_lengths()
        assert lengths.max() > 5 * max(lengths.mean(), 1)

    def test_dense_rows_background_is_regular(self):
        m = dense_rows(500, 500, base_density=0.02, n_dense=2, dense_fill=0.5, seed=0)
        lengths = m.row_lengths()
        # All but the dense rows have (about) k entries.
        k = max(1, int(round(0.02 * 500)))
        regular = np.sort(lengths)[:-2]
        assert regular.max() <= k  # duplicates can only shrink a row
        assert np.sort(lengths)[-2:].min() > 5 * k

    def test_clustered_has_contiguous_chunks(self):
        m = clustered(300, 300, nnz=3000, chunk=10, seed=0)
        from repro.features import extract_features

        f = extract_features(m)
        assert f["snzb_mu"] > 3.0  # chunks clearly longer than scattered (~1)

    def test_fem_blocks_block_diagonal_plus_coupling(self):
        m = fem_blocks(4, 10, coupling=0.0, seed=0)
        # Pure block-diagonal: |row - col| < block size within a block.
        assert np.all((m.row // 10) == (m.col // 10))


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            random_uniform(0, 5, nnz=1)

    def test_rejects_both_nnz_and_density(self):
        with pytest.raises(ValueError, match="exactly one"):
            random_uniform(5, 5, nnz=3, density=0.1)

    def test_rejects_bad_stencil(self):
        with pytest.raises(ValueError, match="points"):
            stencil_2d(5, 5, points=7)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            power_law(5, 5, nnz=10, alpha=1.0)

    def test_rejects_bad_rmat_probs(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat(4, probs=(0.5, 0.5, 0.5, 0.5))

    def test_registry_covers_all(self):
        assert len(GENERATOR_FAMILIES) == 10
        for gen in GENERATOR_FAMILIES.values():
            assert callable(gen)
