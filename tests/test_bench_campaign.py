"""Tests for the parallel, fault-tolerant measurement-campaign engine."""

import json
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.bench.campaign import (
    CampaignProgress,
    derive_matrix_seed,
    run_campaign,
    shard_key,
)
from repro.core import build_dataset
from repro.gpu import KEPLER_K40C, PASCAL_P100, NoiseModel
from repro.matrices import CorpusEntry, SyntheticCorpus


@pytest.fixture(scope="module")
def campaign_corpus():
    """~14-matrix corpus, small enough to label many times per test run."""
    return SyntheticCorpus(scale=0.01, seed=5, max_nnz=60_000)


def _bad_entry(name="boom"):
    """An entry whose build() raises (unknown generator kwarg)."""
    return CorpusEntry(
        name=name,
        family="random_uniform",
        bin_index=0,
        target_nnz=100,
        seed=1,
        params={"m": 10, "n": 10, "nnz": 50, "seed": 1, "bogus": 1},
    )


@dataclass(frozen=True)
class _KillerEntry(CorpusEntry):
    """An entry that hard-kills its worker process (simulated segfault)."""

    def build(self):
        os._exit(13)


class TestDeterminism:
    def test_parallel_matches_serial_bitwise(self, campaign_corpus):
        serial = run_campaign(campaign_corpus, KEPLER_K40C, "single",
                              seed=5, workers=1)
        parallel = run_campaign(campaign_corpus, KEPLER_K40C, "single",
                                seed=5, workers=4)
        ds1, ds4 = serial.to_dataset(), parallel.to_dataset()
        assert ds1.names == ds4.names
        assert ds1.times.tobytes() == ds4.times.tobytes()
        assert ds1.feature_array.tobytes() == ds4.feature_array.tobytes()

    def test_build_dataset_workers_equivalent(self, campaign_corpus):
        a = build_dataset(campaign_corpus, KEPLER_K40C, "single",
                          seed=5, workers=1)
        b = build_dataset(campaign_corpus, KEPLER_K40C, "single",
                          seed=5, workers=4)
        assert a.times.tobytes() == b.times.tobytes()
        assert a.reps == b.reps == 50

    def test_per_matrix_seeds_independent_of_companions(self, campaign_corpus):
        """A matrix's measurement does not depend on which others ran."""
        entries = list(campaign_corpus)
        full = run_campaign(entries, KEPLER_K40C, "single", seed=5)
        alone = run_campaign(entries[:1], KEPLER_K40C, "single", seed=5)
        assert full.results[0].times == alone.results[0].times

    def test_derive_matrix_seed_stable_and_distinct(self):
        assert derive_matrix_seed(0, "a") == derive_matrix_seed(0, "a")
        assert derive_matrix_seed(0, "a") != derive_matrix_seed(0, "b")
        assert derive_matrix_seed(0, "a") != derive_matrix_seed(1, "a")


class TestFaultTolerance:
    def test_python_failure_recorded_not_fatal(self, campaign_corpus):
        entries = list(campaign_corpus) + [_bad_entry()]
        result = run_campaign(entries, KEPLER_K40C, "single", seed=5, workers=2)
        assert "boom" in result.failures
        assert "bogus" in result.failures["boom"]
        ds = result.to_dataset()
        assert len(ds) == result.n_ok == len(entries) - 1

    def test_worker_hard_crash_recorded_not_fatal(self, campaign_corpus):
        """A killed worker marks only its matrix failed; the rest survive."""
        good = list(campaign_corpus)[:6]
        killer = _KillerEntry(name="killer", family="random_uniform",
                              bin_index=0, target_nnz=10, seed=0, params={})
        result = run_campaign(good + [killer], KEPLER_K40C, "single",
                              seed=5, workers=2)
        assert "worker crashed" in result.failures["killer"]
        assert result.n_ok == len(good)
        # Collateral victims of the pool breakage were retried and match
        # a crash-free serial campaign bit-for-bit.
        clean = run_campaign(good, KEPLER_K40C, "single", seed=5, workers=1)
        assert result.to_dataset().times.tobytes() == \
            clean.to_dataset().times.tobytes()

    def test_all_failed_raises_documented_error(self):
        result = run_campaign([_bad_entry()], KEPLER_K40C, "single")
        with pytest.raises(ValueError, match="no corpus matrix survived"):
            result.to_dataset()

    def test_failure_log_csv(self, tmp_path, campaign_corpus):
        entries = list(campaign_corpus)[:2] + [_bad_entry()]
        result = run_campaign(entries, KEPLER_K40C, "single", seed=5)
        log = tmp_path / "failures.csv"
        result.write_failure_log(log)
        lines = log.read_text().splitlines()
        assert lines[0] == "name,reason"
        assert len(lines) == 2 and lines[1].startswith("boom,")


class TestResume:
    def test_second_run_served_from_shards(self, tmp_path, campaign_corpus):
        sd = tmp_path / "shards"
        first = run_campaign(campaign_corpus, KEPLER_K40C, "single",
                             seed=5, workers=2, shard_dir=sd)
        assert not any(r.cached for r in first.results)
        second = run_campaign(campaign_corpus, KEPLER_K40C, "single",
                              seed=5, workers=2, shard_dir=sd)
        assert all(r.cached for r in second.results)
        assert first.to_dataset().times.tobytes() == \
            second.to_dataset().times.tobytes()

    def test_partial_shards_only_measure_missing(self, tmp_path, campaign_corpus):
        sd = tmp_path / "shards"
        entries = list(campaign_corpus)
        run_campaign(entries[:5], KEPLER_K40C, "single", seed=5, shard_dir=sd)
        resumed = run_campaign(entries, KEPLER_K40C, "single", seed=5,
                               shard_dir=sd)
        cached = [r.cached for r in resumed.results]
        assert sum(cached) == 5
        full = run_campaign(entries, KEPLER_K40C, "single", seed=5)
        assert resumed.to_dataset().times.tobytes() == \
            full.to_dataset().times.tobytes()

    def test_failures_resume_too(self, tmp_path):
        sd = tmp_path / "shards"
        run_campaign([_bad_entry()], KEPLER_K40C, "single", shard_dir=sd)
        again = run_campaign([_bad_entry()], KEPLER_K40C, "single", shard_dir=sd)
        assert again.results[0].cached and not again.results[0].ok

    def test_corrupt_shard_remeasured(self, tmp_path, campaign_corpus):
        sd = tmp_path / "shards"
        run_campaign(list(campaign_corpus)[:1], KEPLER_K40C, "single",
                     seed=5, shard_dir=sd)
        (shard,) = sd.glob("*.json")
        shard.write_text("{not json")
        again = run_campaign(list(campaign_corpus)[:1], KEPLER_K40C, "single",
                             seed=5, shard_dir=sd)
        assert not again.results[0].cached and again.results[0].ok
        assert json.loads(shard.read_text())["ok"]  # rewritten cleanly


class TestShardKey:
    def test_key_covers_campaign_parameters(self, campaign_corpus):
        entry = list(campaign_corpus)[0]
        base = shard_key(entry, KEPLER_K40C, "single", ("csr",), 50, 0,
                         NoiseModel())
        assert base == shard_key(entry, KEPLER_K40C, "single", ("csr",), 50, 0,
                                 NoiseModel())
        variants = [
            shard_key(entry, PASCAL_P100, "single", ("csr",), 50, 0, NoiseModel()),
            shard_key(entry, KEPLER_K40C, "double", ("csr",), 50, 0, NoiseModel()),
            shard_key(entry, KEPLER_K40C, "single", ("ell",), 50, 0, NoiseModel()),
            shard_key(entry, KEPLER_K40C, "single", ("csr",), 7, 0, NoiseModel()),
            shard_key(entry, KEPLER_K40C, "single", ("csr",), 50, 1, NoiseModel()),
            shard_key(entry, KEPLER_K40C, "single", ("csr",), 50, 0,
                      NoiseModel(seed=9)),
        ]
        assert len({base, *variants}) == len(variants) + 1


class TestObservability:
    def test_progress_stream(self, campaign_corpus):
        events = []
        run_campaign(campaign_corpus, KEPLER_K40C, "single", seed=5,
                     workers=2, progress=events.append)
        assert len(events) == len(campaign_corpus)
        assert all(isinstance(e, CampaignProgress) for e in events)
        assert [e.done for e in events] == list(range(1, len(events) + 1))
        last = events[-1]
        assert last.total == last.done == last.ok + last.failed
        assert set(last.format_means) == set(events[-1].format_means)
        assert all(v > 0 for v in last.format_means.values())

    def test_eta_zero_when_done(self, campaign_corpus):
        events = []
        run_campaign(list(campaign_corpus)[:3], KEPLER_K40C, "single",
                     seed=5, progress=events.append)
        assert events[-1].eta_s == 0.0
