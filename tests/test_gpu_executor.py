"""Tests for the SpMV executor (timing protocol + failure modes)."""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, COOMatrix
from repro.gpu import (
    KEPLER_K40C,
    KernelFailure,
    NoiseModel,
    OutOfMemoryError,
    SpMVExecutor,
)
from repro.matrices import banded, power_law


class TestBenchmarkProtocol:
    def test_benchmark_returns_sample(self, kepler_executor, small_coo):
        s = kepler_executor.benchmark(small_coo, "csr", reps=50)
        assert s.fmt == "csr"
        assert s.device == "Tesla K40c"
        assert s.reps == 50
        assert s.seconds > 0
        assert s.gflops == pytest.approx(
            2.0 * small_coo.nnz / s.seconds / 1e9, rel=1e-6
        )

    def test_more_reps_tighter_mean(self, small_coo):
        def mean_spread(reps, trials=20):
            means = []
            for t in range(trials):
                ex = SpMVExecutor(KEPLER_K40C, "single", seed=t)
                means.append(ex.benchmark(small_coo, "csr", reps=reps).seconds)
            return np.std(means) / np.mean(means)

        assert mean_spread(50) < mean_spread(1)

    def test_structural_effect_survives_averaging(self, small_coo, skewed_coo):
        """The fixed effect is identical across executors (same hardware)."""
        a = SpMVExecutor(KEPLER_K40C, "single", seed=1, noise=NoiseModel(0.1, 0.0))
        b = SpMVExecutor(KEPLER_K40C, "single", seed=2, noise=NoiseModel(0.1, 0.0))
        assert a.benchmark(small_coo, "csr").seconds == pytest.approx(
            b.benchmark(small_coo, "csr").seconds
        )

    def test_zero_reps_rejected(self, kepler_executor, small_coo):
        with pytest.raises(ValueError, match="reps"):
            kepler_executor.benchmark(small_coo, "csr", reps=0)

    def test_benchmark_all_covers_formats(self, kepler_executor, small_coo):
        out = kepler_executor.benchmark_all(small_coo)
        assert set(out) == set(FORMAT_NAMES)
        assert all(s is not None for s in out.values())

    def test_profile_cached(self, kepler_executor, small_coo):
        p1 = kepler_executor.profile(small_coo)
        p2 = kepler_executor.profile(small_coo)
        assert p1 is p2


class TestFailureModes:
    def test_oom_on_giant_ell(self):
        # A 2000-long row over 4M rows: ELL needs 4M x 2000 slots (~32 GB).
        row = np.concatenate([np.zeros(2000, np.int64), np.arange(2000)])
        col = np.concatenate([np.arange(2000) * 1500, np.zeros(2000, np.int64)])
        coo = COOMatrix((4_000_000, 4_000_000), row, col, np.ones(4000))
        ex = SpMVExecutor(KEPLER_K40C, "single")
        with pytest.raises(OutOfMemoryError):
            ex.check_feasible(coo, "ell")
        # ...but CSR handles the same matrix fine.
        ex.check_feasible(coo, "csr")

    def test_optional_padding_guard(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        with pytest.raises(KernelFailure, match="padding"):
            ex.check_feasible(skewed_coo, "ell")
        # Default: no padding guard.
        SpMVExecutor(KEPLER_K40C, "single").check_feasible(skewed_coo, "ell")

    def test_benchmark_all_marks_failures(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        out = ex.benchmark_all(skewed_coo)
        assert out["ell"] is None
        assert out["csr"] is not None

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            SpMVExecutor(KEPLER_K40C, "half")


class TestNumericExecution:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_run_computes_product(self, kepler_executor, small_coo, fmt):
        x = np.linspace(0, 1, small_coo.n_cols)
        y, sample = kepler_executor.run(small_coo, fmt, x)
        expected = small_coo.to_dense().astype(np.float32) @ x.astype(np.float32)
        np.testing.assert_allclose(y, expected, rtol=1e-4)
        assert sample.fmt == fmt

    def test_run_double_precision(self, small_coo):
        ex = SpMVExecutor(KEPLER_K40C, "double", seed=0)
        y, _ = ex.run(small_coo, "csr")
        assert y.dtype == np.float64

    def test_run_default_vector_is_ones(self, kepler_executor, small_coo):
        y, _ = kepler_executor.run(small_coo, "csr")
        np.testing.assert_allclose(
            y, small_coo.to_dense().astype(np.float32).sum(axis=1), rtol=1e-4
        )


class TestDeterminism:
    def test_same_seed_same_times(self, small_coo):
        a = SpMVExecutor(KEPLER_K40C, "single", seed=9)
        b = SpMVExecutor(KEPLER_K40C, "single", seed=9)
        assert (
            a.benchmark(small_coo, "csr").seconds
            == b.benchmark(small_coo, "csr").seconds
        )

    def test_estimate_is_noise_free(self, small_coo):
        a = SpMVExecutor(KEPLER_K40C, "single", seed=1)
        b = SpMVExecutor(KEPLER_K40C, "single", seed=2)
        assert a.estimate(small_coo, "csr").seconds == b.estimate(small_coo, "csr").seconds
