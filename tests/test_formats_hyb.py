"""Unit tests for the HYB (hybrid ELL+COO) format."""

import math

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    FormatError,
    HYBMatrix,
    histogram_threshold,
    mu_threshold,
)


class TestThresholds:
    def test_mu_threshold_is_mean_rounded_up(self, small_coo):
        k = mu_threshold(small_coo)
        assert k == max(1, math.ceil(small_coo.nnz / small_coo.n_rows))

    def test_mu_threshold_empty(self):
        assert mu_threshold(COOMatrix.empty((3, 3))) == 0

    def test_histogram_threshold_bounds(self, skewed_coo):
        k = histogram_threshold(skewed_coo)
        assert 0 <= k <= int(skewed_coo.row_lengths().max())

    def test_histogram_threshold_small_matrix_spills_nothing(self, small_coo):
        # budget = max(4096, rows/3) >= rows here, so every width works and
        # the smallest (0) is chosen: everything in COO is acceptable.
        assert histogram_threshold(small_coo) >= 0


class TestSplit:
    def test_default_split_uses_mu(self, skewed_coo):
        hyb = HYBMatrix.from_coo(skewed_coo)
        assert hyb.threshold <= mu_threshold(skewed_coo)

    def test_split_preserves_nnz(self, skewed_coo):
        hyb = HYBMatrix.from_coo(skewed_coo)
        assert hyb.ell.nnz + hyb.coo.nnz == skewed_coo.nnz

    def test_ell_part_width_capped_at_threshold(self, skewed_coo):
        hyb = HYBMatrix.from_coo(skewed_coo, threshold=3)
        assert hyb.ell.width <= 3

    def test_spill_rows_only_long_rows(self, skewed_coo):
        k = 3
        hyb = HYBMatrix.from_coo(skewed_coo, threshold=k)
        lengths = skewed_coo.row_lengths()
        spilled_rows = set(np.unique(hyb.coo.row))
        long_rows = set(np.flatnonzero(lengths > k))
        assert spilled_rows == long_rows

    def test_threshold_zero_is_all_coo(self, small_coo):
        hyb = HYBMatrix.from_coo(small_coo, threshold=0)
        assert hyb.ell.nnz == 0
        assert hyb.coo.nnz == small_coo.nnz
        assert hyb.coo_fraction == 1.0

    def test_huge_threshold_is_all_ell(self, small_coo):
        hyb = HYBMatrix.from_coo(small_coo, threshold=10_000)
        assert hyb.coo.nnz == 0
        assert hyb.coo_fraction == 0.0

    def test_negative_threshold_rejected(self, small_coo):
        with pytest.raises(FormatError, match="non-negative"):
            HYBMatrix.from_coo(small_coo, threshold=-1)

    def test_empty_matrix(self):
        hyb = HYBMatrix.from_coo(COOMatrix.empty((4, 6)))
        assert hyb.nnz == 0
        np.testing.assert_array_equal(hyb.spmv(np.ones(6)), np.zeros(4))


class TestBehaviour:
    @pytest.mark.parametrize("threshold", [None, 1, 2, 5, 100])
    def test_spmv_matches_dense_any_threshold(self, rng, skewed_coo, threshold):
        hyb = HYBMatrix.from_coo(skewed_coo, threshold=threshold)
        x = rng.standard_normal(skewed_coo.n_cols)
        np.testing.assert_allclose(hyb.spmv(x), skewed_coo.to_dense() @ x)

    def test_roundtrip(self, skewed_coo):
        back = HYBMatrix.from_coo(skewed_coo).to_coo()
        np.testing.assert_allclose(back.to_dense(), skewed_coo.to_dense())

    def test_memory_is_sum_of_parts(self, skewed_coo):
        hyb = HYBMatrix.from_coo(skewed_coo)
        assert hyb.memory_bytes() == hyb.ell.memory_bytes() + hyb.coo.memory_bytes()

    def test_mu_split_beats_full_ell_on_skew(self, skewed_coo):
        from repro.formats import ELLMatrix

        hyb = HYBMatrix.from_coo(skewed_coo)
        ell = ELLMatrix.from_coo(skewed_coo)
        assert hyb.memory_bytes() < ell.memory_bytes()

    def test_parts_must_share_shape(self, small_coo):
        from repro.formats import ELLMatrix

        ell = ELLMatrix.from_coo(small_coo)
        other = COOMatrix.empty((small_coo.n_rows + 1, small_coo.n_cols))
        with pytest.raises(FormatError, match="shape"):
            HYBMatrix(small_coo.shape, ell, other)
