"""Deprecation shims: old spellings keep working, warn exactly once."""

import warnings

import numpy as np
import pytest

from repro._compat import deprecated, reset_warning_registry, warn_deprecated


@pytest.fixture(autouse=True)
def rearm():
    """Each test sees every shim un-fired."""
    reset_warning_registry()
    yield
    reset_warning_registry()


def _collect(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn()
    return result, [w for w in caught if w.category is DeprecationWarning]


class TestMachinery:
    def test_warns_once_per_key(self):
        _, first = _collect(lambda: warn_deprecated("k", "old is deprecated"))
        _, second = _collect(lambda: warn_deprecated("k", "old is deprecated"))
        assert len(first) == 1 and len(second) == 0
        assert "old is deprecated" in str(first[0].message)

    def test_distinct_keys_warn_independently(self):
        _, a = _collect(lambda: warn_deprecated("a", "m"))
        _, b = _collect(lambda: warn_deprecated("b", "m"))
        assert len(a) == len(b) == 1

    def test_decorator_forwards_and_marks(self):
        @deprecated("new_fn")
        def old_fn(x):
            return x + 1

        value, warned = _collect(lambda: old_fn(2))
        assert value == 3
        assert len(warned) == 1
        assert "new_fn" in str(warned[0].message)
        assert old_fn.__deprecated__ == "new_fn"
        assert old_fn.__name__ == "old_fn"

    def test_reset_rearms(self):
        @deprecated("x")
        def shim():
            return 0

        _collect(shim)
        reset_warning_registry()
        _, again = _collect(shim)
        assert len(again) == 1


class TestBenchRunnerShims:
    def test_scalar_shims_match_config(self, monkeypatch):
        for var in ("REPRO_SCALE", "REPRO_MAX_NNZ", "REPRO_SEED",
                    "REPRO_REPS", "REPRO_WORKERS"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_SCALE", "0.27")
        from repro.bench import runner

        cfg = runner.bench_config()
        for shim, expected in [
            (runner.bench_scale, cfg.scale),
            (runner.bench_max_nnz, cfg.max_nnz),
            (runner.bench_seed, cfg.seed),
            (runner.bench_reps, cfg.reps),
            (runner.bench_workers, cfg.workers),
        ]:
            value, warned = _collect(shim)
            assert value == expected
            assert len(warned) == 1, shim.__name__
            assert "ReproConfig" in str(warned[0].message)


class TestPredictorShim:
    def test_predict_times_is_a_warn_once_alias(self, mini_dataset):
        from repro.core.predictor import PerformancePredictor

        pp = PerformancePredictor("decision_tree").fit(mini_dataset)
        canonical = pp.predict(mini_dataset)

        via_shim, warned = _collect(lambda: pp.predict_times(mini_dataset))
        assert np.array_equal(canonical, via_shim)
        assert len(warned) == 1
        assert "PerformancePredictor.predict" in str(warned[0].message)

        _, again = _collect(lambda: pp.predict_times(mini_dataset))
        assert len(again) == 0
