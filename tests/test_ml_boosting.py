"""Tests for the XGBoost-style gradient booster."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    accuracy_score,
)


@pytest.fixture
def xor(rng):
    X = rng.standard_normal((400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestClassifier:
    def test_learns_xor(self, xor):
        X, y = xor
        clf = GradientBoostingClassifier(n_estimators=40, max_depth=3).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.95

    def test_multiclass(self, rng):
        centers = rng.standard_normal((5, 3)) * 6
        y = rng.integers(0, 5, 300)
        X = centers[y] + rng.standard_normal((300, 3))
        clf = GradientBoostingClassifier(n_estimators=25, max_depth=3).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.9
        assert clf.n_classes_ == 5

    def test_predict_proba_valid(self, xor):
        X, y = xor
        clf = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        p = clf.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(p >= 0)

    def test_more_rounds_monotone_train_fit(self, xor):
        X, y = xor
        accs = []
        for n in (2, 10, 40):
            clf = GradientBoostingClassifier(n_estimators=n, max_depth=3, seed=0)
            accs.append(accuracy_score(y, clf.fit(X, y).predict(X)))
        assert accs[0] <= accs[1] <= accs[2] + 1e-9

    def test_f_scores_and_gain_importance(self, rng):
        X = rng.standard_normal((300, 5))
        y = (X[:, 4] > 0).astype(int)
        clf = GradientBoostingClassifier(n_estimators=20, max_depth=2).fit(X, y)
        assert np.argmax(clf.f_scores_) == 4
        assert np.argmax(clf.feature_importances_) == 4
        assert clf.feature_importances_.sum() == pytest.approx(1.0)
        assert clf.f_scores_.dtype.kind == "i"

    def test_subsample(self, xor):
        X, y = xor
        clf = GradientBoostingClassifier(
            n_estimators=30, max_depth=3, subsample=0.5, seed=1
        ).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.85

    def test_gamma_prunes_splits(self, xor):
        X, y = xor
        loose = GradientBoostingClassifier(n_estimators=5, max_depth=4, gamma=0.0, seed=0)
        tight = GradientBoostingClassifier(n_estimators=5, max_depth=4, gamma=1e9, seed=0)
        loose.fit(X, y)
        tight.fit(X, y)
        assert tight.f_scores_.sum() < loose.f_scores_.sum()

    def test_hyperparameter_validation(self, xor):
        X, y = xor
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0).fit(X, y)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0).fit(X, y)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=1.5).fit(X, y)

    def test_deterministic(self, xor):
        X, y = xor
        a = GradientBoostingClassifier(n_estimators=8, seed=3).fit(X, y).predict(X)
        b = GradientBoostingClassifier(n_estimators=8, seed=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestRegressor:
    def test_fits_nonlinear_function(self, rng):
        X = rng.random((400, 2)) * 4
        y = np.sin(X[:, 0]) * X[:, 1]
        reg = GradientBoostingRegressor(n_estimators=80, max_depth=3).fit(X, y)
        mse = np.mean((reg.predict(X) - y) ** 2)
        assert mse < 0.05 * y.var()

    def test_base_score_is_mean(self, rng):
        y = rng.standard_normal(50) + 7
        reg = GradientBoostingRegressor(n_estimators=1).fit(
            rng.standard_normal((50, 2)), y
        )
        assert reg.base_score_ == pytest.approx(y.mean())

    def test_shrinkage_slows_fitting(self, rng):
        X = rng.standard_normal((200, 2))
        y = X[:, 0] ** 2
        fast = GradientBoostingRegressor(n_estimators=5, learning_rate=0.5, seed=0)
        slow = GradientBoostingRegressor(n_estimators=5, learning_rate=0.01, seed=0)
        mse_fast = np.mean((fast.fit(X, y).predict(X) - y) ** 2)
        mse_slow = np.mean((slow.fit(X, y).predict(X) - y) ** 2)
        assert mse_fast < mse_slow

    def test_reg_lambda_shrinks_leaves(self, rng):
        X = rng.standard_normal((100, 1))
        y = 10.0 * X[:, 0]
        small = GradientBoostingRegressor(n_estimators=1, reg_lambda=0.0, learning_rate=1.0)
        large = GradientBoostingRegressor(n_estimators=1, reg_lambda=1e6, learning_rate=1.0)
        spread_small = np.ptp(small.fit(X, y).predict(X))
        spread_large = np.ptp(large.fit(X, y).predict(X))
        assert spread_large < 0.01 * spread_small

    def test_not_fitted(self, rng):
        from repro.ml import NotFittedError

        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(rng.standard_normal((2, 2)))
