"""Model-registry tests: versioning, promotion, integrity validation.

The round-trip matrix covers **every** model family in both
``MODEL_REGISTRY`` (selectors) and ``REGRESSOR_REGISTRY`` (predictors):
save → load must reproduce bit-identical predictions in a fresh object.
"""

import json

import numpy as np
import pytest

from repro.core import MODEL_REGISTRY, FormatSelector
from repro.core.predictor import REGRESSOR_REGISTRY, PerformancePredictor
from repro.serve import ARTIFACT_SCHEMA, ModelRegistry, RegistryError

FAST_KWARGS = {
    "mlp": {"n_epochs": 10},
    "mlp_ensemble": {"n_epochs": 8, "n_members": 2},
    "xgboost": {"n_estimators": 8},
    "svr": {"n_epochs": 10},
}


@pytest.fixture(scope="module")
def train(mini_dataset):
    return mini_dataset.drop_coo_best()


class TestRoundTrip:
    @pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
    def test_every_selector_family(self, model, train, tmp_path):
        selector = FormatSelector(
            model, feature_set="set12", **FAST_KWARGS.get(model, {})
        ).fit(train)
        registry = ModelRegistry(tmp_path)
        registry.save(selector, model, dataset=train)
        restored, record = registry.load(model)
        np.testing.assert_array_equal(
            selector.predict(train), restored.predict(train)
        )
        np.testing.assert_array_equal(
            selector.predict_formats(train), restored.predict_formats(train)
        )
        assert record.meta["kind"] == "selector"
        assert record.meta["model_name"] == model
        assert record.meta["dataset_digest"] == train.digest()

    @pytest.mark.parametrize("model", sorted(REGRESSOR_REGISTRY))
    def test_every_predictor_family(self, model, train, tmp_path):
        predictor = PerformancePredictor(
            model, feature_set="set12", mode="joint",
            **FAST_KWARGS.get(model, {}),
        ).fit(train)
        registry = ModelRegistry(tmp_path)
        registry.save(predictor, model, dataset=train)
        restored, record = registry.load(model)
        np.testing.assert_array_equal(
            predictor.predict(train), restored.predict(train)
        )
        assert record.meta["kind"] == "predictor"

    def test_per_format_predictor(self, train, tmp_path):
        predictor = PerformancePredictor(
            "decision_tree", feature_set="set12", mode="per_format"
        ).fit(train)
        registry = ModelRegistry(tmp_path)
        registry.save(predictor, "pf", dataset=train)
        restored, _ = registry.load("pf")
        np.testing.assert_array_equal(
            predictor.predict(train), restored.predict(train)
        )
        assert restored.mode == "per_format"

    def test_metadata_fields(self, train, tmp_path):
        selector = FormatSelector("decision_tree", feature_set="imp").fit(train)
        registry = ModelRegistry(tmp_path)
        record = registry.save(selector, "m", dataset=train)
        meta = json.loads((record.path / "meta.json").read_text())
        assert meta["schema"] == ARTIFACT_SCHEMA
        assert meta["feature_set"] == "imp"
        assert meta["n_features"] == len(meta["feature_names"]) == 7
        assert meta["formats"] == list(train.formats)
        assert meta["device"] == train.device
        assert meta["n_train"] == len(train)
        assert len(meta["checksum"]) == 64


class TestVersioning:
    def test_versions_increment_and_latest(self, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        selector = FormatSelector("decision_tree", feature_set="set1").fit(train)
        r1 = registry.save(selector, "m")
        r2 = registry.save(selector, "m")
        assert (r1.version, r2.version) == ("v0001", "v0002")
        assert registry.resolve("m", "latest") == "v0002"
        # Without a production alias, the default is latest.
        assert registry.resolve("m") == "v0002"

    def test_promotion(self, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        selector = FormatSelector("decision_tree", feature_set="set1").fit(train)
        registry.save(selector, "m")
        registry.save(selector, "m")
        registry.promote("m", "v0001")
        assert registry.production_version("m") == "v0001"
        assert registry.resolve("m") == "v0001"          # alias wins
        assert registry.resolve("m", "production") == "v0001"
        _, record = registry.load("m")
        assert record.version == "v0001"

    def test_save_promote_flag(self, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        selector = FormatSelector("decision_tree", feature_set="set1").fit(train)
        registry.save(selector, "m", promote=True)
        assert registry.production_version("m") == "v0001"

    def test_list(self, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        selector = FormatSelector("decision_tree", feature_set="set1").fit(train)
        registry.save(selector, "a")
        registry.save(selector, "a")
        registry.save(selector, "b")
        records = registry.list()
        assert [(r.name, r.version) for r in records] == [
            ("a", "v0001"), ("a", "v0002"), ("b", "v0001")
        ]
        assert len(registry.list("a")) == 2
        assert "decision_tree" in records[0].describe()


class TestRejection:
    @pytest.fixture
    def saved(self, train, tmp_path):
        registry = ModelRegistry(tmp_path)
        selector = FormatSelector("decision_tree", feature_set="set1").fit(train)
        record = registry.save(selector, "m")
        return registry, record

    def test_corrupted_artifact_rejected(self, saved):
        registry, record = saved
        artifact = record.path / "artifact.npz"
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        artifact.write_bytes(bytes(raw))
        with pytest.raises(RegistryError, match="checksum"):
            registry.load("m")

    def test_missing_artifact_rejected(self, saved):
        registry, record = saved
        (record.path / "artifact.npz").unlink()
        with pytest.raises(RegistryError, match="missing artifact"):
            registry.load("m")

    def test_wrong_schema_rejected(self, saved):
        registry, record = saved
        meta_path = record.path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = "repro-serve-artifact/v999"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="schema"):
            registry.load("m")

    def test_checksum_mismatch_in_meta_rejected(self, saved):
        registry, record = saved
        meta_path = record.path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["checksum"] = "0" * 64
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="checksum"):
            registry.load("m")

    def test_unknown_model_rejected(self, tmp_path):
        with pytest.raises(RegistryError, match="unknown model"):
            ModelRegistry(tmp_path).load("ghost")

    def test_unknown_version_rejected(self, saved):
        registry, _ = saved
        with pytest.raises(RegistryError, match="no version"):
            registry.load("m", "v0042")

    def test_production_without_alias_rejected(self, saved):
        registry, _ = saved
        with pytest.raises(RegistryError, match="no production version"):
            registry.resolve("m", "production")

    def test_promote_unknown_version_rejected(self, saved):
        registry, _ = saved
        with pytest.raises(RegistryError, match="cannot promote"):
            registry.promote("m", "v0042")

    def test_invalid_name_rejected(self, tmp_path):
        with pytest.raises(RegistryError, match="invalid model name"):
            ModelRegistry(tmp_path).versions("../evil")

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RegistryError, match="unfitted"):
            ModelRegistry(tmp_path).save(FormatSelector("decision_tree"), "m")

    def test_non_model_rejected(self, tmp_path):
        with pytest.raises(RegistryError, match="FormatSelector or"):
            ModelRegistry(tmp_path).save(object(), "m")
