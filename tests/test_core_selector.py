"""Tests for the direct format selector."""

import numpy as np
import pytest

from repro.core import MODEL_REGISTRY, FormatSelector, tuned_selector
from repro.ml import KFold


@pytest.fixture(scope="module")
def split(mini_dataset):
    ds = mini_dataset.drop_coo_best()
    rng = np.random.default_rng(0)
    idx = rng.permutation(len(ds))
    k = len(ds) // 5
    return ds.subset(idx[k:]), ds.subset(idx[:k])


class TestFormatSelector:
    @pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
    def test_every_model_beats_chance(self, mini_dataset, model):
        # Averaged over 3 folds: a single ~7-matrix holdout of the mini
        # corpus is small enough for any model to flunk by bad luck.
        ds = mini_dataset.drop_coo_best()
        kwargs = {"n_epochs": 40} if "mlp" in model else {}
        if model == "mlp_ensemble":
            kwargs["n_members"] = 2
        accs = []
        for tr, te in KFold(3, seed=0).split(len(ds)):
            sel = FormatSelector(model, feature_set="set12", **kwargs)
            sel.fit(ds.subset(tr))
            accs.append(sel.score(ds.subset(te)))
        acc = float(np.mean(accs))
        n_classes = len(np.unique(ds.labels))
        assert acc > 1.2 / n_classes, f"{model} accuracy {acc} at chance level"

    def test_predict_formats_names(self, split):
        train, test = split
        sel = FormatSelector("decision_tree").fit(train)
        names = sel.predict_formats(test)
        assert all(n in train.formats for n in names)

    def test_fit_on_raw_arrays(self, rng):
        X = rng.standard_normal((80, 4))
        y = (X[:, 0] > 0).astype(int)
        sel = FormatSelector("decision_tree")
        sel.fit(X, y)
        assert sel.score(X, y) > 0.9
        with pytest.raises(RuntimeError, match="format names unknown"):
            sel.predict_formats(X)

    def test_raw_fit_requires_y(self, rng):
        with pytest.raises(ValueError, match="y is required"):
            FormatSelector("decision_tree").fit(rng.standard_normal((5, 3)))

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            FormatSelector("cnn")

    def test_unknown_feature_set_rejected(self):
        with pytest.raises(ValueError, match="feature set"):
            FormatSelector("xgboost", feature_set="set99")

    def test_custom_estimator_instance(self, split):
        from repro.ml import DecisionTreeClassifier

        train, test = split
        sel = FormatSelector(DecisionTreeClassifier(max_depth=4))
        sel.fit(train)
        assert 0.0 <= sel.score(test) <= 1.0

    def test_model_kwargs_forwarded(self):
        sel = FormatSelector("xgboost", n_estimators=7)
        assert sel.estimator.n_estimators == 7

    def test_xgboost_among_best_models(self, split):
        """The paper's headline: XGBoost is (near) the best model."""
        train, test = split
        accs = {}
        for model in ("decision_tree", "xgboost"):
            sel = FormatSelector(model, feature_set="set12").fit(train)
            accs[model] = sel.score(test)
        assert accs["xgboost"] >= accs["decision_tree"] - 0.08


class TestTunedSelector:
    def test_tunes_xgboost(self, split):
        train, test = split
        sel = tuned_selector(
            "xgboost",
            train,
            feature_set="set12",
            cv=3,
            grid={"n_estimators": [20, 60], "max_depth": [3]},
        )
        assert sel.tuned_params_["max_depth"] == 3
        assert sel.tuned_params_["n_estimators"] in (20, 60)
        assert 0.3 <= sel.score(test) <= 1.0

    def test_tunes_pipeline_model(self, split):
        train, test = split
        sel = tuned_selector(
            "svm",
            train,
            feature_set="set12",
            cv=3,
            grid={"C": [10.0, 1000.0], "gamma": [0.1]},
        )
        assert sel.tuned_params_["gamma"] == 0.1
        assert 0.0 <= sel.score(test) <= 1.0

    def test_no_grid_falls_back_to_defaults(self, split):
        train, _ = split
        sel = tuned_selector("decision_tree", train, feature_set="set1", cv=3)
        assert not hasattr(sel, "tuned_params_")


class TestVectorInput:
    def test_1d_vector_equals_one_row_batch(self, split):
        train, test = split
        sel = FormatSelector("decision_tree", feature_set="set12").fit(train)
        X = test.X("set12")
        for i in range(min(3, X.shape[0])):
            one_d = sel.predict(X[i])
            batch = sel.predict(X[i][None, :])
            np.testing.assert_array_equal(one_d, batch)
            assert one_d.shape == (1,)
            assert sel.predict_formats(X[i])[0] == sel.predict_formats(
                X[i][None, :]
            )[0]

    def test_list_vector_accepted(self, split):
        train, _ = split
        sel = FormatSelector("decision_tree", feature_set="set12").fit(train)
        vec = train.X("set12")[0]
        np.testing.assert_array_equal(
            sel.predict(list(vec)), sel.predict(vec[None, :])
        )
