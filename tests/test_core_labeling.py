"""Tests for ground-truth label collection."""

import numpy as np
import pytest

from repro.core import label_matrix
from repro.formats import FORMAT_NAMES
from repro.gpu import KEPLER_K40C, SpMVExecutor


class TestLabelMatrix:
    def test_label_fields(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo, name="m0")
        assert label.name == "m0"
        assert set(label.times) == set(FORMAT_NAMES)
        assert label.best_format in FORMAT_NAMES
        assert label.complete
        assert len(label.features) == 17

    def test_best_format_is_argmin(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo)
        assert label.times[label.best_format] == min(label.times.values())

    def test_gflops_consistent_with_times(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo)
        for fmt in FORMAT_NAMES:
            expected = 2.0 * small_coo.nnz / label.times[fmt] / 1e9
            assert label.gflops[fmt] == pytest.approx(expected, rel=0.01)

    def test_slowdown_of_best_is_one(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo)
        assert label.slowdown(label.best_format) == 1.0
        assert all(label.slowdown(f) >= 1.0 for f in FORMAT_NAMES)

    def test_format_subset(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo, formats=("ell", "csr", "hyb"))
        assert set(label.times) == {"ell", "csr", "hyb"}
        assert label.best_format in {"ell", "csr", "hyb"}

    def test_slowdown_of_failed_format_is_inf(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        label = label_matrix(ex, skewed_coo)
        assert "ell" in label.failed
        assert label.slowdown("ell") == float("inf")

    def test_failures_recorded(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        label = label_matrix(ex, skewed_coo)
        assert "ell" in label.failed
        assert not label.complete
        assert "KernelFailure" in label.failed["ell"]

    def test_all_failed_raises(self, skewed_coo):
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        with pytest.raises(ValueError, match="every format failed"):
            label_matrix(ex, skewed_coo, formats=("ell",))

    def test_reps_forwarded(self, kepler_executor, small_coo):
        label = label_matrix(kepler_executor, small_coo, reps=7)
        assert label.times  # just runs; protocol covered by executor tests

    def test_precomputed_features_reused(self, kepler_executor, small_coo):
        sentinel = {"n_rows": -1.0}
        label = label_matrix(kepler_executor, small_coo, features=sentinel)
        assert label.features is sentinel
