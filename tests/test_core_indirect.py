"""Tests for indirect classification via predicted performance."""

import numpy as np
import pytest

from repro.core import IndirectClassifier, PerformancePredictor, tolerant_accuracy


class TestTolerantAccuracy:
    def test_exact_best_required_at_zero(self):
        times = np.array([[1.0, 2.0], [3.0, 1.0]])
        assert tolerant_accuracy(times, np.array([0, 1])) == 1.0
        assert tolerant_accuracy(times, np.array([1, 1])) == 0.5

    def test_tolerance_admits_near_ties(self):
        times = np.array([[1.0, 1.04]])
        assert tolerant_accuracy(times, np.array([1]), tolerance=0.0) == 0.0
        assert tolerant_accuracy(times, np.array([1]), tolerance=0.05) == 1.0

    def test_monotone_in_tolerance(self, rng):
        times = rng.uniform(1, 2, (50, 4))
        pred = rng.integers(0, 4, 50)
        accs = [tolerant_accuracy(times, pred, t) for t in (0.0, 0.1, 0.5, 1.0)]
        assert all(b >= a for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0  # 100% tolerance accepts anything <= 2x best

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            tolerant_accuracy(np.ones((1, 2)), np.array([0]), tolerance=-0.1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            tolerant_accuracy(np.ones(3), np.array([0]))


class TestIndirectClassifier:
    @pytest.fixture(scope="class")
    def fitted(self, mini_dataset):
        ds = mini_dataset.drop_coo_best()
        rng = np.random.default_rng(2)
        idx = rng.permutation(len(ds))
        k = len(ds) // 5
        train, test = ds.subset(idx[k:]), ds.subset(idx[:k])
        ic = IndirectClassifier(
            PerformancePredictor("xgboost", feature_set="set123", mode="joint")
        )
        ic.fit(train)
        return ic, test

    def test_predictions_in_range(self, fitted):
        ic, test = fitted
        pred = ic.predict(test)
        assert pred.min() >= 0 and pred.max() < len(test.formats)

    def test_predict_formats(self, fitted):
        ic, test = fitted
        assert all(f in test.formats for f in ic.predict_formats(test))

    def test_score_improves_with_tolerance(self, fitted):
        ic, test = fitted
        assert ic.score(test, tolerance=0.05) >= ic.score(test, tolerance=0.0)

    def test_score_beats_chance(self, fitted):
        ic, test = fitted
        assert ic.score(test, tolerance=0.0) > 1.0 / len(test.formats)

    def test_default_tolerance_used(self, mini_dataset):
        ds = mini_dataset.drop_coo_best()
        ic = IndirectClassifier(
            PerformancePredictor("decision_tree", mode="joint"), tolerance=0.05
        )
        ic.fit(ds)
        assert ic.score(ds) == ic.score(ds, tolerance=0.05)

    def test_negative_default_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            IndirectClassifier(tolerance=-0.01)
