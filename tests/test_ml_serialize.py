"""Round-trip tests for the pure-numpy estimator serialization codec."""

import json

import numpy as np
import pytest

from repro.ml import (
    SVC,
    SVR,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LabelEncoder,
    Log1pTransformer,
    MLPClassifier,
    MLPEnsembleClassifier,
    MLPEnsembleRegressor,
    MLPRegressor,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    STATE_SCHEMA,
    SerializationError,
    SimpleCNNClassifier,
    StandardScaler,
    decode_estimator,
    encode_estimator,
    load_estimator,
    save_estimator,
)
from repro.ml.serialize import decode, encode


@pytest.fixture(scope="module")
def clf_data():
    rng = np.random.default_rng(42)
    X = np.abs(rng.standard_normal((70, 6))) * 10
    y = (X[:, 0] + X[:, 1] > X[:, 2] + 5).astype(int) + (X[:, 3] > 12)
    return X, y


@pytest.fixture(scope="module")
def reg_data():
    rng = np.random.default_rng(43)
    X = np.abs(rng.standard_normal((70, 6))) * 10
    y = X[:, 0] * 0.5 - np.log1p(X[:, 1]) + 0.1 * rng.standard_normal(70)
    return X, y


def _scaled(est):
    return Pipeline(
        [("log", Log1pTransformer()), ("scale", StandardScaler()), ("model", est)]
    )


CLASSIFIERS = {
    "tree": lambda: DecisionTreeClassifier(max_depth=6),
    "forest": lambda: RandomForestClassifier(n_estimators=4, max_depth=5),
    "xgboost": lambda: GradientBoostingClassifier(n_estimators=6, max_depth=3),
    "xgboost_subsample": lambda: GradientBoostingClassifier(
        n_estimators=5, max_depth=3, subsample=0.8
    ),
    "svm_pipeline": lambda: _scaled(SVC(C=10.0, gamma=0.1)),
    "mlp_pipeline": lambda: _scaled(
        MLPClassifier(hidden_layer_sizes=(8,), n_epochs=15)
    ),
    "mlp_ensemble": lambda: _scaled(
        MLPEnsembleClassifier(n_members=2, hidden_layer_sizes=(8,), n_epochs=10)
    ),
}

REGRESSORS = {
    "tree": lambda: DecisionTreeRegressor(max_depth=6),
    "forest": lambda: RandomForestRegressor(n_estimators=4, max_depth=5),
    "xgboost": lambda: GradientBoostingRegressor(n_estimators=6, max_depth=3),
    "svr_pipeline": lambda: _scaled(SVR(C=10.0, gamma=0.1, n_epochs=15)),
    "mlp_pipeline": lambda: _scaled(MLPRegressor(hidden_layer_sizes=(8,), n_epochs=15)),
    "mlp_ensemble": lambda: _scaled(
        MLPEnsembleRegressor(n_members=2, hidden_layer_sizes=(8,), n_epochs=10)
    ),
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(CLASSIFIERS))
    def test_classifier_bit_identical(self, name, clf_data, tmp_path):
        X, y = clf_data
        est = CLASSIFIERS[name]().fit(X, y)
        path = tmp_path / f"{name}.npz"
        save_estimator(est, path)
        restored = load_estimator(path)
        np.testing.assert_array_equal(est.predict(X), restored.predict(X))
        try:
            proba = est.predict_proba(X)
        except AttributeError:
            return  # family exposes no probabilities (e.g. the SVM)
        np.testing.assert_array_equal(proba, restored.predict_proba(X))

    @pytest.mark.parametrize("name", sorted(REGRESSORS))
    def test_regressor_bit_identical(self, name, reg_data, tmp_path):
        X, y = reg_data
        est = REGRESSORS[name]().fit(X, y)
        path = tmp_path / f"{name}.npz"
        save_estimator(est, path)
        restored = load_estimator(path)
        np.testing.assert_array_equal(est.predict(X), restored.predict(X))

    def test_cnn_bit_identical(self, tmp_path):
        rng = np.random.default_rng(5)
        images = rng.random((40, 10, 10))
        y = (images[:, :5].mean(axis=(1, 2)) > images[:, 5:].mean(axis=(1, 2)))
        est = SimpleCNNClassifier(n_epochs=3, seed=0).fit(images, y.astype(int))
        save_estimator(est, tmp_path / "cnn.npz")
        restored = load_estimator(tmp_path / "cnn.npz")
        np.testing.assert_array_equal(est.predict(images), restored.predict(images))

    def test_restored_params_match(self, clf_data, tmp_path):
        X, y = clf_data
        est = GradientBoostingClassifier(
            n_estimators=5, max_depth=3, learning_rate=0.07
        ).fit(X, y)
        save_estimator(est, tmp_path / "m.npz")
        restored = load_estimator(tmp_path / "m.npz")
        assert restored.get_params() == est.get_params()

    def test_label_encoder_round_trip(self):
        enc = LabelEncoder().fit(np.array(["csr", "ell", "hyb", "csr"]))
        structure, arrays = encode(enc)
        restored = decode(structure, arrays)
        np.testing.assert_array_equal(restored.classes_, enc.classes_)
        np.testing.assert_array_equal(
            restored.transform(np.array(["hyb", "csr"])),
            enc.transform(np.array(["hyb", "csr"])),
        )

    def test_in_memory_encode_decode(self, clf_data):
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=4).fit(X, y)
        structure, arrays = encode_estimator(est)
        json.dumps(structure)  # must be pure JSON
        assert all(isinstance(a, np.ndarray) for a in arrays.values())
        restored = decode_estimator(structure, arrays)
        np.testing.assert_array_equal(est.predict(X), restored.predict(X))


class TestRejection:
    def test_unknown_schema_rejected(self, clf_data, tmp_path):
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_estimator(est, path)
        with np.load(path, allow_pickle=False) as z:
            header = json.loads(str(z["__state__"][()]))
            arrays = {k: z[k] for k in z.files if k != "__state__"}
        header["schema"] = "repro-ml-state/v999"
        np.savez_compressed(
            path, __state__=np.array(json.dumps(header)), **arrays
        )
        with pytest.raises(SerializationError, match="schema"):
            load_estimator(path)

    def test_truncated_file_rejected(self, clf_data, tmp_path):
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_estimator(est, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(SerializationError):
            load_estimator(path)

    def test_unencodable_object_rejected(self):
        with pytest.raises(SerializationError):
            encode({"bad": object()})

    def test_unknown_estimator_tag_rejected(self):
        with pytest.raises(SerializationError, match="unknown"):
            decode({"__est__": "NoSuchEstimator", "params": {}, "state": {}}, {})

    def test_schema_constant_stable(self):
        # Artifacts written by this build advertise the v2 layout
        # (v1 + compiled flat-array tree tables).
        assert STATE_SCHEMA == "repro-ml-state/v2"

    def test_v1_schema_tag_still_loads(self, clf_data, tmp_path):
        # The v2 reader accepts v1-tagged artifacts (SCHEMA_COMPAT).
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_estimator(est, path)
        with np.load(path, allow_pickle=False) as z:
            header = json.loads(str(z["__state__"][()]))
            arrays = {k: z[k] for k in z.files if k != "__state__"}
        header["schema"] = "repro-ml-state/v1"
        np.savez_compressed(
            path, __state__=np.array(json.dumps(header)), **arrays
        )
        restored = load_estimator(path)
        np.testing.assert_array_equal(est.predict(X), restored.predict(X))
