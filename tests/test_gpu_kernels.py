"""Behavioural properties of the per-format kernel cost models.

These encode the mechanisms the paper describes: ELL's padding
sensitivity, CSR's row-variance sensitivity, the insensitivity of
COO/CSR5/merge-CSR, Kepler's weak fp64 atomics, and the small-matrix
GFLOPS ramp.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES
from repro.gpu import (
    KEPLER_K40C,
    PASCAL_P100,
    estimate_time,
    profile_matrix,
)
from repro.matrices import banded, power_law, random_uniform


@pytest.fixture(scope="module")
def regular_profile():
    return profile_matrix(banded(50_000, 50_000, bandwidth=10, fill=1.0, seed=0))


@pytest.fixture(scope="module")
def skewed_profile():
    return profile_matrix(power_law(50_000, 50_000, nnz=500_000, alpha=1.7, seed=0))


class TestBasics:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_positive_time_and_flops(self, regular_profile, fmt):
        cb = estimate_time(fmt, regular_profile, KEPLER_K40C, "single")
        assert cb.seconds > 0
        assert cb.flops == 2.0 * regular_profile.nnz
        assert cb.gflops > 0

    def test_unknown_format_rejected(self, regular_profile):
        with pytest.raises(KeyError, match="unknown format"):
            estimate_time("sell_c_sigma", regular_profile, KEPLER_K40C, "single")

    def test_unknown_precision_rejected(self, regular_profile):
        with pytest.raises(ValueError, match="precision"):
            estimate_time("csr", regular_profile, KEPLER_K40C, "half")

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_double_slower_than_single(self, regular_profile, fmt):
        s = estimate_time(fmt, regular_profile, KEPLER_K40C, "single").seconds
        d = estimate_time(fmt, regular_profile, KEPLER_K40C, "double").seconds
        assert d > s

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_pascal_faster_than_kepler(self, regular_profile, fmt):
        k = estimate_time(fmt, regular_profile, KEPLER_K40C, "single").seconds
        p = estimate_time(fmt, regular_profile, PASCAL_P100, "single").seconds
        assert p < k


class TestStructureSensitivity:
    def test_more_nnz_takes_longer(self):
        small = profile_matrix(banded(20_000, 20_000, bandwidth=8, seed=1))
        big = profile_matrix(banded(200_000, 200_000, bandwidth=8, seed=1))
        for fmt in FORMAT_NAMES:
            assert (
                estimate_time(fmt, big, KEPLER_K40C, "single").seconds
                > estimate_time(fmt, small, KEPLER_K40C, "single").seconds
            )

    def test_ell_blows_up_with_padding(self, regular_profile, skewed_profile):
        ell_ratio = (
            estimate_time("ell", skewed_profile, KEPLER_K40C, "single").seconds
            / estimate_time("ell", regular_profile, KEPLER_K40C, "single").seconds
        )
        csr5_ratio = (
            estimate_time("csr5", skewed_profile, KEPLER_K40C, "single").seconds
            / estimate_time("csr5", regular_profile, KEPLER_K40C, "single").seconds
        )
        assert ell_ratio > 10 * csr5_ratio

    def test_csr_suffers_on_skew_vs_merge(self, skewed_profile):
        csr = estimate_time("csr", skewed_profile, KEPLER_K40C, "single")
        merge = estimate_time("merge_csr", skewed_profile, KEPLER_K40C, "single")
        assert merge.seconds < csr.seconds

    def test_load_balanced_formats_insensitive(self, regular_profile, skewed_profile):
        """CSR5/merge per-nnz cost varies little between structures."""
        for fmt in ("csr5", "merge_csr"):
            t_reg = estimate_time(fmt, regular_profile, KEPLER_K40C, "single").seconds
            t_skew = estimate_time(fmt, skewed_profile, KEPLER_K40C, "single").seconds
            per_nnz_reg = t_reg / regular_profile.nnz
            per_nnz_skew = t_skew / skewed_profile.nnz
            assert 0.4 < per_nnz_reg / per_nnz_skew < 2.5

    def test_ell_wins_on_very_regular(self, regular_profile):
        times = {
            f: estimate_time(f, regular_profile, KEPLER_K40C, "single").seconds
            for f in FORMAT_NAMES
        }
        assert min(times, key=times.get) == "ell"

    def test_kepler_double_atomics_hurt_coo_and_hyb(self, skewed_profile):
        """Kepler fp64 atomics are CAS loops: COO/HYB degrade more than CSR."""
        def slowdown(fmt, dev):
            s = estimate_time(fmt, skewed_profile, dev, "single").seconds
            d = estimate_time(fmt, skewed_profile, dev, "double").seconds
            return d / s

        assert slowdown("coo", KEPLER_K40C) > slowdown("csr5", KEPLER_K40C)


class TestRoofline:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_gflops_below_bandwidth_roofline(self, regular_profile, fmt):
        cb = estimate_time(fmt, regular_profile, KEPLER_K40C, "single")
        # 2 flops per (value + index) = 8 bytes minimum traffic.
        roofline = 2.0 * KEPLER_K40C.peak_bandwidth / 8.0 / 1e9
        assert cb.gflops < roofline

    def test_small_matrix_gflops_ramp(self):
        """GFLOPS grow with size at the small end (paper Fig. 3 shape)."""
        sizes = (2_000, 20_000, 200_000)
        gf = []
        for n in sizes:
            # Banded structure keeps locality constant so the ramp is the
            # pure latency/occupancy effect.
            prof = profile_matrix(banded(n, n, bandwidth=8, seed=2))
            gf.append(estimate_time("csr", prof, KEPLER_K40C, "single").gflops)
        assert gf[0] < gf[1] < gf[2]

    def test_kepler_peak_in_paper_band(self):
        """Best-case single-precision SpMV on Kepler ~15-35 GFLOPS (Fig. 3)."""
        prof = profile_matrix(banded(500_000, 500_000, bandwidth=16, seed=3))
        best = max(
            estimate_time(f, prof, KEPLER_K40C, "single").gflops for f in FORMAT_NAMES
        )
        assert 10.0 < best < 45.0
