"""Tests for feature importance and slowdown analysis."""

import numpy as np
import pytest

from repro.core import (
    FormatSelector,
    feature_importance_ranking,
    misprediction_slowdowns,
    slowdown_table_row,
    top_k_features,
)
from repro.features import ALL_FEATURES


class TestImportance:
    def test_ranking_covers_features_sorted(self, mini_dataset):
        ranking = feature_importance_ranking(
            mini_dataset.drop_coo_best(), n_estimators=30
        )
        names = [n for n, _ in ranking]
        scores = [s for _, s in ranking]
        assert set(names) == set(ALL_FEATURES)
        assert scores == sorted(scores, reverse=True)
        assert all(isinstance(s, int) and s >= 0 for s in scores)

    def test_top_k(self, mini_dataset):
        top = top_k_features(mini_dataset.drop_coo_best(), k=5)
        assert len(top) == 5
        assert len(set(top)) == 5

    def test_importance_is_deterministic(self, mini_dataset):
        ds = mini_dataset.drop_coo_best()
        a = feature_importance_ranking(ds, n_estimators=20, seed=1)
        b = feature_importance_ranking(ds, n_estimators=20, seed=1)
        assert a == b


class TestSlowdowns:
    @pytest.fixture(scope="class")
    def selector_and_test(self, mini_dataset):
        ds = mini_dataset.drop_coo_best()
        rng = np.random.default_rng(4)
        idx = rng.permutation(len(ds))
        k = len(ds) // 4
        sel = FormatSelector("xgboost", feature_set="set12").fit(ds.subset(idx[k:]))
        return sel, ds.subset(idx[:k])

    def test_slowdowns_at_least_one(self, selector_and_test):
        sel, test = selector_and_test
        s = misprediction_slowdowns(sel, test)
        assert s.shape == (len(test),)
        assert np.all(s >= 1.0)

    def test_table_row_consistent(self, selector_and_test):
        sel, test = selector_and_test
        row = slowdown_table_row(sel, test)
        assert row["no_slowdown"] + row["gt_1x"] == len(test)
        assert row["gt_1x"] >= row["ge_1.2x"] >= row["ge_1.5x"] >= row["ge_2.0x"]

    def test_perfect_selector_no_slowdown(self, mini_dataset):
        """An oracle (trained and evaluated on the same data with enough
        capacity) shows mostly no slowdown."""
        ds = mini_dataset.drop_coo_best()
        sel = FormatSelector("decision_tree", max_depth=64).fit(ds)
        row = slowdown_table_row(sel, ds)
        assert row["no_slowdown"] >= 0.95 * len(ds)
