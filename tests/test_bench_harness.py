"""Tests for the benchmark harness (runner, tables, experiments)."""

import numpy as np
import pytest

from repro.bench import caption, format_pct, render_series, render_table
from repro.bench.runner import CONFIGS


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "long_header"], [["xx", 1], ["y", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "long_header" in lines[0]
        assert all(len(l) <= len(max(lines, key=len)) for l in lines)

    def test_render_table_title(self):
        out = render_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_render_series(self):
        out = render_series("s", {"a": 1.0, "b": 0.5})
        assert "#" in out
        assert "a" in out and "b" in out

    def test_render_series_empty(self):
        assert "no data" in render_series("s", {})

    def test_format_pct(self):
        assert format_pct(0.876) == "88%"
        assert format_pct(0.0) == "0%"

    def test_caption(self):
        assert caption("Table I", "x") == "[Table I] paper: x"


class TestRunnerConfig:
    def test_configs_cover_paper_grid(self):
        assert ("k40c", "single") in CONFIGS
        assert ("p100", "double") in CONFIGS
        assert len(CONFIGS) == 4

    def test_env_overrides(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setenv("REPRO_SCALE", "0.33")
        monkeypatch.setenv("REPRO_MAX_NNZ", "1e5")
        monkeypatch.setenv("REPRO_SEED", "9")
        cfg = runner.bench_config()
        assert cfg.scale == 0.33
        assert cfg.max_nnz == 100_000
        assert cfg.seed == 9

    def test_defaults(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_REPS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        cfg = runner.bench_config()
        assert cfg.scale == 0.1
        assert cfg.reps == 50
        assert cfg.workers == 1

    def test_env_change_invalidates_corpus_cache(self, monkeypatch):
        """No stale corpus when REPRO_* changes mid-process (no cache_clear)."""
        from repro.bench import runner

        monkeypatch.setenv("REPRO_MAX_NNZ", "60000")
        monkeypatch.setenv("REPRO_SCALE", "0.008")
        c1 = runner.bench_corpus()
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        c2 = runner.bench_corpus()
        assert len(c2) > len(c1)
        monkeypatch.setenv("REPRO_SCALE", "0.008")
        assert runner.bench_corpus() is c1  # memoised per config

    def test_env_change_invalidates_dataset_cache(self, monkeypatch, tmp_path):
        from repro.bench import runner

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_MAX_NNZ", "40000")
        monkeypatch.setenv("REPRO_SCALE", "0.008")
        ds0 = runner.bench_dataset("k40c", "single")
        monkeypatch.setenv("REPRO_SEED", "9")
        ds9 = runner.bench_dataset("k40c", "single")
        assert ds0 is not ds9
        assert ds0.names != ds9.names or not np.array_equal(ds0.times, ds9.times)

    def test_reps_in_disk_cache_tag(self, monkeypatch, tmp_path):
        """Campaigns at different rep counts must not collide on disk."""
        from repro.bench import runner

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_MAX_NNZ", "40000")
        monkeypatch.setenv("REPRO_SCALE", "0.008")
        monkeypatch.setenv("REPRO_REPS", "3")
        ds3 = runner.bench_dataset("k40c", "single")
        monkeypatch.setenv("REPRO_REPS", "5")
        ds5 = runner.bench_dataset("k40c", "single")
        assert ds3.reps == 3 and ds5.reps == 5
        tags = {p.name for p in tmp_path.glob("*.npz")}
        assert {"k40c_single_s0.008_m40000_r0_n3.npz",
                "k40c_single_s0.008_m40000_r0_n5.npz"} <= tags


class TestExperimentsTinyScale:
    """Exercise each experiment function on a throwaway tiny scale."""

    @pytest.fixture(autouse=True)
    def tiny_scale(self, monkeypatch, tmp_path):
        from repro.bench import runner

        monkeypatch.setenv("REPRO_SCALE", "0.008")
        monkeypatch.setenv("REPRO_MAX_NNZ", "60000")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        runner.bench_corpus.cache_clear()
        runner.bench_dataset.cache_clear()
        yield
        runner.bench_corpus.cache_clear()
        runner.bench_dataset.cache_clear()

    def test_corpus_statistics(self):
        from repro.bench import corpus_statistics

        rows = corpus_statistics()
        assert rows and all(r["count"] >= 1 for r in rows)

    def test_classification_accuracy(self):
        from repro.bench import classification_accuracy

        acc = classification_accuracy(
            "decision_tree", "k40c", "single", feature_set="set12", cv=3
        )
        assert 0.0 <= acc <= 1.0

    def test_feature_importance(self):
        from repro.bench import feature_importance

        ranking = feature_importance("k40c", "single")
        assert len(ranking) == 17

    def test_slowdown_analysis(self):
        from repro.bench import slowdown_analysis

        result = slowdown_analysis("decision_tree", feature_sets=("set1",))
        assert "set1" in result
        assert result["set1"]["no_slowdown"] >= 0

    def test_dataset_disk_cache(self, tmp_path):
        from repro.bench import bench_dataset
        from repro.bench import runner

        ds = bench_dataset("k40c", "single")
        runner.bench_dataset.cache_clear()
        again = bench_dataset("k40c", "single")  # served from tmp_path npz
        np.testing.assert_allclose(ds.times, again.times)
