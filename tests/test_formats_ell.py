"""Unit tests for the ELLPACK format."""

import numpy as np
import pytest

from repro.formats import COOMatrix, ELLMatrix, FormatError, PAD_COL


class TestConstruction:
    def test_width_is_longest_row(self, skewed_coo):
        ell = ELLMatrix.from_coo(skewed_coo)
        assert ell.width == int(skewed_coo.row_lengths().max())

    def test_padding_slots_hold_sentinel_and_zero(self, small_coo):
        ell = ELLMatrix.from_coo(small_coo)
        pad = ell.col_idx == PAD_COL
        assert np.all(ell.values[pad] == 0.0)

    def test_nnz_excludes_padding(self, small_coo):
        ell = ELLMatrix.from_coo(small_coo)
        assert ell.nnz == small_coo.nnz

    def test_padding_ratio(self, skewed_coo):
        ell = ELLMatrix.from_coo(skewed_coo)
        expected = skewed_coo.n_rows * ell.width / skewed_coo.nnz
        assert ell.padding_ratio == pytest.approx(expected)
        assert ell.padding_ratio >= 1.0

    def test_padding_guard_rejects_skewed(self, skewed_coo):
        with pytest.raises(FormatError, match="padding ratio"):
            ELLMatrix.from_coo(skewed_coo, max_padding_ratio=2.0)

    def test_padding_guard_allows_regular(self, small_coo):
        ELLMatrix.from_coo(small_coo, max_padding_ratio=50.0)  # no raise

    def test_empty_matrix(self):
        ell = ELLMatrix.from_coo(COOMatrix.empty((4, 4)))
        assert ell.width == 0
        assert ell.nnz == 0
        np.testing.assert_array_equal(ell.spmv(np.ones(4)), np.zeros(4))

    def test_rejects_nonzero_padding_values(self):
        col = np.array([[0, PAD_COL]], dtype=np.int32)
        val = np.array([[1.0, 5.0]])
        with pytest.raises(FormatError, match="padding slots"):
            ELLMatrix((1, 2), col, val)

    def test_rejects_mismatched_planes(self):
        with pytest.raises(FormatError, match="equal-shape"):
            ELLMatrix((1, 2), np.zeros((1, 2), np.int32), np.zeros((1, 3)))

    def test_rejects_wrong_row_count(self):
        with pytest.raises(FormatError, match="one row per matrix row"):
            ELLMatrix((3, 2), np.zeros((1, 2), np.int32), np.zeros((1, 2)))


class TestBehaviour:
    def test_spmv_matches_dense(self, rng, small_coo):
        ell = ELLMatrix.from_coo(small_coo)
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(ell.spmv(x), small_coo.to_dense() @ x)

    def test_spmv_on_skewed(self, rng, skewed_coo):
        ell = ELLMatrix.from_coo(skewed_coo)
        x = rng.standard_normal(skewed_coo.n_cols)
        np.testing.assert_allclose(ell.spmv(x), skewed_coo.to_dense() @ x)

    def test_roundtrip(self, small_coo):
        back = ELLMatrix.from_coo(small_coo).to_coo()
        np.testing.assert_allclose(back.to_dense(), small_coo.to_dense())

    def test_memory_includes_padding(self, skewed_coo):
        ell = ELLMatrix.from_coo(skewed_coo)
        slots = skewed_coo.n_rows * ell.width
        assert ell.memory_bytes() == slots * (4 + 8)
        assert ell.memory_bytes() > skewed_coo.memory_bytes()

    def test_single_row_matrix(self):
        coo = COOMatrix((1, 5), [0, 0, 0], [1, 2, 4], [1.0, 2.0, 3.0])
        ell = ELLMatrix.from_coo(coo)
        assert ell.width == 3
        np.testing.assert_allclose(ell.spmv(np.ones(5)), [6.0])
