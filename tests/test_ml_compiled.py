"""Compiled flat-array inference vs the node-graph reference path.

The contract of :mod:`repro.ml.compiled` is *bit-identical* predictions:
for every tree-based model, the fused table traversal must reproduce the
node-graph walk exactly (``np.array_equal``, not ``allclose``).  These
tests pin that across the estimator zoo, ``warm_fit`` continuations,
``Pipeline`` wrapping, every ``MODEL_REGISTRY`` / ``REGRESSOR_REGISTRY``
family, and registry save→load→predict round trips.
"""

import numpy as np
import pytest

from repro.core import (
    MODEL_REGISTRY,
    REGRESSOR_REGISTRY,
    FormatSelector,
    PerformancePredictor,
)
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml import compiled as C
from repro.ml.compiled import TreeTable, node_path
from repro.ml.preprocessing import Pipeline, StandardScaler
from repro.ml.serialize import load_estimator, save_estimator, save_payload


@pytest.fixture(scope="module")
def clf_data():
    rng = np.random.default_rng(42)
    X = rng.standard_normal((150, 8))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int) + 2 * (X[:, 2] > 0.5)
    return X, y


@pytest.fixture(scope="module")
def reg_data():
    rng = np.random.default_rng(43)
    X = rng.standard_normal((150, 8))
    y = X[:, 0] * 2.0 - X[:, 3] + 0.1 * rng.standard_normal(150)
    return X, y


def _node_vs_compiled(model, method, X):
    """Assert the node walk and the fused traversal agree bitwise."""
    with node_path():
        ref = getattr(model, method)(X)
    out = getattr(model, method)(X)
    assert np.array_equal(ref, out), f"{type(model).__name__}.{method}"
    return ref


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_node_path_flag(self):
        assert C.compiled_enabled()
        with node_path():
            assert not C.compiled_enabled()
            with node_path():
                assert not C.compiled_enabled()
            assert not C.compiled_enabled()
        assert C.compiled_enabled()

    def test_shared_arange_grows_and_is_readonly(self):
        a = C.shared_arange(10)
        assert not a.flags.writeable
        np.testing.assert_array_equal(a, np.arange(10))
        b = C.shared_arange(1000)
        assert b.size == 1000 and b[-1] == 999
        assert not b.flags.writeable

    def test_compile_trees_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            C.compile_trees([], lambda n: None, 1)

    def test_single_tree_table_shape(self, clf_data):
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=4).fit(X, y)
        t = est.compiled_
        assert isinstance(t, TreeTable)
        assert t.n_trees == 1
        assert t.value_width == est.n_classes_
        assert t.max_depth <= 4
        # Leaves self-loop; internal nodes do not.
        leaves = t.feature[0] == -1
        idx = np.arange(t.n_nodes)
        assert np.array_equal(t.left[0] == idx, leaves)
        assert np.array_equal(t.right[0] == idx, leaves)


# ---------------------------------------------------------------------------
# Estimator families (raw arrays)
# ---------------------------------------------------------------------------


class TestEstimators:
    def test_tree_classifier(self, clf_data):
        X, y = clf_data
        est = DecisionTreeClassifier(max_depth=6).fit(X, y)
        _node_vs_compiled(est, "predict_proba", X)
        _node_vs_compiled(est, "predict", X)

    def test_tree_regressor(self, reg_data):
        X, y = reg_data
        est = DecisionTreeRegressor(max_depth=6).fit(X, y)
        _node_vs_compiled(est, "predict", X)

    def test_forest_classifier(self, clf_data):
        X, y = clf_data
        est = RandomForestClassifier(n_estimators=12, max_depth=5).fit(X, y)
        assert est.compiled_.n_trees == 12
        _node_vs_compiled(est, "predict_proba", X)
        _node_vs_compiled(est, "predict", X)

    def test_forest_regressor(self, reg_data):
        X, y = reg_data
        est = RandomForestRegressor(n_estimators=12, max_depth=5).fit(X, y)
        _node_vs_compiled(est, "predict", X)

    def test_boost_classifier(self, clf_data):
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=8, max_depth=4).fit(X, y)
        assert est.compiled_.n_trees == 8 * est.n_classes_
        _node_vs_compiled(est, "decision_function", X)
        _node_vs_compiled(est, "predict_proba", X)
        _node_vs_compiled(est, "predict", X)

    def test_boost_regressor(self, reg_data):
        X, y = reg_data
        est = GradientBoostingRegressor(n_estimators=8, max_depth=4).fit(X, y)
        assert est.compiled_.n_trees == 8
        _node_vs_compiled(est, "predict", X)

    def test_single_row_and_batch_agree(self, clf_data):
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=6, max_depth=3).fit(X, y)
        batch = est.predict_proba(X[:16])
        rows = np.vstack([est.predict_proba(X[i : i + 1]) for i in range(16)])
        assert np.array_equal(batch, rows)

    def test_subsampled_boost(self, clf_data):
        # subsample < 1 exercises the per-tree (non-root-sorted) fit path.
        X, y = clf_data
        est = GradientBoostingClassifier(
            n_estimators=6, max_depth=4, subsample=0.7
        ).fit(X, y)
        _node_vs_compiled(est, "decision_function", X)


class TestWarmFit:
    def test_boost_classifier_warm(self, clf_data):
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=4, max_depth=4).fit(X, y)
        est.warm_fit(X, y, n_rounds=3)
        assert est.compiled_.n_trees == 7 * est.n_classes_
        _node_vs_compiled(est, "decision_function", X)

    def test_boost_regressor_warm(self, reg_data):
        X, y = reg_data
        est = GradientBoostingRegressor(n_estimators=4, max_depth=4).fit(X, y)
        est.warm_fit(X, y, n_rounds=3)
        assert est.compiled_.n_trees == 7
        _node_vs_compiled(est, "predict", X)


class TestPipeline:
    def test_pipeline_wrapped(self, clf_data):
        X, y = clf_data
        pipe = Pipeline(
            [
                ("scale", StandardScaler()),
                ("model", GradientBoostingClassifier(n_estimators=5, max_depth=3)),
            ]
        ).fit(X, y)
        with node_path():
            ref = pipe.predict(X)
        assert np.array_equal(ref, pipe.predict(X))


# ---------------------------------------------------------------------------
# Registry families (the paper's model zoo, on the labeled mini-dataset)
# ---------------------------------------------------------------------------

_SMALL = {
    "decision_tree": {},
    "svm": {"max_iter": 5},
    "svr": {"n_epochs": 5},
    "mlp": {"n_epochs": 5},
    "mlp_ensemble": {"n_members": 2, "n_epochs": 5},
    "xgboost": {"n_estimators": 5},
}


class TestRegistryFamilies:
    @pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
    def test_selector_family(self, mini_dataset, model):
        ds = mini_dataset.drop_coo_best()
        sel = FormatSelector(model, feature_set="set12", **_SMALL[model])
        sel.fit(ds)
        with node_path():
            ref = sel.predict(ds)
        assert np.array_equal(ref, sel.predict(ds)), model

    @pytest.mark.parametrize("model", sorted(REGRESSOR_REGISTRY))
    def test_predictor_family(self, mini_dataset, model):
        pred = PerformancePredictor(model, feature_set="set12", **_SMALL[model])
        pred.fit(mini_dataset)
        with node_path():
            ref = pred.predict(mini_dataset)
        assert np.array_equal(ref, pred.predict(mini_dataset)), model


# ---------------------------------------------------------------------------
# Serialization round trips
# ---------------------------------------------------------------------------


class TestRoundTrips:
    def test_estimator_round_trip_keeps_table(self, clf_data, tmp_path):
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=5, max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_estimator(est, path)
        restored = load_estimator(path)
        assert isinstance(restored.compiled_, TreeTable)
        assert np.array_equal(
            est.decision_function(X), restored.decision_function(X)
        )
        _node_vs_compiled(restored, "decision_function", X)

    def test_loaded_table_used_without_recompile(
        self, clf_data, tmp_path, monkeypatch
    ):
        # A v2 artifact carries its table; loading must not re-lower.
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=4, max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_estimator(est, path)

        def boom(*a, **kw):  # pragma: no cover - would mean recompile ran
            raise AssertionError("compile_boost called on v2 load")

        monkeypatch.setattr(C, "compile_boost", boom)
        restored = load_estimator(path)
        assert isinstance(restored.compiled_, TreeTable)
        assert np.array_equal(est.predict(X), restored.predict(X))

    def test_v1_artifact_recompiles_on_load(self, clf_data, tmp_path):
        # A v1-era artifact has no compiled table: strip it, write under
        # the old schema tag, and check the load path rebuilds it.
        X, y = clf_data
        est = GradientBoostingClassifier(n_estimators=4, max_depth=3).fit(X, y)
        ref = est.decision_function(X)
        del est.compiled_
        path = tmp_path / "m.npz"
        save_payload(est, path, schema="repro-ml-state/v1")
        restored = load_estimator(path)
        assert isinstance(restored.compiled_, TreeTable)
        assert np.array_equal(ref, restored.decision_function(X))

    def test_model_registry_round_trip(self, mini_dataset, tmp_path):
        from repro.serve import ModelRegistry

        ds = mini_dataset.drop_coo_best()
        sel = FormatSelector("xgboost", feature_set="set12", n_estimators=5)
        sel.fit(ds)
        registry = ModelRegistry(tmp_path)
        registry.save(sel, "compiled-test", dataset=ds, promote=True)
        loaded, _ = registry.load("compiled-test")
        assert isinstance(loaded.estimator.compiled_, TreeTable)
        assert np.array_equal(sel.predict(ds), loaded.predict(ds))
        with node_path():
            ref = loaded.predict(ds)
        assert np.array_equal(ref, loaded.predict(ds))
