"""Tests for the SuiteSparse-shaped corpus sampler."""

import numpy as np
import pytest

from repro.matrices import NNZ_BINS, SyntheticCorpus, table1_statistics


class TestSampling:
    def test_deterministic(self):
        a = SyntheticCorpus(scale=0.01, seed=5, max_nnz=100_000)
        b = SyntheticCorpus(scale=0.01, seed=5, max_nnz=100_000)
        assert [e.name for e in a] == [e.name for e in b]
        assert [e.params for e in a] == [e.params for e in b]

    def test_scaled_bin_counts(self):
        corpus = SyntheticCorpus(scale=0.05, seed=0, max_nnz=10**9)
        counts = {}
        for e in corpus:
            counts[e.bin_index] = counts.get(e.bin_index, 0) + 1
        for b, (lo, hi, n) in enumerate(NNZ_BINS):
            assert counts.get(b, 0) == max(1, round(0.05 * n))

    def test_max_nnz_prunes_large_bins(self):
        corpus = SyntheticCorpus(scale=0.05, seed=0, max_nnz=100_000)
        assert all(e.target_nnz <= 100_000 for e in corpus)
        # Bins whose lower edge exceeds the cap are skipped entirely
        # (bin 3 starts exactly at the cap, so it survives, clipped).
        assert max(e.bin_index for e in corpus) <= 3

    def test_family_restriction(self):
        corpus = SyntheticCorpus(
            scale=0.02, seed=0, max_nnz=50_000, families=("banded", "power_law")
        )
        assert {e.family for e in corpus} <= {"banded", "power_law"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            SyntheticCorpus(scale=0.01, families=("dia",))

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SyntheticCorpus(scale=0.0)

    def test_entries_build_near_target_nnz(self):
        corpus = SyntheticCorpus(scale=0.01, seed=2, max_nnz=100_000)
        for e in corpus.entries[:12]:
            m = e.build()
            assert m.nnz > 0
            # Generators approximate the target loosely (dedup, rounding,
            # family parameterisation) but stay within an order of magnitude.
            assert m.nnz > e.target_nnz / 12
            assert m.nnz < e.target_nnz * 12

    def test_build_is_deterministic(self):
        corpus = SyntheticCorpus(scale=0.01, seed=2, max_nnz=50_000)
        e = corpus.entries[0]
        m1, m2 = e.build(), e.build()
        np.testing.assert_array_equal(m1.row, m2.row)

    def test_build_all_yields_every_entry(self):
        corpus = SyntheticCorpus(scale=0.01, seed=1, max_nnz=20_000)
        pairs = list(corpus.build_all())
        assert len(pairs) == len(corpus)


class TestTable1:
    def test_statistics_shape(self):
        corpus = SyntheticCorpus(scale=0.01, seed=0, max_nnz=100_000)
        rows = table1_statistics(corpus)
        assert rows
        for r in rows:
            assert r["count"] >= 1
            assert r["avg_rows"] > 0
            assert 0 < r["avg_density_pct"] <= 100
            assert r["avg_nnz_mu"] > 0

    def test_density_falls_with_size(self):
        corpus = SyntheticCorpus(scale=0.03, seed=0, max_nnz=3_000_000)
        rows = table1_statistics(corpus)
        assert rows[0]["avg_density_pct"] > rows[-1]["avg_density_pct"]

    def test_profiles_can_be_reused(self):
        from repro.gpu import profile_matrix

        corpus = SyntheticCorpus(scale=0.005, seed=0, max_nnz=20_000)
        profiles = {e.name: profile_matrix(e.build()) for e in corpus}
        rows = table1_statistics(corpus, profiles=profiles)
        assert sum(r["count"] for r in rows) == len(corpus)
