"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.bench.report import (
    PAPER_CLASSIFICATION,
    PAPER_TABLE14,
    _md_table,
    generate_report,
)
from repro.bench.runner import CONFIGS


class TestMarkdownTable:
    def test_structure(self):
        md = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_non_string_cells(self):
        md = _md_table(["x"], [[42]])
        assert "| 42 |" in md


class TestPaperNumbers:
    def test_every_table_covers_all_configs(self):
        for table_id, table in PAPER_CLASSIFICATION.items():
            assert set(table) == set(CONFIGS), table_id
            for accs in table.values():
                assert set(accs) == {"decision_tree", "svm", "mlp", "xgboost"}
                assert all(0.0 < a < 1.0 for a in accs.values())

    def test_paper_trends_encoded(self):
        """The transcribed numbers satisfy the paper's own claims."""
        for cfg in CONFIGS:
            # Sets 1+2 >> set 1 for every machine (Tables IV -> V).
            assert PAPER_CLASSIFICATION["V"][cfg]["xgboost"] > (
                PAPER_CLASSIFICATION["IV"][cfg]["xgboost"] + 0.1
            )
            # Six formats are harder than three (V -> VIII).
            assert (
                PAPER_CLASSIFICATION["VIII"][cfg]["xgboost"]
                <= PAPER_CLASSIFICATION["V"][cfg]["xgboost"]
            )
            # Indirect at 5% tolerance >= direct (Table XIV).
            t14 = PAPER_TABLE14[cfg]
            assert t14["indirect_tol5"] >= t14["xgboost_direct"] - 0.01

    def test_table14_configs(self):
        assert set(PAPER_TABLE14) == set(CONFIGS)


@pytest.mark.slow
class TestGeneration:
    def test_generates_markdown_at_tiny_scale(self, monkeypatch, tmp_path):
        import io

        from repro.bench import runner

        monkeypatch.setenv("REPRO_SCALE", "0.008")
        monkeypatch.setenv("REPRO_MAX_NNZ", "50000")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        runner.bench_corpus.cache_clear()
        runner.bench_dataset.cache_clear()
        try:
            text = generate_report(cv=2, stream=io.StringIO())
        finally:
            runner.bench_corpus.cache_clear()
            runner.bench_dataset.cache_clear()
        assert "# EXPERIMENTS" in text
        assert "## Table I" in text
        assert "## Table XIV" in text
        assert "paper" in text
