"""Edge-case tests across the ML stack."""

import numpy as np
import pytest

from repro.ml import (
    SVC,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GridSearchCV,
    KFold,
    MLPClassifier,
    Pipeline,
    StandardScaler,
    accuracy_score,
    clone,
    cross_val_score,
)


class TestDegenerateData:
    def test_tree_on_constant_features(self, rng):
        X = np.ones((20, 3))
        y = rng.integers(0, 2, 20)
        tree = DecisionTreeClassifier().fit(X, y)
        # No split possible; predicts the majority class everywhere.
        assert np.all(tree.predict(X) == np.bincount(y).argmax())

    def test_boosting_on_constant_target(self, rng):
        X = rng.standard_normal((30, 2))
        clf = GradientBoostingClassifier(n_estimators=3).fit(X, np.ones(30, int))
        assert np.all(clf.predict(X) == 1)

    def test_mlp_single_class(self, rng):
        X = rng.standard_normal((20, 2))
        clf = MLPClassifier(hidden_layer_sizes=(4,), n_epochs=3).fit(
            X, np.zeros(20, int)
        )
        assert np.all(clf.predict(X) == 0)

    def test_tree_regressor_two_points(self):
        tree = DecisionTreeRegressor().fit(
            np.array([[0.0], [1.0]]), np.array([1.0, 3.0])
        )
        assert tree.predict(np.array([[0.0]]))[0] == pytest.approx(1.0)
        assert tree.predict(np.array([[1.0]]))[0] == pytest.approx(3.0)

    def test_missing_class_in_range(self, rng):
        """Labels {0, 2} (no 1) still work everywhere."""
        X = rng.standard_normal((60, 2))
        y = np.where(X[:, 0] > 0, 2, 0)
        for model in (
            DecisionTreeClassifier(max_depth=3),
            GradientBoostingClassifier(n_estimators=5),
            MLPClassifier(hidden_layer_sizes=(16,), n_epochs=60),
        ):
            model.fit(X, y)
            pred = model.predict(X)
            assert set(np.unique(pred)) <= {0, 1, 2}
            assert accuracy_score(y, pred) > 0.8


class TestCloneSemantics:
    def test_clone_pipeline_deep(self):
        p = Pipeline([("s", StandardScaler()), ("t", DecisionTreeClassifier())])
        q = clone(p)
        assert q.steps[0][1] is not p.steps[0][1]

    def test_clone_preserves_every_param(self):
        clf = GradientBoostingClassifier(
            n_estimators=7, learning_rate=0.3, max_depth=2, reg_lambda=2.5,
            gamma=0.1, min_child_weight=3.0, subsample=0.7, seed=9,
        )
        twin = clone(clf)
        assert twin.get_params() == clf.get_params()


class TestCrossValidationCorners:
    def test_cv_more_folds_than_classes_ok(self, rng):
        X = rng.standard_normal((50, 2))
        y = (X[:, 0] > 0).astype(int)
        scores = cross_val_score(DecisionTreeClassifier(max_depth=2), X, y, cv=10)
        assert scores.shape == (10,)

    def test_gridsearch_single_candidate(self, rng):
        X = rng.standard_normal((30, 2))
        y = (X[:, 0] > 0).astype(int)
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [3]}, cv=3)
        gs.fit(X, y)
        assert gs.best_params_ == {"max_depth": 3}

    def test_kfold_seed_changes_folds(self):
        a = [te.tolist() for _, te in KFold(3, seed=0).split(30)]
        b = [te.tolist() for _, te in KFold(3, seed=1).split(30)]
        assert a != b

    def test_kfold_seed_reproducible(self):
        a = [te.tolist() for _, te in KFold(3, seed=5).split(30)]
        b = [te.tolist() for _, te in KFold(3, seed=5).split(30)]
        assert a == b


class TestSVCNumerics:
    def test_duplicate_points_do_not_crash(self, rng):
        X = np.repeat(rng.standard_normal((5, 2)), 6, axis=0)
        y = np.repeat(rng.integers(0, 2, 5), 6)
        if len(np.unique(y)) < 2:
            y[:6] = 1 - y[0]
        clf = SVC(C=1.0, gamma=0.5, max_iter=10).fit(X, y)
        assert clf.predict(X).shape == y.shape

    def test_tiny_dataset(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1])
        clf = SVC(C=10.0, gamma=1.0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) == 1.0
