"""Tests for the estimator protocol (get/set params, clone, validation)."""

import numpy as np
import pytest

from repro.ml import (
    BaseEstimator,
    DecisionTreeClassifier,
    NotFittedError,
    check_X,
    check_X_y,
    clone,
)


class TestParamProtocol:
    def test_get_params_reflects_constructor(self):
        tree = DecisionTreeClassifier(max_depth=7, min_samples_leaf=3)
        p = tree.get_params()
        assert p["max_depth"] == 7
        assert p["min_samples_leaf"] == 3

    def test_set_params_roundtrip(self):
        tree = DecisionTreeClassifier()
        tree.set_params(max_depth=3)
        assert tree.max_depth == 3

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="no parameter"):
            DecisionTreeClassifier().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, rng):
        X = rng.standard_normal((30, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        fresh = clone(tree)
        assert fresh.max_depth == 4
        assert not hasattr(fresh, "root_")
        with pytest.raises(NotFittedError):
            fresh.predict(X)


class TestValidation:
    def test_check_X_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_X(np.zeros(5))

    def test_check_X_rejects_nan(self):
        X = np.zeros((3, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_X(X)

    def test_check_X_y_rejects_mismatch(self):
        with pytest.raises(ValueError, match="sample count"):
            check_X_y(np.zeros((3, 2)), np.zeros(4))

    def test_check_X_y_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_X_y(np.zeros((0, 2)), np.zeros(0))

    def test_check_X_y_rejects_2d_targets(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_check_X_casts_to_float64(self):
        X = check_X(np.ones((2, 2), dtype=np.int32))
        assert X.dtype == np.float64
