"""Unit tests for the extension formats (DIA, BSR)."""

import numpy as np
import pytest

from repro.formats import BSRMatrix, COOMatrix, DIAMatrix, FormatError, as_format
from repro.matrices import banded, fem_blocks, multi_diagonal, random_uniform


class TestDIA:
    def test_spmv_matches_dense(self, rng, small_coo):
        dia = DIAMatrix.from_coo(small_coo)
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(dia.spmv(x), small_coo.to_dense() @ x, atol=1e-12)

    def test_roundtrip(self, small_coo):
        back = DIAMatrix.from_coo(small_coo).to_coo()
        np.testing.assert_allclose(back.to_dense(), small_coo.to_dense())

    def test_diag_count_on_multi_diagonal(self):
        A = multi_diagonal(60, offsets=(-5, 0, 2), fill=1.0, seed=0)
        dia = DIAMatrix.from_coo(A)
        assert dia.n_diags == 3
        assert dia.offsets.tolist() == [-5, 0, 2]

    def test_memory_has_no_per_element_indices(self):
        A = banded(1000, 1000, bandwidth=5, fill=1.0, seed=0)
        dia = DIAMatrix.from_coo(A)
        from repro.formats import CSRMatrix

        csr = CSRMatrix.from_coo(A)
        assert dia.memory_bytes() < csr.memory_bytes()

    def test_fill_guard(self):
        A = random_uniform(200, 200, nnz=400, seed=1)  # ~hundreds of diagonals
        with pytest.raises(FormatError, match="fill ratio"):
            DIAMatrix.from_coo(A, max_fill_ratio=3.0)

    def test_rectangular(self, rng):
        dense = (rng.random((12, 30)) < 0.2) * rng.standard_normal((12, 30))
        coo = COOMatrix.from_dense(dense)
        dia = DIAMatrix.from_coo(coo)
        x = rng.standard_normal(30)
        np.testing.assert_allclose(dia.spmv(x), dense @ x, atol=1e-12)

    def test_empty(self):
        dia = DIAMatrix.from_coo(COOMatrix.empty((4, 4)))
        assert dia.n_diags == 0
        np.testing.assert_array_equal(dia.spmv(np.ones(4)), np.zeros(4))

    def test_rejects_unsorted_offsets(self):
        with pytest.raises(FormatError, match="increasing"):
            DIAMatrix((3, 3), np.array([1, 0]), np.zeros((2, 3)))

    def test_rejects_values_outside_matrix(self):
        data = np.ones((1, 3))
        with pytest.raises(FormatError, match="outside"):
            DIAMatrix((3, 3), np.array([2]), data)  # rows 1,2 are off-matrix


class TestBSR:
    def test_spmv_matches_dense(self, rng, small_coo):
        bsr = BSRMatrix.from_coo(small_coo)
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(bsr.spmv(x), small_coo.to_dense() @ x, atol=1e-12)

    @pytest.mark.parametrize("block_shape", [(2, 2), (4, 4), (3, 5), (1, 1)])
    def test_block_shapes(self, rng, small_coo, block_shape):
        bsr = BSRMatrix.from_coo(small_coo, block_shape=block_shape)
        x = rng.standard_normal(small_coo.n_cols)
        np.testing.assert_allclose(bsr.spmv(x), small_coo.to_dense() @ x, atol=1e-12)

    def test_roundtrip(self, skewed_coo):
        back = BSRMatrix.from_coo(skewed_coo).to_coo()
        np.testing.assert_allclose(back.to_dense(), skewed_coo.to_dense())

    def test_block_structured_matrix_is_compact(self):
        A = fem_blocks(30, 4, coupling=0.0, block_fill=1.0, seed=0)
        bsr = BSRMatrix.from_coo(A, block_shape=(4, 4))
        # fem_blocks samples block cells with replacement, so blocks are
        # ~2/3 full: fill stays far below the scattered case.
        assert bsr.fill_ratio < 2.0
        scattered = random_uniform(120, 120, nnz=A.nnz, seed=1)
        assert BSRMatrix.from_coo(scattered).fill_ratio > 5.0

    def test_non_aligned_shape(self, rng):
        dense = (rng.random((10, 7)) < 0.3) * rng.standard_normal((10, 7))
        coo = COOMatrix.from_dense(dense)
        bsr = BSRMatrix.from_coo(coo, block_shape=(4, 4))
        x = rng.standard_normal(7)
        np.testing.assert_allclose(bsr.spmv(x), dense @ x, atol=1e-12)

    def test_empty(self):
        bsr = BSRMatrix.from_coo(COOMatrix.empty((5, 5)))
        assert bsr.n_blocks == 0
        np.testing.assert_array_equal(bsr.spmv(np.ones(5)), np.zeros(5))

    def test_rejects_bad_block_shape(self, small_coo):
        with pytest.raises(FormatError, match="positive"):
            BSRMatrix.from_coo(small_coo, block_shape=(0, 4))

    def test_nnz_excludes_block_fill(self, small_coo):
        assert BSRMatrix.from_coo(small_coo).nnz == small_coo.nnz


class TestIntegration:
    def test_as_format_dispatch(self, small_coo):
        assert as_format(small_coo, "dia").name == "dia"
        assert as_format(small_coo, "bsr").name == "bsr"

    def test_executor_benchmarks_extensions(self, kepler_executor):
        A = banded(5000, 5000, bandwidth=7, fill=1.0, seed=0)
        s_dia = kepler_executor.benchmark(A, "dia")
        s_bsr = kepler_executor.benchmark(A, "bsr")
        assert s_dia.seconds > 0 and s_bsr.seconds > 0
        # DIA beats everything on a pure band.
        s_csr = kepler_executor.benchmark(A, "csr")
        assert s_dia.seconds < s_csr.seconds

    def test_executor_run_numeric(self, kepler_executor, small_coo):
        for fmt in ("dia", "bsr"):
            y, _ = kepler_executor.run(small_coo, fmt)
            np.testing.assert_allclose(
                y, small_coo.to_dense().astype(np.float32).sum(axis=1), rtol=1e-4
            )

    def test_dia_oom_on_unstructured(self, kepler_executor):
        A = random_uniform(50_000, 50_000, nnz=400_000, seed=2)
        from repro.gpu import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            kepler_executor.check_feasible(A, "dia")
