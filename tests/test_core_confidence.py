"""Tests for the confidence-gated hybrid selector (SMAT-style)."""

import numpy as np
import pytest

from repro.core import ConfidenceSelector, FormatSelector
from repro.gpu import KEPLER_K40C, SpMVExecutor


@pytest.fixture(scope="module")
def setting(mini_dataset, mini_corpus):
    ds = mini_dataset.drop_coo_best()
    matrices = {e.name: e.build() for e in mini_corpus if e.name in set(ds.names)}
    executor = SpMVExecutor(KEPLER_K40C, "single", seed=0)
    base = FormatSelector("xgboost", feature_set="set12")
    return ds, matrices, executor, base


class TestDecide:
    def test_confident_prediction_skips_probe(self, setting):
        ds, matrices, executor, base = setting
        cs = ConfidenceSelector(base, executor, threshold=0.0)
        cs.fit(ds)
        X = ds.X("set12")
        d = cs.decide(matrices[ds.names[0]], X[0])
        assert not d.probed
        assert d.probe_seconds == 0.0
        assert d.fmt in ds.formats

    def test_threshold_one_always_probes(self, setting):
        ds, matrices, executor, base = setting
        cs = ConfidenceSelector(base, executor, threshold=1.0, top_k=2)
        cs.fit(ds)
        X = ds.X("set12")
        d = cs.decide(matrices[ds.names[0]], X[0])
        assert d.probed
        assert d.probe_seconds > 0

    def test_probe_decision_is_measured_best_of_topk(self, setting):
        ds, matrices, executor, base = setting
        cs = ConfidenceSelector(base, executor, threshold=1.0, top_k=len(ds.formats))
        cs.fit(ds)
        X = ds.X("set12")
        name = ds.names[1]
        d = cs.decide(matrices[name], X[1])
        # Probing all formats must recover the measured best format
        # (same executor noise seed => same fixed effects; jitter small).
        times = {
            f: s.seconds
            for f, s in executor.benchmark_all(matrices[name], formats=ds.formats).items()
            if s is not None
        }
        assert d.fmt == min(times, key=times.get)


class TestEvaluate:
    def test_probing_more_cannot_hurt_much(self, setting):
        ds, matrices, executor, base = setting
        never = ConfidenceSelector(base, executor, threshold=0.0).fit(ds)
        always = ConfidenceSelector(
            FormatSelector("xgboost", feature_set="set12"),
            executor,
            threshold=1.0,
            top_k=3,
        ).fit(ds)
        r_never = never.evaluate(ds, matrices)
        r_always = always.evaluate(ds, matrices)
        assert r_never["probe_rate"] == 0.0
        assert r_always["probe_rate"] == 1.0
        # Probing the model's top-3 candidates recovers most model errors.
        # (Probe measurements carry their own jitter, so near-ties can
        # still land on the "wrong" label — allow a small budget.)
        assert r_always["accuracy"] >= r_never["accuracy"] - 0.1

    def test_metrics_ranges(self, setting):
        ds, matrices, executor, base = setting
        cs = ConfidenceSelector(base, executor, threshold=0.7).fit(ds)
        r = cs.evaluate(ds, matrices)
        assert 0.0 <= r["accuracy"] <= 1.0
        assert 0.0 <= r["probe_rate"] <= 1.0
        assert r["probe_seconds_total"] >= 0.0


class TestValidation:
    def test_bad_threshold(self, setting):
        _, _, executor, base = setting
        with pytest.raises(ValueError, match="threshold"):
            ConfidenceSelector(base, executor, threshold=1.5)

    def test_bad_top_k(self, setting):
        _, _, executor, base = setting
        with pytest.raises(ValueError, match="top_k"):
            ConfidenceSelector(base, executor, top_k=0)

    def test_svm_without_proba_rejected(self, setting):
        ds, matrices, executor, _ = setting
        svm = FormatSelector("svm", feature_set="set12")
        cs = ConfidenceSelector(svm, executor, threshold=0.5).fit(ds)
        with pytest.raises(TypeError, match="predict_proba"):
            cs.decide(matrices[ds.names[0]], ds.X("set12")[0])
