"""Tests for the performance predictor (time regression)."""

import numpy as np
import pytest

from repro.core import PerformancePredictor


@pytest.fixture(scope="module")
def split(mini_dataset):
    ds = mini_dataset.drop_coo_best()
    rng = np.random.default_rng(1)
    idx = rng.permutation(len(ds))
    k = len(ds) // 5
    return ds.subset(idx[k:]), ds.subset(idx[:k])


class TestJointMode:
    def test_predict_times_shape_and_positivity(self, split):
        train, test = split
        pp = PerformancePredictor("xgboost", feature_set="set12", mode="joint")
        pp.fit(train)
        times = pp.predict(test)
        assert times.shape == (len(test), len(train.formats))
        assert np.all(times > 0)

    def test_rme_beats_constant_predictor(self, split):
        train, test = split
        pp = PerformancePredictor("xgboost", feature_set="set123", mode="joint")
        pp.fit(train)
        rme = pp.rme(test)
        # A constant (geometric-mean) predictor is dismal on 6 decades.
        const = np.exp(np.mean(np.log(train.times)))
        baseline = np.mean(np.abs(const - test.times) / test.times)
        assert rme < 0.5 * baseline
        assert rme < 0.6

    def test_predict_best_in_range(self, split):
        train, test = split
        pp = PerformancePredictor("decision_tree", mode="joint").fit(train)
        best = pp.predict_best(test)
        assert best.shape == (len(test),)
        assert best.min() >= 0 and best.max() < len(train.formats)


class TestPerFormatMode:
    def test_per_format_rme_keys(self, split):
        train, test = split
        pp = PerformancePredictor("xgboost", mode="per_format").fit(train)
        rmes = pp.rme_per_format(test)
        assert set(rmes) == set(train.formats)
        assert all(v >= 0 for v in rmes.values())

    def test_modes_roughly_agree(self, split):
        train, test = split
        joint = PerformancePredictor("xgboost", mode="joint").fit(train)
        per = PerformancePredictor("xgboost", mode="per_format").fit(train)
        assert abs(joint.rme(test) - per.rme(test)) < 0.4


class TestConfig:
    def test_mlp_ensemble_is_default(self):
        assert PerformancePredictor().model_name == "mlp_ensemble"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            PerformancePredictor("cnn")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            PerformancePredictor("xgboost", mode="both")

    def test_custom_estimator(self, split):
        from repro.ml import DecisionTreeRegressor

        train, test = split
        pp = PerformancePredictor(DecisionTreeRegressor(max_depth=8), mode="joint")
        pp.fit(train)
        assert pp.rme(test) < 1.5

    def test_kwargs_forwarded(self):
        pp = PerformancePredictor("xgboost", n_estimators=11)
        pp_model = pp._factory()
        assert pp_model.n_estimators == 11


class TestVectorInput:
    def test_1d_vector_equals_one_row_batch(self, split):
        train, test = split
        pp = PerformancePredictor(
            "decision_tree", feature_set="set12", mode="joint"
        ).fit(train)
        X = test.X("set12")
        for i in range(min(3, X.shape[0])):
            one_d = pp.predict(X[i])
            batch = pp.predict(X[i][None, :])
            np.testing.assert_array_equal(one_d, batch)
            assert one_d.shape == (1, len(train.formats))

    def test_predict_best_on_vector(self, split):
        train, test = split
        pp = PerformancePredictor(
            "decision_tree", feature_set="set12", mode="per_format"
        ).fit(train)
        vec = test.X("set12")[0]
        best = pp.predict_best(vec)
        assert best.shape == (1,)
        assert 0 <= best[0] < len(train.formats)
