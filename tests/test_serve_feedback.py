"""FeedbackLog tests: regret edge cases and multi-threaded hammering.

The log sits on the serving hot path for every ``feedback`` op from
every server connection, so its counters must stay exact under
concurrent writers, and its regret math must reject unusable
observations loudly instead of producing garbage quality signals.
"""

import threading

import pytest

from repro.serve import FeedbackLog


class TestRegretEdgeCases:
    def test_chosen_format_missing_from_times(self):
        log = FeedbackLog()
        with pytest.raises(ValueError, match="must include the chosen"):
            log.record("r1", "csr", {"ell": 1.0, "hyb": 2.0})
        assert len(log) == 0

    def test_zero_time_rejected(self):
        log = FeedbackLog()
        with pytest.raises(ValueError, match="must be positive"):
            log.record("r1", "csr", {"csr": 0.0, "ell": 1.0})

    def test_negative_and_nan_times_rejected(self):
        log = FeedbackLog()
        with pytest.raises(ValueError, match="must be positive"):
            log.record("r1", "csr", {"csr": -1.0})
        with pytest.raises(ValueError, match="must be positive"):
            log.record("r1", "csr", {"csr": float("nan"), "ell": 1.0})

    def test_near_zero_positive_times_work(self):
        log = FeedbackLog()
        event = log.record("r1", "csr", {"csr": 2e-12, "ell": 1e-12})
        assert event.regret == pytest.approx(1.0)
        assert event.optimal == "ell"

    def test_single_format_report_has_zero_regret(self):
        # With only the chosen format observed there is nothing to
        # regret against — regret is 0 by construction.
        log = FeedbackLog()
        event = log.record("r1", "csr", {"csr": 3.0})
        assert event.regret == 0.0
        assert event.optimal == "csr"

    def test_optimal_choice_has_zero_regret(self):
        log = FeedbackLog()
        event = log.record("r1", "ell", {"csr": 2.0, "ell": 1.0})
        assert event.regret == 0.0
        event = log.record("r2", "csr", {"csr": 2.0, "ell": 1.0})
        assert event.regret == pytest.approx(1.0)

    def test_rejected_events_leave_no_trace(self):
        log = FeedbackLog()
        log.record("ok", "csr", {"csr": 1.0})
        for bad in ({"ell": 1.0}, {"csr": 0.0}):
            with pytest.raises(ValueError):
                log.record("bad", "csr", bad)
        assert len(log) == 1
        assert log.chosen_distribution() == {"csr": 1}
        assert log.optimal_distribution() == {"csr": 1}


class TestConcurrentHammer:
    def test_many_threads_record_without_losing_events(self):
        """8 writer threads + a reader; every count must stay exact."""
        log = FeedbackLog(maxlen=10_000)
        n_threads, per_thread = 8, 250
        barrier = threading.Barrier(n_threads + 1)
        errors = []

        def writer(t):
            try:
                barrier.wait(timeout=30)
                for i in range(per_thread):
                    fmt = ("csr", "ell")[i % 2]
                    log.record(
                        f"t{t}-r{i}", fmt, {"csr": 1.0 + (i % 2), "ell": 1.0}
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def reader():
            barrier.wait(timeout=30)
            for _ in range(200):
                log.mean_regret()
                log.optimal_distribution()
                len(log)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ] + [threading.Thread(target=reader)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=60)
        assert not errors
        total = n_threads * per_thread
        assert len(log) == total
        chosen = log.chosen_distribution()
        assert chosen["csr"] == total // 2
        assert chosen["ell"] == total // 2
        # Every event's optimal is ell-or-tie; counts must sum exactly.
        assert sum(log.optimal_distribution().values()) == total

    def test_bounded_history_keeps_distributions_cumulative(self):
        log = FeedbackLog(maxlen=4)
        for i in range(10):
            log.record(f"r{i}", "csr", {"csr": 1.0})
        assert len(log) == 4
        assert log.chosen_distribution() == {"csr": 10}
