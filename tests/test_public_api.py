"""Public-API contract tests: exports, docstrings, __all__ hygiene."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.formats",
    "repro.gpu",
    "repro.matrices",
    "repro.features",
    "repro.ml",
    "repro.core",
    "repro.bench",
    "repro.serve",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_packages_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40, f"{name} underdocumented"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    undocumented = []
    for symbol in mod.__all__:
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_root_exposes_quickstart_path():
    import repro

    assert repro.__version__
    # The README quickstart names these; keep them stable.
    for symbol in ("SpMVExecutor", "KEPLER_K40C", "PASCAL_P100", "as_format",
                   "CSRMatrix", "FORMAT_NAMES"):
        assert hasattr(repro, symbol)


def test_format_classes_share_interface():
    from repro.formats import FORMATS, SparseFormat

    for name, cls in FORMATS.items():
        assert issubclass(cls, SparseFormat)
        assert cls.name == name
        for method in ("from_coo", "to_coo", "spmv", "memory_bytes"):
            assert callable(getattr(cls, method)), (name, method)


def test_estimators_follow_param_protocol():
    """Every registry estimator can be constructed, cloned and configured."""
    from repro.core import MODEL_REGISTRY, REGRESSOR_REGISTRY
    from repro.ml import clone

    for factory in list(MODEL_REGISTRY.values()) + list(REGRESSOR_REGISTRY.values()):
        est = factory()
        twin = clone(est)
        assert type(twin) is type(est)


def test_cli_entry_point_configured():
    import tomllib

    with open("pyproject.toml", "rb") as fh:
        meta = tomllib.load(fh)
    assert meta["project"]["scripts"]["repro-spmv"] == "repro.cli:main"
