"""Presorted-feature training must be bit-identical to per-node sorting.

``presort=True`` (one stable argsort per feature at the root, stable
partition down the tree) and ``presort=False`` (the historical stable
argsort at every node) see the same value/target sequences at every
node, so splits, thresholds, importances and predictions must match
exactly — ``np.array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(250, 9))
    X[:, 3] = np.round(X[:, 3])          # heavy ties: stresses stable order
    X[:, 6] = (X[:, 6] > 0).astype(float)  # binary feature: even heavier ties
    y_clf = rng.integers(0, 4, size=250)
    y_reg = X[:, 0] * 2 + np.sin(X[:, 1]) + rng.normal(scale=0.1, size=250)
    return X, y_clf, y_reg


@pytest.mark.parametrize("max_depth", [2, 16])
@pytest.mark.parametrize("max_features", [None, 3])
def test_tree_classifier_identical(data, max_depth, max_features):
    X, y, _ = data
    kw = dict(max_depth=max_depth, max_features=max_features, seed=7)
    a = DecisionTreeClassifier(presort=True, **kw).fit(X, y)
    b = DecisionTreeClassifier(presort=False, **kw).fit(X, y)
    assert np.array_equal(a.predict_proba(X), b.predict_proba(X))
    assert np.array_equal(a.feature_importances_, b.feature_importances_)
    assert np.array_equal(a.split_counts_, b.split_counts_)
    assert a.depth_ == b.depth_


@pytest.mark.parametrize("min_samples_leaf", [1, 5])
def test_tree_regressor_identical(data, min_samples_leaf):
    X, _, y = data
    kw = dict(max_depth=16, min_samples_leaf=min_samples_leaf, seed=7)
    a = DecisionTreeRegressor(presort=True, **kw).fit(X, y)
    b = DecisionTreeRegressor(presort=False, **kw).fit(X, y)
    assert np.array_equal(a.predict(X), b.predict(X))
    assert np.array_equal(a.feature_importances_, b.feature_importances_)


@pytest.mark.parametrize("subsample", [1.0, 0.6])
def test_boosting_classifier_identical(data, subsample):
    X, y, _ = data
    kw = dict(n_estimators=10, max_depth=4, subsample=subsample, seed=3)
    a = GradientBoostingClassifier(presort=True, **kw).fit(X, y)
    b = GradientBoostingClassifier(presort=False, **kw).fit(X, y)
    assert np.array_equal(a.decision_function(X), b.decision_function(X))
    assert np.array_equal(a.predict(X), b.predict(X))
    assert np.array_equal(a.f_scores_, b.f_scores_)
    assert np.array_equal(a.feature_importances_, b.feature_importances_)


@pytest.mark.parametrize("subsample", [1.0, 0.6])
def test_boosting_regressor_identical(data, subsample):
    X, _, y = data
    kw = dict(n_estimators=10, max_depth=4, subsample=subsample, seed=3)
    a = GradientBoostingRegressor(presort=True, **kw).fit(X, y)
    b = GradientBoostingRegressor(presort=False, **kw).fit(X, y)
    assert np.array_equal(a.predict(X), b.predict(X))
    assert np.array_equal(a.feature_importances_, b.feature_importances_)


def test_presort_is_a_params_knob(data):
    """presort participates in get_params, so clones inherit it."""
    X, y, _ = data
    model = DecisionTreeClassifier(presort=False)
    params = model.get_params()
    assert params["presort"] is False
    clone = DecisionTreeClassifier(**params)
    assert clone.get_params()["presort"] is False
    booster = GradientBoostingClassifier(n_estimators=2, presort=False)
    assert booster.get_params()["presort"] is False


def test_fitted_trees_are_picklable(data):
    import pickle

    X, y, _ = data
    model = GradientBoostingClassifier(n_estimators=3, max_depth=3).fit(X, y)
    clone = pickle.loads(pickle.dumps(model))
    assert np.array_equal(clone.predict(X), model.predict(X))
    tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
    clone = pickle.loads(pickle.dumps(tree))
    assert np.array_equal(clone.predict(X), tree.predict(X))
