"""Unit tests for merge-based CSR, including the merge-path search."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, FormatError, MergeCSRMatrix, merge_path_search


class TestMergePathSearch:
    def test_endpoints(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        total = csr.n_rows + csr.nnz
        rows, elems = merge_path_search(np.array([0, total]), csr.indptr)
        assert rows[0] == 0 and elems[0] == 0
        assert rows[1] == csr.n_rows and elems[1] == csr.nnz

    def test_coordinates_sum_to_diagonal(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        total = csr.n_rows + csr.nnz
        d = np.arange(0, total + 1, 7)
        rows, elems = merge_path_search(d, csr.indptr)
        np.testing.assert_array_equal(rows + elems, d)

    def test_invariant_rows_complete_before_consumed(self, small_coo):
        # A consumed row's elements must all be consumed: indptr[r] <= e.
        csr = CSRMatrix.from_coo(small_coo)
        total = csr.n_rows + csr.nnz
        d = np.arange(total + 1)
        rows, elems = merge_path_search(d, csr.indptr)
        np.testing.assert_array_less(csr.indptr[rows] - 1, elems + 1)

    def test_monotone_in_diagonal(self, skewed_coo):
        csr = CSRMatrix.from_coo(skewed_coo)
        d = np.arange(csr.n_rows + csr.nnz + 1)
        rows, elems = merge_path_search(d, csr.indptr)
        assert np.all(np.diff(rows) >= 0)
        assert np.all(np.diff(elems) >= 0)

    def test_out_of_range_diagonal_rejected(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        with pytest.raises(FormatError, match="diagonal"):
            merge_path_search(np.array([-1]), csr.indptr)


class TestBehaviour:
    @pytest.mark.parametrize("partitions", [1, 2, 3, 5, 17, 64, 501])
    def test_spmv_partition_invariance(self, rng, skewed_coo, partitions):
        m = MergeCSRMatrix.from_coo(skewed_coo, partitions=partitions)
        x = rng.standard_normal(skewed_coo.n_cols)
        np.testing.assert_allclose(m.spmv(x), skewed_coo.to_dense() @ x, atol=1e-10)

    def test_spmv_with_empty_rows(self, rng):
        coo = COOMatrix((6, 4), [1, 1, 4], [0, 3, 2], [1.0, 2.0, 3.0])
        m = MergeCSRMatrix.from_coo(coo, partitions=4)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(m.spmv(x), coo.to_dense() @ x)

    def test_one_giant_row_spanning_partitions(self, rng):
        coo = COOMatrix((2, 500), np.zeros(400, int), np.arange(400), np.ones(400))
        m = MergeCSRMatrix.from_coo(coo, partitions=16)
        y = m.spmv(np.ones(500))
        assert y[0] == pytest.approx(400.0)
        assert y[1] == 0.0

    def test_partition_coordinates_cover_work(self, small_coo):
        m = MergeCSRMatrix.from_coo(small_coo, partitions=8)
        rows, elems = m.partition_coordinates()
        assert rows.size == 9
        assert rows[-1] == m.n_rows and elems[-1] == m.nnz

    def test_shares_csr_arrays(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        m = MergeCSRMatrix(csr)
        assert m.indices is csr.indices
        assert m.data is csr.data

    def test_rejects_non_csr(self, small_coo):
        with pytest.raises(FormatError, match="wraps a CSRMatrix"):
            MergeCSRMatrix(small_coo)

    def test_rejects_nonpositive_partitions(self, small_coo):
        with pytest.raises(FormatError, match="positive"):
            MergeCSRMatrix.from_coo(small_coo, partitions=0)

    def test_empty_matrix(self):
        m = MergeCSRMatrix.from_coo(COOMatrix.empty((4, 4)))
        np.testing.assert_array_equal(m.spmv(np.ones(4)), np.zeros(4))

    def test_roundtrip(self, skewed_coo):
        back = MergeCSRMatrix.from_coo(skewed_coo).to_coo()
        np.testing.assert_allclose(back.to_dense(), skewed_coo.to_dense())
