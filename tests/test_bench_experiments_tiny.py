"""Exercise the remaining experiment functions at tiny scale."""

import math

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    from repro.bench import runner

    monkeypatch.setenv("REPRO_SCALE", "0.008")
    monkeypatch.setenv("REPRO_MAX_NNZ", "60000")
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    runner.bench_corpus.cache_clear()
    runner.bench_dataset.cache_clear()
    yield
    runner.bench_corpus.cache_clear()
    runner.bench_dataset.cache_clear()


def test_twin_matrices_gap():
    from repro.bench import twin_matrices

    twins = twin_matrices(seed=4)
    assert set(twins) == {"locality_rich", "scattered"}
    for d in twins.values():
        assert d["csr5_gflops"] > 0 and d["merge_csr_gflops"] > 0


def test_format_gflops_sweep_shape():
    from repro.bench import format_gflops_sweep
    from repro.formats import FORMAT_NAMES

    sweep = format_gflops_sweep(5)
    assert 1 <= len(sweep) <= 5
    for row in sweep.values():
        assert set(row) == set(FORMAT_NAMES)
        assert any(not math.isnan(v) for v in row.values())


def test_imp_features_table_rederived():
    from repro.bench import imp_features_table

    result = imp_features_table(
        configs=(("k40c", "single"),), cv=2, rederive=True,
        models=("decision_tree",),
    )
    acc = result[("k40c", "single")]["decision_tree"]
    assert 0.0 <= acc <= 1.0


def test_regression_rme_by_feature_set_tiny():
    from repro.bench import regression_rme_by_feature_set

    res = regression_rme_by_feature_set(
        "k40c", "single", feature_sets=("set1",), seed=1
    )
    assert res["set1"]["mlp"] >= 0
    assert res["set1"]["mlp_ensemble"] >= 0


def test_indirect_vs_direct_tiny():
    from repro.bench import indirect_vs_direct

    res = indirect_vs_direct(configs=(("k40c", "single"),), tolerances=(0.0, 0.05))
    row = res[("k40c", "single")]
    assert row["indirect_tol5"] >= row["indirect_tol0"]
    assert 0.0 <= row["xgboost_direct"] <= 1.0
