"""End-to-end integration tests: the paper's headline claims, small scale.

These assert the *shape* of the paper's findings on the session-scoped
mini-dataset (tolerant bands — the mini corpus is ~20x smaller than the
benchmark scale):

1. rich feature sets beat the 5-feature O(1) set;
2. XGBoost is at or near the best model;
3. the top-7 important features roughly match the full set;
4. the MLP-ensemble regressor reaches usable RME and enables indirect
   classification that catches up with direct selection at 5 % tolerance;
5. the same pipeline works on the second device/precision unchanged.
"""

import numpy as np
import pytest

from repro.core import (
    FormatSelector,
    IndirectClassifier,
    PerformancePredictor,
    top_k_features,
)
from repro.ml import KFold


def cv_accuracy(ds, model, feature_set, folds=4, **kwargs):
    accs = []
    for tr, te in KFold(folds, seed=13).split(len(ds)):
        sel = FormatSelector(model, feature_set=feature_set, **kwargs)
        sel.fit(ds.subset(tr))
        accs.append(sel.score(ds.subset(te)))
    return float(np.mean(accs))


@pytest.fixture(scope="module")
def ds(mini_dataset):
    return mini_dataset.drop_coo_best()


def test_feature_sets_ranking(ds):
    """Sets 1+2 give a large accuracy jump over set 1 (Tables IV->V, VII->VIII)."""
    a1 = cv_accuracy(ds, "xgboost", "set1")
    a12 = cv_accuracy(ds, "xgboost", "set12")
    assert a12 > a1 - 0.02, (a1, a12)
    assert a12 > 0.55


def test_xgboost_competitive(ds):
    """XGBoost >= decision tree (the paper's consistent finding)."""
    xgb = cv_accuracy(ds, "xgboost", "set12")
    dt = cv_accuracy(ds, "decision_tree", "set12")
    assert xgb >= dt - 0.06


def test_imp_features_close_to_full(ds):
    """Top-7 derived features ~ match the 17-feature accuracy (Table X)."""
    imp = top_k_features(ds, k=7)
    a_imp = cv_accuracy(ds, "xgboost", tuple(imp))
    a_full = cv_accuracy(ds, "xgboost", "set123")
    assert a_imp >= a_full - 0.10


def test_regression_and_indirect(ds):
    rng = np.random.default_rng(5)
    idx = rng.permutation(len(ds))
    k = len(ds) // 5
    train, test = ds.subset(idx[k:]), ds.subset(idx[:k])

    pp = PerformancePredictor("mlp_ensemble", feature_set="set123", mode="joint",
                              n_members=3, n_epochs=80)
    pp.fit(train)
    rme = pp.rme(test)
    assert rme < 0.35  # paper: ~0.10 at full scale

    ic = IndirectClassifier(pp)
    direct = FormatSelector("xgboost", feature_set="set123").fit(train).score(test)
    tol5 = ic.score(test, tolerance=0.05)
    assert tol5 >= direct - 0.15
    assert ic.score(test, tolerance=0.05) >= ic.score(test, tolerance=0.0)


def test_pipeline_on_second_device(mini_dataset_double):
    """Same code path works on P100/double (paper: model choice is
    architecture-independent)."""
    ds = mini_dataset_double.drop_coo_best()
    acc = cv_accuracy(ds, "xgboost", "set12", folds=3)
    assert acc > 0.5


def test_selector_transfers_to_fresh_matrices(ds, mini_dataset):
    """Train on the dataset, predict a brand-new matrix end to end."""
    from repro.features import FEATURE_SETS, extract_features, feature_vector
    from repro.matrices import banded

    sel = FormatSelector("xgboost", feature_set="set12").fit(ds)
    fresh = banded(3000, 3000, bandwidth=7, seed=99)
    fv = feature_vector(extract_features(fresh), FEATURE_SETS["set12"])
    fmt = sel.predict_formats(fv[None, :])[0]
    assert fmt in ds.formats
