"""Tests for the MLPs and MLP ensembles (incl. gradient check)."""

import numpy as np
import pytest

from repro.ml import (
    MLPClassifier,
    MLPEnsembleClassifier,
    MLPEnsembleRegressor,
    MLPRegressor,
    accuracy_score,
    r2_score,
)


class TestClassifier:
    def test_learns_blobs(self, rng):
        centers = rng.standard_normal((3, 4)) * 5
        y = rng.integers(0, 3, 300)
        X = centers[y] + rng.standard_normal((300, 4))
        clf = MLPClassifier(hidden_layer_sizes=(32, 16), n_epochs=60, seed=0).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.95

    def test_learns_xor(self, rng):
        X = rng.standard_normal((400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(hidden_layer_sizes=(32,), n_epochs=150, seed=1).fit(X, y)
        assert accuracy_score(y, clf.predict(X)) > 0.9

    def test_paper_topology_default(self):
        clf = MLPClassifier()
        assert clf.hidden_layer_sizes == (96, 48, 16)
        assert clf.batch_size == 16

    def test_predict_proba_valid(self, rng):
        X = rng.standard_normal((50, 3))
        y = rng.integers(0, 2, 50)
        clf = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=5).fit(X, y)
        p = clf.predict_proba(X)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(p >= 0)

    def test_deterministic_given_seed(self, rng):
        X = rng.standard_normal((60, 3))
        y = rng.integers(0, 2, 60)
        a = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=4).fit(X, y)
        b = MLPClassifier(hidden_layer_sizes=(8,), n_epochs=10, seed=4).fit(X, y)
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))

    def test_feature_count_checked(self, rng):
        X = rng.standard_normal((30, 3))
        y = rng.integers(0, 2, 30)
        clf = MLPClassifier(hidden_layer_sizes=(4,), n_epochs=2).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            clf.predict(rng.standard_normal((5, 2)))

    def test_gradient_check(self, rng):
        """Backprop gradients match finite differences."""
        clf = MLPClassifier(hidden_layer_sizes=(5,), n_epochs=1, seed=0)
        X = rng.standard_normal((8, 3))
        y = rng.integers(0, 2, 8)
        clf.n_classes_ = 2
        target = clf._prepare_targets(y)
        clf._init_weights(3, 2, np.random.default_rng(0))

        def loss():
            out = clf._forward(X)[-1]
            z = out - out.max(axis=1, keepdims=True)
            logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
            return -(target * logp).sum() / 8

        # Analytic gradient of W0[0, 0].
        acts = clf._forward(X)
        delta = clf._output_grad(acts[-1], target) / 8
        for layer in range(len(clf.weights_) - 1, 0, -1):
            delta = (delta @ clf.weights_[layer].T) * (acts[layer] > 0)
        analytic = (acts[0].T @ delta)[0, 0]

        eps = 1e-6
        clf.weights_[0][0, 0] += eps
        up = loss()
        clf.weights_[0][0, 0] -= 2 * eps
        down = loss()
        clf.weights_[0][0, 0] += eps
        numeric = (up - down) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)


class TestRegressor:
    def test_fits_linear_map(self, rng):
        X = rng.standard_normal((300, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
        reg = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=100, seed=0).fit(X, y)
        assert r2_score(y, reg.predict(X)) > 0.98

    def test_target_standardisation_helps_large_scales(self, rng):
        X = rng.standard_normal((200, 2))
        y = 1e6 * X[:, 0]  # would explode without target scaling
        reg = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=60, seed=0).fit(X, y)
        assert r2_score(y, reg.predict(X)) > 0.9

    def test_bad_epochs_rejected(self, rng):
        with pytest.raises(ValueError):
            MLPRegressor(n_epochs=0).fit(rng.standard_normal((5, 1)), np.zeros(5))


class TestEnsembles:
    def test_regressor_ensemble_at_least_as_good(self, rng):
        X = rng.standard_normal((300, 3))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        Xte = rng.standard_normal((100, 3))
        yte = np.sin(Xte[:, 0]) + 0.5 * Xte[:, 1]
        single = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=40, seed=0).fit(X, y)
        ens = MLPEnsembleRegressor(
            n_members=5, hidden_layer_sizes=(16,), n_epochs=40, seed=0
        ).fit(X, y)
        assert r2_score(yte, ens.predict(Xte)) > r2_score(yte, single.predict(Xte)) - 0.05

    def test_members_differ(self, rng):
        X = rng.standard_normal((80, 2))
        y = rng.integers(0, 2, 80)
        ens = MLPEnsembleClassifier(
            n_members=3, hidden_layer_sizes=(8,), n_epochs=5, seed=0
        ).fit(X, y)
        p0 = ens.members_[0].predict_proba(X)
        p1 = ens.members_[1].predict_proba(X)
        assert not np.allclose(p0, p1)

    def test_classifier_ensemble_predicts(self, rng):
        X = rng.standard_normal((100, 2)) + np.array([[3, 3]])
        X[:50] -= 6
        y = np.array([0] * 50 + [1] * 50)
        ens = MLPEnsembleClassifier(
            n_members=3, hidden_layer_sizes=(8,), n_epochs=30, seed=0
        ).fit(X, y)
        assert accuracy_score(y, ens.predict(X)) > 0.9

    def test_invalid_members(self, rng):
        with pytest.raises(ValueError, match="n_members"):
            MLPEnsembleRegressor(n_members=0).fit(
                rng.standard_normal((5, 1)), np.zeros(5)
            )
