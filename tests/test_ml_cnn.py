"""Tests for the density-image representation and the CNN classifier."""

import numpy as np
import pytest

from repro.features import density_image, image_dataset
from repro.formats import COOMatrix
from repro.matrices import banded, power_law
from repro.ml import SimpleCNNClassifier


class TestDensityImage:
    def test_shape_and_range(self, small_coo):
        img = density_image(small_coo, size=16)
        assert img.shape == (16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_peak_normalised(self, small_coo):
        img = density_image(small_coo, size=8)
        assert img.max() == pytest.approx(1.0)

    def test_empty_matrix_all_zero(self):
        img = density_image(COOMatrix.empty((10, 10)), size=8)
        np.testing.assert_array_equal(img, 0.0)

    def test_band_structure_visible(self):
        A = banded(400, 400, bandwidth=5, fill=1.0, seed=0)
        img = density_image(A, size=16)
        # Diagonal pixels bright, far-off-diagonal pixels dark.
        diag = np.diag(img)
        off = img[0, -1] + img[-1, 0]
        assert diag.min() > 0.5
        assert off == 0.0

    def test_dense_row_visible(self):
        row = np.zeros(500, dtype=np.int64)
        col = np.arange(500, dtype=np.int64)
        A = COOMatrix((500, 500), row, col, np.ones(500))
        img = density_image(A, size=10)
        assert img[0].min() > 0  # the top band is lit across all columns
        assert img[5].max() == 0.0

    def test_size_one(self, small_coo):
        img = density_image(small_coo, size=1)
        assert img.shape == (1, 1)
        assert img[0, 0] == 1.0

    def test_invalid_size(self, small_coo):
        with pytest.raises(ValueError, match="size"):
            density_image(small_coo, size=0)

    def test_rectangular_matrix_maps_to_square(self, rng):
        dense = (rng.random((20, 300)) < 0.1) * 1.0
        img = density_image(COOMatrix.from_dense(dense), size=12)
        assert img.shape == (12, 12)

    def test_image_dataset_stacks(self, small_coo, skewed_coo):
        X = image_dataset([small_coo, skewed_coo], size=8)
        assert X.shape == (2, 8, 8)
        assert image_dataset([], size=8).shape == (0, 8, 8)


class TestSimpleCNN:
    @pytest.fixture
    def quadrant_task(self, rng):
        n, size = 200, 16
        y = rng.integers(0, 4, n)
        X = rng.random((n, size, size)) * 0.1
        for i, c in enumerate(y):
            r0, c0 = (c // 2) * 8, (c % 2) * 8
            X[i, r0 : r0 + 8, c0 : c0 + 8] += 0.9
        return X, y

    def test_learns_quadrants(self, quadrant_task):
        X, y = quadrant_task
        cnn = SimpleCNNClassifier(filters=(4, 8), hidden=32, n_epochs=8, seed=0)
        cnn.fit(X[:160], y[:160])
        acc = (cnn.predict(X[160:]) == y[160:]).mean()
        assert acc > 0.85

    def test_distinguishes_matrix_structures(self, rng):
        """Banded vs power-law images are separable by the CNN."""
        from repro.features import density_image

        mats = []
        labels = []
        for s in range(40):
            mats.append(density_image(banded(300, 300, bandwidth=7, seed=s), 16))
            labels.append(0)
            mats.append(
                density_image(power_law(300, 300, nnz=3000, alpha=2.0, seed=s), 16)
            )
            labels.append(1)
        X = np.stack(mats)
        y = np.array(labels)
        cnn = SimpleCNNClassifier(filters=(4, 8), hidden=16, n_epochs=10, seed=1)
        cnn.fit(X[:60], y[:60])
        assert (cnn.predict(X[60:]) == y[60:]).mean() > 0.9

    def test_predict_proba_valid(self, quadrant_task):
        X, y = quadrant_task
        cnn = SimpleCNNClassifier(filters=(2, 4), hidden=8, n_epochs=2, seed=0)
        cnn.fit(X[:50], y[:50])
        p = cnn.predict_proba(X[:10])
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)
        assert p.shape == (10, 4)

    def test_deterministic(self, quadrant_task):
        X, y = quadrant_task
        a = SimpleCNNClassifier(filters=(2, 4), hidden=8, n_epochs=2, seed=5)
        b = SimpleCNNClassifier(filters=(2, 4), hidden=8, n_epochs=2, seed=5)
        np.testing.assert_allclose(
            a.fit(X[:50], y[:50]).predict_proba(X[:5]),
            b.fit(X[:50], y[:50]).predict_proba(X[:5]),
        )

    def test_rejects_bad_shapes(self, rng):
        cnn = SimpleCNNClassifier()
        with pytest.raises(ValueError, match="images"):
            cnn.fit(rng.random((10, 8, 9)), np.zeros(10, dtype=int))
        with pytest.raises(ValueError, match="sample count"):
            cnn.fit(rng.random((10, 8, 8)), np.zeros(9, dtype=int))

    def test_rejects_too_small_images(self, rng):
        cnn = SimpleCNNClassifier()
        with pytest.raises(ValueError, match="too small"):
            cnn.fit(rng.random((4, 4, 4)), np.array([0, 1, 0, 1]))

    def test_wrong_size_at_predict(self, quadrant_task, rng):
        X, y = quadrant_task
        cnn = SimpleCNNClassifier(filters=(2, 4), hidden=8, n_epochs=1, seed=0)
        cnn.fit(X[:30], y[:30])
        with pytest.raises(ValueError, match="images must be"):
            cnn.predict(rng.random((2, 20, 20)))
