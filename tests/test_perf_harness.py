"""Smoke test of the tracked perf harness (``repro-spmv perf --quick``)."""

import json

from repro.bench.perf import SCHEMA
from repro.cli import main


def test_quick_run_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main(["perf", "--quick", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert report["quick"] is True
    sections = report["sections"]
    for name in ("analysis_per_matrix", "label_per_matrix",
                 "tree_fit", "boosting_fit", "ml_inference",
                 "campaign_e2e"):
        assert name in sections, name
    for name in ("analysis_per_matrix", "label_per_matrix",
                 "tree_fit", "boosting_fit", "ml_inference"):
        assert sections[name]["speedup"] > 0
    ml = sections["ml_inference"]
    assert set(ml["batches"]) == {"1", "16", "256"}
    assert ml["compile_ms"] > 0
    assert sections["serving"]["predict_ms_histogram"]["count"] > 0
    assert sections["campaign_e2e"]["wall_s"] > 0
    assert sections["campaign_e2e"]["n_ok"] > 0
    text = capsys.readouterr().out
    assert "ml_inference" in text
    assert "boosting_fit" in text and str(out) in text
