"""ReproConfig: the single REPRO_* resolution point."""

import pytest

from repro.config import DEFAULT_REPS, ReproConfig

ENV_VARS = ("REPRO_SCALE", "REPRO_MAX_NNZ", "REPRO_SEED", "REPRO_REPS",
            "REPRO_WORKERS", "REPRO_CACHE")


@pytest.fixture
def clean_env(monkeypatch):
    for var in ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


class TestFromEnv:
    def test_defaults(self, clean_env):
        cfg = ReproConfig.from_env()
        assert cfg == ReproConfig()
        assert cfg.scale == 0.1
        assert cfg.max_nnz == 2_000_000
        assert cfg.seed == 0
        assert cfg.reps == DEFAULT_REPS
        assert cfg.workers == 1
        assert cfg.cache_dir == ".repro_cache"

    def test_env_parity(self, clean_env):
        """Every documented REPRO_* variable lands in its field."""
        clean_env.setenv("REPRO_SCALE", "0.33")
        clean_env.setenv("REPRO_MAX_NNZ", "5e5")  # historical spelling
        clean_env.setenv("REPRO_SEED", "9")
        clean_env.setenv("REPRO_REPS", "7")
        clean_env.setenv("REPRO_WORKERS", "4")
        clean_env.setenv("REPRO_CACHE", "/tmp/cache")
        cfg = ReproConfig.from_env()
        assert cfg.scale == 0.33
        assert cfg.max_nnz == 500_000
        assert cfg.seed == 9
        assert cfg.reps == 7
        assert cfg.workers == 4
        assert cfg.cache_dir == "/tmp/cache"

    def test_explicit_mapping_beats_environ(self, clean_env):
        clean_env.setenv("REPRO_SCALE", "0.5")
        cfg = ReproConfig.from_env({"REPRO_SCALE": "0.25"})
        assert cfg.scale == 0.25

    def test_workers_floor(self, clean_env):
        clean_env.setenv("REPRO_WORKERS", "0")
        assert ReproConfig.from_env().workers == 1


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"scale": 0.0},
        {"scale": -1.0},
        {"max_nnz": 0},
        {"reps": 0},
        {"workers": 0},
    ])
    def test_rejects_degenerate_values(self, kwargs):
        with pytest.raises(ValueError):
            ReproConfig(**kwargs)


class TestObjectProtocol:
    def test_frozen_and_hashable(self):
        cfg = ReproConfig()
        with pytest.raises(Exception):
            cfg.scale = 0.5
        # Hash-equal configs must key a cache to the same slot; any
        # field change keys a new one.
        assert hash(ReproConfig()) == hash(ReproConfig())
        assert ReproConfig() != ReproConfig(seed=1)

    def test_replace(self):
        cfg = ReproConfig().replace(workers=8, scale=0.2)
        assert (cfg.workers, cfg.scale) == (8, 0.2)
        assert ReproConfig().workers == 1  # original untouched

    def test_paths_and_tag(self):
        cfg = ReproConfig(cache_dir="/data/c")
        assert str(cfg.cache_path) == "/data/c"
        assert cfg.shard_dir == cfg.cache_path / "shards"
        tag = cfg.dataset_tag("k40c", "single")
        assert tag.startswith("k40c_single_") and tag.endswith(".npz")
        assert cfg.replace(seed=1).dataset_tag("k40c", "single") != tag

    def test_to_dict_is_jsonable(self):
        import json

        d = ReproConfig().to_dict()
        assert json.loads(json.dumps(d)) == d
        assert set(d) == {"scale", "max_nnz", "seed", "reps", "workers",
                          "cache_dir", "energy_weight"}


class TestCallSites:
    def test_bench_config_reads_env(self, clean_env):
        from repro.bench import runner

        clean_env.setenv("REPRO_SCALE", "0.4")
        cfg = runner.bench_config()
        assert isinstance(cfg, ReproConfig)
        assert cfg.scale == 0.4

    def test_campaign_workers_precedence(self, clean_env):
        from repro.bench.campaign import _resolve_workers

        clean_env.setenv("REPRO_WORKERS", "3")
        # explicit argument > config > environment > default
        assert _resolve_workers(5, ReproConfig(workers=2)) == 5
        assert _resolve_workers(None, ReproConfig(workers=2)) == 2
        assert _resolve_workers(None, None) == 3
        clean_env.delenv("REPRO_WORKERS")
        assert _resolve_workers(None, None) == 1
