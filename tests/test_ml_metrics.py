"""Tests for the evaluation metrics, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    relative_mean_error,
    slowdown_factors,
    slowdown_histogram,
)


class TestAccuracy:
    def test_known_values(self):
        assert accuracy_score([1, 2, 3, 4], [1, 2, 0, 4]) == 0.75

    def test_perfect_and_zero(self):
        assert accuracy_score([1, 1], [1, 1]) == 1.0
        assert accuracy_score([1, 1], [0, 0]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])


class TestConfusion:
    def test_known_matrix(self):
        c = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 0], n_classes=3)
        assert c[0, 0] == 1 and c[0, 1] == 1
        assert c[1, 1] == 1
        assert c[2, 0] == 1
        assert c.sum() == 4

    def test_diagonal_matches_accuracy(self, rng):
        y = rng.integers(0, 4, 50)
        p = rng.integers(0, 4, 50)
        c = confusion_matrix(y, p, 4)
        assert np.trace(c) / 50 == pytest.approx(accuracy_score(y, p))


class TestRME:
    def test_paper_definition(self):
        measured = np.array([1.0, 2.0])
        predicted = np.array([1.1, 1.8])
        expected = 0.5 * (0.1 / 1.0 + 0.2 / 2.0)
        assert relative_mean_error(measured, predicted) == pytest.approx(expected)

    def test_zero_for_perfect(self):
        m = np.array([0.5, 3.0])
        assert relative_mean_error(m, m) == 0.0

    def test_rejects_nonpositive_measured(self):
        with pytest.raises(ValueError, match="strictly positive"):
            relative_mean_error([0.0, 1.0], [1.0, 1.0])


class TestRegressionMetrics:
    def test_mse_mae(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == 5.0
        assert mean_absolute_error([0.0, 0.0], [1.0, 3.0]) == 2.0

    def test_r2_perfect_is_one(self, rng):
        y = rng.standard_normal(20)
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self, rng):
        y = rng.standard_normal(100)
        assert r2_score(y, np.full(100, y.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestSlowdown:
    def test_factors(self):
        times = np.array([[1.0, 2.0, 4.0], [3.0, 1.5, 6.0]])
        best = np.array([0, 1])
        pred = np.array([2, 0])
        np.testing.assert_allclose(slowdown_factors(times, best, pred), [4.0, 2.0])

    def test_correct_prediction_is_one(self):
        times = np.array([[1.0, 2.0]])
        assert slowdown_factors(times, [0], [0])[0] == 1.0

    def test_histogram_buckets(self):
        s = np.array([1.0, 1.0, 1.1, 1.3, 1.7, 2.5])
        h = slowdown_histogram(s)
        assert h["no_slowdown"] == 2
        assert h["gt_1x"] == 4
        assert h["ge_1.2x"] == 3
        assert h["ge_1.5x"] == 2
        assert h["ge_2.0x"] == 1

    def test_histogram_rejects_below_one(self):
        with pytest.raises(ValueError):
            slowdown_histogram(np.array([0.5]))

    def test_factors_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            slowdown_factors(np.zeros((2, 3)), [0], [0, 1])


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=40),
        st.integers(0, 10_000),
    )
    def test_accuracy_bounds(self, y, seed):
        rng = np.random.default_rng(seed)
        p = rng.integers(0, 6, len(y))
        a = accuracy_score(y, p)
        assert 0.0 <= a <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.01, 1e6), min_size=1, max_size=30),
        st.lists(st.floats(-1e6, 1e6), min_size=30, max_size=30),
    )
    def test_rme_nonnegative(self, measured, predicted):
        m = np.array(measured)
        p = np.array(predicted[: len(measured)])
        assert relative_mean_error(m, p) >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=30))
    def test_histogram_counts_consistent(self, slowdowns):
        h = slowdown_histogram(np.array(slowdowns))
        assert h["no_slowdown"] + h["gt_1x"] == len(slowdowns)
        assert h["gt_1x"] >= h["ge_1.2x"] >= h["ge_1.5x"] >= h["ge_2.0x"]
