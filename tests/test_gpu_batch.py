"""Batched cost-model evaluation: bit-identical to the scalar path.

The contract under test (see DESIGN.md "Batched estimation"): for every
format, device and precision, ``estimate_batch`` / ``benchmark_batch``
must reproduce the per-call scalar results *exactly* — same floats bit
for bit, same failure strings, same noise stream — so the batched sweep
is interchangeable with historical per-pair loops.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, COOMatrix
from repro.gpu import (
    DEVICES,
    KEPLER_K40C,
    KNL_7250,
    PASCAL_P100,
    VOLTA_V100,
    ProfileBatch,
    SimulationError,
    SpMVExecutor,
    estimate_batch,
    profile_matrix,
)
from repro.gpu.kernels import KERNEL_MODELS, estimate_time
from repro.matrices import banded, power_law

ALL_FORMATS = tuple(KERNEL_MODELS)
DEVICE_KEYS = ("k40c", "p100", "v100", "knl")
BREAKDOWN_FIELDS = (
    "seconds", "matrix_bytes", "x_bytes", "y_bytes", "compute_seconds",
    "launch_seconds", "imbalance", "efficiency", "flops",
)


def _empty_coo(n=10, m=10):
    z = np.array([], dtype=np.int64)
    return COOMatrix((n, m), z, z.copy(), np.array([], dtype=np.float64))


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(42)
    skew_row = np.concatenate([np.zeros(200, dtype=int),
                               rng.integers(1, 100, 300)])
    skewed = COOMatrix(
        (100, 250), skew_row, rng.integers(0, 250, 500),
        rng.standard_normal(500),
    )
    return [
        banded(500, 500, bandwidth=9, seed=0),
        power_law(300, 400, nnz=4000, seed=1),
        skewed,
        banded(40, 30, bandwidth=3, seed=2),
        _empty_coo(),
    ]


@pytest.fixture(scope="module")
def profiles(matrices):
    return [profile_matrix(m) for m in matrices]


class TestEstimateBatchEquivalence:
    @pytest.mark.parametrize("device_key", DEVICE_KEYS)
    @pytest.mark.parametrize("precision", ("single", "double"))
    def test_bit_identical_to_scalar(self, profiles, device_key, precision):
        device = DEVICES[device_key]
        batch = estimate_batch(profiles, ALL_FORMATS, device, precision)
        for i, prof in enumerate(profiles):
            for j, fmt in enumerate(batch.formats):
                try:
                    scalar = estimate_time(fmt, prof, device, precision)
                except ZeroDivisionError:
                    # Degenerate cells (e.g. HYB on an empty matrix):
                    # the batch sweep yields a non-finite estimate
                    # instead of raising mid-array.
                    assert not np.isfinite(batch.seconds[i, j])
                    continue
                got = batch.at(i, j)
                for field in BREAKDOWN_FIELDS:
                    assert getattr(got, field) == getattr(scalar, field), (
                        f"{fmt}/{device_key}/{precision} field {field}"
                    )

    def test_formats_default_to_all_kernels(self, profiles):
        batch = estimate_batch(profiles, None, KEPLER_K40C, "single")
        assert batch.formats == ALL_FORMATS
        assert batch.shape == (len(profiles), len(ALL_FORMATS))

    def test_accepts_prepacked_profile_batch(self, profiles):
        packed = ProfileBatch.from_profiles(profiles)
        a = estimate_batch(packed, ("csr",), PASCAL_P100, "double")
        b = estimate_batch(profiles, ("csr",), PASCAL_P100, "double")
        np.testing.assert_array_equal(a.seconds, b.seconds)

    def test_column_index_and_cell_lookup(self, profiles):
        batch = estimate_batch(profiles, ALL_FORMATS, VOLTA_V100, "single")
        j = batch.column("csr")
        assert j == ALL_FORMATS.index("csr")
        assert batch.at(0, "csr") == batch.at(0, j)
        with pytest.raises(ValueError):
            batch.column("csc")

    def test_unknown_format_message_matches_scalar(self, profiles):
        with pytest.raises(KeyError) as batch_err:
            estimate_batch(profiles, ("csc",), KEPLER_K40C, "single")
        with pytest.raises(KeyError) as scalar_err:
            estimate_time("csc", profiles[0], KEPLER_K40C, "single")
        assert str(batch_err.value) == str(scalar_err.value)

    def test_unknown_precision_rejected(self, profiles):
        with pytest.raises(ValueError, match="precision"):
            estimate_batch(profiles, ("csr",), KEPLER_K40C, "half")

    def test_gflops_masked_on_degenerate_cells(self, profiles):
        batch = estimate_batch(profiles, ALL_FORMATS, KEPLER_K40C, "single")
        assert np.all(np.isfinite(batch.gflops))


class TestFeasibilityParity:
    def _giant_ell(self):
        row = np.concatenate([np.zeros(2000, np.int64), np.arange(2000)])
        col = np.concatenate([np.arange(2000) * 1500, np.zeros(2000, np.int64)])
        return COOMatrix((4_000_000, 4_000_000), row, col, np.ones(4000))

    def test_oom_failure_string_matches_scalar(self):
        ex = SpMVExecutor(KEPLER_K40C, "single")
        coo = self._giant_ell()
        with pytest.raises(SimulationError) as err:
            ex.check_feasible(coo, "ell")
        batch = ProfileBatch.from_profiles([ex.profile(coo)])
        failures = ex.feasibility_batch(batch, ("ell", "csr"))[0]
        assert "csr" not in failures
        assert str(failures["ell"]) == f"{type(err.value).__name__}: {err.value}"

    def test_padding_failure_string_matches_scalar(self, matrices):
        skewed = matrices[2]
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        with pytest.raises(SimulationError) as err:
            ex.check_feasible(skewed, "ell")
        batch = ProfileBatch.from_profiles([ex.profile(skewed)])
        failures = ex.feasibility_batch(batch, ("ell",))[0]
        assert str(failures["ell"]) == f"{type(err.value).__name__}: {err.value}"

    def test_feasible_batch_is_empty_dicts(self, matrices):
        ex = SpMVExecutor(KEPLER_K40C, "single")
        batch = ProfileBatch.from_profiles(ex.profile(m) for m in matrices[:2])
        assert ex.feasibility_batch(batch, FORMAT_NAMES) == [{}, {}]


class TestBenchmarkBatchEquivalence:
    @pytest.mark.parametrize("size", (1, 2, 5))
    def test_noise_stream_matches_scalar_loop(self, matrices, size):
        batch_ex = SpMVExecutor(KEPLER_K40C, "single", seed=7)
        loop_ex = SpMVExecutor(KEPLER_K40C, "single", seed=7)
        subset = matrices[:size]
        sweeps = batch_ex.benchmark_batch(subset, formats=ALL_FORMATS, reps=9)
        for m, sweep in zip(subset, sweeps):
            for fmt in ALL_FORMATS:
                try:
                    expected = loop_ex.benchmark(m, fmt, reps=9)
                except (SimulationError, ZeroDivisionError):
                    expected = None
                assert sweep[fmt] == expected, fmt

    @pytest.mark.parametrize("device_key", DEVICE_KEYS)
    def test_parity_across_fleet_double(self, matrices, device_key):
        device = DEVICES[device_key]
        batch_ex = SpMVExecutor(device, "double", seed=3)
        loop_ex = SpMVExecutor(device, "double", seed=3)
        sweeps = batch_ex.benchmark_batch(matrices, formats=ALL_FORMATS, reps=5)
        for m, sweep in zip(matrices, sweeps):
            for fmt in ALL_FORMATS:
                try:
                    expected = loop_ex.benchmark(m, fmt, reps=5)
                except (SimulationError, ZeroDivisionError):
                    expected = None
                assert sweep[fmt] == expected, f"{fmt}/{device_key}"

    def test_zero_reps_rejected(self, matrices):
        ex = SpMVExecutor(KEPLER_K40C, "single")
        with pytest.raises(ValueError, match="reps"):
            ex.benchmark_batch(matrices[:1], reps=0)

    def test_zero_run_noise_draws_nothing(self, matrices):
        from repro.gpu import NoiseModel

        a = SpMVExecutor(KEPLER_K40C, "single", seed=5,
                         noise=NoiseModel(0.1, 0.0))
        b = SpMVExecutor(KEPLER_K40C, "single", seed=5,
                         noise=NoiseModel(0.1, 0.0))
        sweeps = a.benchmark_batch(matrices[:2], formats=("csr",), reps=4)
        # With sigma_run == 0 the rng is untouched, so both executors'
        # streams stay aligned.
        assert np.array_equal(a.rng.standard_normal(3),
                              b.rng.standard_normal(3))
        assert all(s["csr"].std_seconds == 0.0 for s in sweeps)


class TestBenchmarkAllFailures:
    def test_structured_failure_reasons(self, matrices):
        skewed = matrices[2]
        ex = SpMVExecutor(KEPLER_K40C, "single", ell_padding_limit=2.0)
        sweep = ex.benchmark_all(skewed)
        assert sweep["ell"] is None
        assert sweep["csr"] is not None
        assert sweep.failures["ell"].error == "KernelFailure"
        assert "padding" in sweep.failures["ell"].reason

    def test_empty_matrix_degenerate_hyb(self):
        ex = SpMVExecutor(KEPLER_K40C, "single")
        sweep = ex.benchmark_all(_empty_coo())
        assert sweep["hyb"] is None
        assert sweep.failures["hyb"].error == "ZeroDivisionError"
        assert sweep["coo"] is not None

    def test_sweep_is_a_format_dict(self, matrices):
        ex = SpMVExecutor(KEPLER_K40C, "single")
        sweep = ex.benchmark_all(matrices[0])
        assert set(sweep) == set(FORMAT_NAMES)
        assert sweep.failures == {}


class TestFleetDevices:
    def test_registry_covers_fleet(self):
        assert DEVICES["v100"] is VOLTA_V100
        assert DEVICES["knl"] is KNL_7250
        assert VOLTA_V100.arch == "volta"
        assert KNL_7250.arch == "manycore"

    def test_volta_outruns_pascal(self):
        assert VOLTA_V100.peak_bandwidth > PASCAL_P100.peak_bandwidth
        assert VOLTA_V100.peak_gflops("double") > PASCAL_P100.peak_gflops("double")

    def test_manycore_shape(self):
        # Chen et al.-style many-core CPU: huge L2, no fast atomics.
        assert KNL_7250.l2_bytes > VOLTA_V100.l2_bytes
        assert KNL_7250.atomic_efficiency < KEPLER_K40C.atomic_efficiency

    def test_fleet_devices_estimate_all_formats(self, profiles):
        for key in ("v100", "knl"):
            batch = estimate_batch(profiles[:2], ALL_FORMATS,
                                   DEVICES[key], "single")
            assert np.all(batch.seconds > 0)


class TestPresortDispatch:
    def test_small_fit_matches_presorted(self):
        from repro.ml import DecisionTreeClassifier
        from repro.ml.tree import PRESORT_MIN_SAMPLES

        rng = np.random.default_rng(0)
        for n in (PRESORT_MIN_SAMPLES - 1, PRESORT_MIN_SAMPLES + 1):
            X = rng.standard_normal((n, 6))
            y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
            a = DecisionTreeClassifier(max_depth=8, presort=True).fit(X, y)
            b = DecisionTreeClassifier(max_depth=8, presort=False).fit(X, y)
            np.testing.assert_array_equal(a.predict(X), b.predict(X))
            np.testing.assert_array_equal(
                a.feature_importances_, b.feature_importances_
            )
