"""Tests for the sampling-based adaptive selector (Zardoshti baseline)."""

import numpy as np
import pytest

from repro.core import SamplingSelector, sample_rows
from repro.formats import FORMAT_NAMES
from repro.gpu import KEPLER_K40C, SpMVExecutor
from repro.matrices import banded, power_law


class TestSampleRows:
    def test_fraction_one_is_identity(self, small_coo):
        s = sample_rows(small_coo, 1.0)
        assert s.shape == small_coo.shape
        assert s.nnz == small_coo.nnz

    def test_sample_shape(self, small_coo):
        s = sample_rows(small_coo, 0.25, seed=1)
        assert s.n_rows == int(np.ceil(0.25 * small_coo.n_rows))
        assert s.n_cols == small_coo.n_cols

    def test_sample_is_contiguous_block(self):
        A = banded(1000, 1000, bandwidth=3, fill=1.0, seed=0)
        s = sample_rows(A, 0.1, seed=2)
        # A contiguous row block of a band matrix is still a band.
        assert s.nnz > 0
        assert s.row_lengths().max() <= 3

    def test_deterministic(self, small_coo):
        a = sample_rows(small_coo, 0.3, seed=7)
        b = sample_rows(small_coo, 0.3, seed=7)
        np.testing.assert_array_equal(a.row, b.row)

    def test_invalid_fraction(self, small_coo):
        with pytest.raises(ValueError, match="fraction"):
            sample_rows(small_coo, 0.0)


class TestSamplingSelector:
    @pytest.fixture(scope="class")
    def executor(self):
        return SpMVExecutor(KEPLER_K40C, "single", seed=0)

    def test_probe_covers_formats(self, executor):
        A = banded(20_000, 20_000, bandwidth=8, fill=1.0, seed=1)
        sel = SamplingSelector(executor, fraction=0.1)
        probe = sel.probe(A)
        assert set(probe) == set(FORMAT_NAMES)
        assert all(t is None or t > 0 for t in probe.values())

    def test_picks_sensible_format_for_band(self, executor):
        A = banded(50_000, 50_000, bandwidth=10, fill=1.0, seed=1)
        sel = SamplingSelector(executor, fraction=0.1, seed=3)
        fmt = sel.predict_format(A)
        # A 10%-rows band sample is still a band: regular-structure
        # formats win the probe.
        assert fmt in ("ell", "csr")

    def test_agrees_with_full_measurement_often(self, executor, mini_corpus):
        sel = SamplingSelector(executor, fraction=0.2, probe_reps=5, seed=1)
        hits = 0
        total = 0
        for entry in mini_corpus.entries[:20]:
            A = entry.build()
            times = {
                f: s.seconds
                for f, s in executor.benchmark_all(A).items()
                if s is not None
            }
            best = min(times, key=times.get)
            chosen = sel.predict_format(A)
            slow = times.get(chosen, np.inf) / times[best]
            total += 1
            hits += slow < 1.25  # within 25% of optimal counts as fine
        assert hits / total > 0.5

    def test_probe_cost_positive(self, executor, small_coo):
        sel = SamplingSelector(executor, fraction=0.5)
        assert sel.probe_cost_seconds(small_coo) > 0

    def test_validation(self, executor):
        with pytest.raises(ValueError, match="fraction"):
            SamplingSelector(executor, fraction=2.0)
        with pytest.raises(ValueError, match="probe_reps"):
            SamplingSelector(executor, probe_reps=0)
