"""Tests for the L2 gather-traffic model."""

import pytest

from repro.gpu import KEPLER_K40C, PASCAL_P100, gather_traffic_bytes, profile_matrix
from repro.matrices import banded, clustered, power_law, random_uniform


def test_zero_for_empty_matrix():
    from repro.formats import COOMatrix

    prof = profile_matrix(COOMatrix.empty((10, 10)))
    assert gather_traffic_bytes(prof, KEPLER_K40C, "single") == 0.0


def test_fits_in_l2_traffic_near_compulsory():
    A = banded(2000, 2000, bandwidth=5, seed=0)  # x is 8 KB, far below L2
    prof = profile_matrix(A)
    g = prof.gather["single"]
    traffic = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    compulsory = g.unique_lines * KEPLER_K40C.cache_line_bytes
    worst_case = g.line_fetches * KEPLER_K40C.cache_line_bytes
    # Compulsory misses plus a small conflict-miss term, far from the
    # no-reuse worst case.
    assert compulsory <= traffic <= 0.25 * worst_case


def test_oversized_working_set_pays_refetches():
    # x of 4M singles = 16 MB >> K40c L2 share; scattered accesses.
    A = random_uniform(100_000, 4_000_000, nnz=800_000, seed=1)
    prof = profile_matrix(A)
    g = prof.gather["single"]
    traffic = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    assert traffic > 1.5 * g.unique_lines * KEPLER_K40C.cache_line_bytes


def test_bigger_l2_reduces_traffic():
    A = random_uniform(50_000, 800_000, nnz=600_000, seed=2)
    prof = profile_matrix(A)
    t_kepler = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    t_pascal = gather_traffic_bytes(prof, PASCAL_P100, "single")
    assert t_pascal < t_kepler


def test_locality_reduces_traffic():
    n, nnz = 60_000, 600_000
    local = profile_matrix(clustered(n, n, nnz=nnz, chunk=16, seed=3))
    scattered = profile_matrix(power_law(n, n, nnz=nnz, alpha=2.0, seed=3))
    assert gather_traffic_bytes(local, KEPLER_K40C, "single") < gather_traffic_bytes(
        scattered, KEPLER_K40C, "single"
    )


def test_locality_penalty_multiplies(small_coo):
    prof = profile_matrix(small_coo)
    base = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    penalised = gather_traffic_bytes(
        prof, KEPLER_K40C, "single", locality_penalty=1.2
    )
    assert penalised == pytest.approx(1.2 * base)


def test_penalty_clamped(small_coo):
    prof = profile_matrix(small_coo)
    low = gather_traffic_bytes(prof, KEPLER_K40C, "single", locality_penalty=0.1)
    base = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    assert low == pytest.approx(base)  # clamped to >= 1


def test_double_precision_traffic_at_least_single(small_coo):
    prof = profile_matrix(small_coo)
    s = gather_traffic_bytes(prof, KEPLER_K40C, "single")
    d = gather_traffic_bytes(prof, KEPLER_K40C, "double")
    assert d >= s
