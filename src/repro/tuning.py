"""Joint format + kernel-parameter tuning space.

The paper selects among *fixed* storage formats, but the real decision
space on a GPU is format **plus** kernel parameters: the HYB ELL/COO
split threshold, the BSR block shape, the CSR vector-kernel lane count,
the ELL rows-per-thread chunking, a width cap guarding ELL padding
blow-ups (Auto-SpMV and Stylianou & Weiland argue for lightweight
runtime selection over exactly such joint spaces; see PAPERS.md).

This module widens the repo's decision vocabulary accordingly:

* :class:`Configuration` — one point of the joint space: a format name
  plus a mapping of tuning parameters, frozen and hashable, with a
  **stable string key** (``"csr"``, ``"hyb?split=2"``,
  ``"bsr?block_shape=2x2"``).  The key of an all-default configuration
  is the bare format name, which is what keeps every existing dataset,
  noise stream and cache entry valid: the joint space is a strict
  superset of the historical format vocabulary.
* :data:`PARAMETER_GRIDS` — the per-format parameter grids the tuned
  campaign sweeps; :func:`format_grid` / :func:`tuned_space` enumerate
  them (default configuration first).
* Parameterised cost models — :func:`batch_columns` evaluates any
  configuration over a :class:`~repro.gpu.batch.ProfileBatch` with the
  same vectorised machinery as :mod:`repro.gpu.batch`; default
  configurations delegate to the registered batch kernels unchanged
  (bit-identical by construction).  Non-default parameters re-derive
  the affected geometry analytically from the profile statistics
  (HYB split tables, BSR block counts at 2x2/8x8) so no extra
  analysis pass is needed.
* Feasibility pruning — :func:`infeasible_batch` /
  :func:`check_feasible_config` extend the executor's OOM/padding
  checks with parameter-specific constraints (the ELL width cap).
* Energy proxy — :func:`energy_joules` derives a per-invocation energy
  estimate from the cost breakdown (DRAM traffic + arithmetic + static
  power), and :func:`scalarize` folds it into a multi-objective
  selection score; ``weight=0`` (the default) returns the seconds
  unchanged, so single-objective argmins are bit-identical.

The string keys flow through every layer that treats formats as opaque
names — datasets, selectors, predictors, the noise model, campaign
shards, serving caches — which is what makes the joint space an API
*extension* rather than a rewrite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ._compat import warn_deprecated
from .formats import FORMAT_NAMES
from .gpu.batch import (
    BATCH_KERNEL_MODELS,
    _BREAKDOWN_FIELDS,
    ProfileBatch,
    _assemble_batch,
    _gather_batch,
    _reduction_seconds_batch,
    format_bytes_batch,
)
from .gpu.device import DeviceSpec
from .gpu.kernels import IDX, KERNEL_MODELS, CostBreakdown, _itemsize
from .gpu.profile import MatrixProfile

__all__ = [
    "ConfigError",
    "ParamSpec",
    "Configuration",
    "PARAMETER_GRIDS",
    "format_grid",
    "configurations",
    "tuned_space",
    "default_space",
    "is_config_key",
    "is_known_key",
    "base_format",
    "coerce",
    "batch_columns",
    "estimate_config",
    "config_bytes_batch",
    "config_bytes",
    "infeasible_batch",
    "check_feasible_config",
    "energy_joules",
    "scalarize",
    "tuned_vs_default_speedup",
]


class ConfigError(ValueError):
    """Raised for malformed configurations or configuration keys."""


@dataclass(frozen=True)
class ParamSpec:
    """One tunable kernel parameter of a format.

    ``choices`` is the campaign grid, default first; ``kind`` selects
    the string codec used in configuration keys (``int``, ``float``,
    ``shape`` for ``RxC`` block shapes, ``optional_int`` for
    ``none``-able integer caps).
    """

    name: str
    default: object
    choices: Tuple
    kind: str

    def encode(self, value) -> str:
        if value is None:
            return "none"
        if self.kind == "shape":
            return "x".join(str(int(v)) for v in value)
        if self.kind == "float":
            return f"{float(value):g}"
        return str(int(value))

    def decode(self, token: str):
        try:
            if self.kind == "optional_int":
                return None if token == "none" else int(token)
            if self.kind == "shape":
                parts = tuple(int(t) for t in token.split("x"))
                if len(parts) != 2:
                    raise ValueError(token)
                return parts
            if self.kind == "float":
                return float(token)
            return int(token)
        except ValueError:
            raise ConfigError(
                f"cannot parse {token!r} as a {self.kind} value for "
                f"parameter {self.name!r}"
            ) from None

    def canonical(self, value):
        """Coerce ``value`` to the parameter's canonical type."""
        try:
            if self.kind == "optional_int":
                return None if value is None else int(value)
            if self.kind == "shape":
                r, c = value
                return (int(r), int(c))
            if self.kind == "float":
                return float(value)
            return int(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"invalid value {value!r} for parameter {self.name!r}"
            ) from None


#: Per-format tuning grids (default value first in every ``choices``).
#: Formats with an empty tuple have exactly one configuration — their
#: default — so the joint space degenerates to the paper's format-only
#: vocabulary when every grid is empty.
PARAMETER_GRIDS: Dict[str, Tuple[ParamSpec, ...]] = {
    "coo": (),
    "csr": (
        # Lanes assigned per row by the vector kernel: fewer lanes waste
        # less work on short rows but narrow the coalesced loads and the
        # warp-level reduction.
        ParamSpec("lanes", 32, (32, 16, 8), "int"),
    ),
    "ell": (
        # Rows handled by one thread: chunking amortises scheduling on
        # regular matrices, but serialises skewed rows.
        ParamSpec("rows_per_thread", 1, (1, 2, 4), "int"),
        # Hard cap on the padded width: configurations whose matrix is
        # wider are *infeasible* (pruned), not slow.
        ParamSpec("width_cap", None, (None, 512), "optional_int"),
    ),
    "hyb": (
        # Multiplier on the paper's mean-row-length split threshold
        # (k = ceil(split * nnz / n_rows)): <1 pushes work to the COO
        # spill, >1 grows the regular ELL plane.
        ParamSpec("split", 1.0, (1.0, 0.5, 2.0, 4.0), "float"),
    ),
    "csr5": (),
    "merge_csr": (),
    "dia": (),
    "bsr": (
        ParamSpec("block_shape", (4, 4), ((4, 4), (2, 2), (8, 8)), "shape"),
    ),
}


def _specs_of(fmt: str) -> Dict[str, ParamSpec]:
    try:
        return {s.name: s for s in PARAMETER_GRIDS[fmt]}
    except KeyError:
        raise ConfigError(
            f"unknown format {fmt!r}; expected one of {sorted(PARAMETER_GRIDS)}"
        ) from None


@dataclass(frozen=True)
class Configuration:
    """One point of the joint format + parameter space.

    ``params`` may be passed as a mapping or an iterable of pairs; it is
    canonicalised to a sorted tuple of ``(name, value)`` pairs holding
    only the *non-default* parameters, so two configurations describing
    the same point always compare (and hash) equal and
    ``Configuration.from_key(c.key) == c`` round-trips exactly.
    """

    format: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        specs = _specs_of(self.format)
        raw = dict(self.params.items()) if isinstance(self.params, Mapping) \
            else dict(self.params)
        canonical = []
        for name in sorted(raw):
            spec = specs.get(name)
            if spec is None:
                raise ConfigError(
                    f"format {self.format!r} has no parameter {name!r}; "
                    f"expected one of {sorted(specs) or '(none)'}"
                )
            value = spec.canonical(raw[name])
            if value != spec.default:
                canonical.append((name, value))
        object.__setattr__(self, "params", tuple(canonical))

    # -- accessors ---------------------------------------------------------

    def param(self, name: str):
        """Value of ``name`` (explicit or the format's default)."""
        for pname, value in self.params:
            if pname == name:
                return value
        spec = _specs_of(self.format).get(name)
        if spec is None:
            raise ConfigError(
                f"format {self.format!r} has no parameter {name!r}"
            )
        return spec.default

    @property
    def is_default(self) -> bool:
        """True when every parameter sits at its default."""
        return not self.params

    @property
    def non_default_params(self) -> Dict[str, object]:
        """The explicitly tuned parameters as a plain dict."""
        return dict(self.params)

    @property
    def resolved_params(self) -> Dict[str, object]:
        """Every parameter of the format, defaults filled in."""
        out = {s.name: s.default for s in PARAMETER_GRIDS[self.format]}
        out.update(self.params)
        return out

    @property
    def key(self) -> str:
        """Stable string key.

        The all-default configuration's key **is** the bare format name
        — the property that keeps historical datasets, shard keys and
        noise streams valid; non-default parameters append as a sorted
        ``?name=value&...`` query.
        """
        if not self.params:
            return self.format
        specs = _specs_of(self.format)
        query = "&".join(
            f"{name}={specs[name].encode(value)}" for name, value in self.params
        )
        return f"{self.format}?{query}"

    def as_dict(self) -> Dict:
        """JSON-able view (what serving responses put on the wire)."""
        params = {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.resolved_params.items()
        }
        return {"format": self.format, "params": params, "key": self.key}

    def __str__(self) -> str:
        return self.key

    # -- construction ------------------------------------------------------

    @classmethod
    def default(cls, fmt: str) -> "Configuration":
        """The all-default configuration of ``fmt``."""
        return cls(fmt, ())

    @classmethod
    def from_key(cls, key: str) -> "Configuration":
        """Parse a configuration key (inverse of :attr:`key`)."""
        if not isinstance(key, str):
            raise ConfigError(f"configuration key must be a string, got {key!r}")
        fmt, _, query = key.partition("?")
        specs = _specs_of(fmt)
        params = {}
        if query:
            for part in query.split("&"):
                name, sep, token = part.partition("=")
                if not sep:
                    raise ConfigError(f"malformed configuration key {key!r}")
                spec = specs.get(name)
                if spec is None:
                    raise ConfigError(
                        f"format {fmt!r} has no parameter {name!r} "
                        f"(in key {key!r})"
                    )
                params[name] = spec.decode(token)
        return cls(fmt, params)


def coerce(
    value: Union["Configuration", str, Mapping], *, context: str = ""
) -> Configuration:
    """Coerce a configuration-ish value to a :class:`Configuration`.

    Accepts a :class:`Configuration`, a string key, or a mapping with
    ``format`` (and optionally ``params``) entries.  When ``context``
    is set, a *bare format string* (no parameters) triggers a warn-once
    deprecation via :mod:`repro._compat` — the shim that keeps legacy
    format-string clients of the serving surfaces working during the
    configuration-first deprecation cycle.
    """
    if isinstance(value, Configuration):
        return value
    if isinstance(value, str):
        if context and "?" not in value:
            warn_deprecated(
                f"tuning.bare-format:{context}",
                f"passing a bare format string to {context} is deprecated; "
                "pass a Configuration (or a configuration key like "
                "'hyb?split=2') instead",
            )
        return Configuration.from_key(value)
    if isinstance(value, Mapping):
        try:
            fmt = value["format"]
        except KeyError:
            raise ConfigError(
                f"configuration mapping needs a 'format' entry: {value!r}"
            ) from None
        return Configuration(fmt, value.get("params") or {})
    raise ConfigError(
        f"cannot coerce {type(value).__name__} to a Configuration"
    )


# ---------------------------------------------------------------------------
# Space enumeration
# ---------------------------------------------------------------------------


def format_grid(fmt: str) -> Tuple[Configuration, ...]:
    """Every grid configuration of ``fmt`` (default configuration first)."""
    specs = PARAMETER_GRIDS.get(fmt)
    if specs is None:
        raise ConfigError(
            f"unknown format {fmt!r}; expected one of {sorted(PARAMETER_GRIDS)}"
        )
    out, seen = [], set()
    for combo in itertools.product(*(s.choices for s in specs)):
        config = Configuration(fmt, dict(zip((s.name for s in specs), combo)))
        if config.key not in seen:
            seen.add(config.key)
            out.append(config)
    return tuple(out)


def configurations(
    formats: Sequence[str] = FORMAT_NAMES,
) -> Tuple[Configuration, ...]:
    """The joint grid over ``formats``, format order preserved."""
    out = []
    for fmt in formats:
        out.extend(format_grid(fmt))
    return tuple(out)


def tuned_space(formats: Sequence[str] = FORMAT_NAMES) -> Tuple[str, ...]:
    """Configuration keys of the joint grid (campaign vocabulary)."""
    return tuple(c.key for c in configurations(formats))


def default_space(formats: Sequence[str] = FORMAT_NAMES) -> Tuple[str, ...]:
    """Keys of the all-default configurations (== the bare format names)."""
    return tuple(Configuration.default(fmt).key for fmt in formats)


def is_config_key(name: str) -> bool:
    """True when ``name`` carries explicit parameters (``fmt?...``)."""
    return isinstance(name, str) and "?" in name


def base_format(name: str) -> str:
    """The format component of a configuration key (identity for bare names)."""
    return name.partition("?")[0]


def is_known_key(name: str) -> bool:
    """True when ``name`` is a bare kernel-model format or parses to a
    valid configuration over one (the membership test the labeler and
    batch dispatcher use)."""
    if name in KERNEL_MODELS:
        return True
    if not is_config_key(name):
        return False
    try:
        Configuration.from_key(name)
    except ConfigError:
        return False
    return base_format(name) in KERNEL_MODELS


# ---------------------------------------------------------------------------
# Derived geometry (analytic, from existing profile statistics)
# ---------------------------------------------------------------------------
# The profile records *exact* HYB split geometry at the paper's
# mu-threshold and the exact 4x4 BSR block count.  Other parameter
# values re-derive their geometry from the recorded statistics — a
# modeling choice that keeps the frozen one-pass/two-pass analysis
# contract untouched (no new profile fields, no re-scan).


def _hyb_split_geometry(batch: ProfileBatch, split: float):
    """ELL slots / spill nnz / spill rows at ``split`` x the mu threshold.

    Anchored to the exact geometry at ``split == 1`` (``hyb_ell_nnz``,
    ``hyb_spill_nnz``, ``hyb_spill_rows``): thresholds above the anchor
    decay the spill mass exponentially with scale ``max(1, sigma)``
    (row-length tails are near-geometric for the corpus generators);
    thresholds below it interpolate the ELL mass linearly, bounded by
    the ``k * non_empty_rows`` plane capacity.
    """
    rows = batch.n_rows.astype(np.float64)
    nnz = batch.nnz.astype(np.float64)
    k1 = batch.hyb_threshold.astype(np.float64)
    e1 = batch.hyb_ell_nnz.astype(np.float64)
    s1 = batch.hyb_spill_nnz.astype(np.float64)
    r1 = batch.hyb_spill_rows.astype(np.float64)
    rows_n = rows - batch.empty_rows.astype(np.float64)

    k_m = np.zeros(len(batch))
    np.divide(nnz, rows, out=k_m, where=rows > 0)
    k_m = np.where(rows > 0, np.maximum(1.0, np.ceil(split * k_m)), 0.0)

    lam = np.maximum(1.0, batch.nnz_sigma)
    decay = np.exp(-np.maximum(k_m - k1, 0.0) / lam)
    spill_hi = s1 * decay
    rows_hi = r1 * decay

    ratio = np.ones(len(batch))
    np.divide(k_m, k1, out=ratio, where=k1 > 0)
    ell_lo = np.minimum(e1 * ratio, k_m * rows_n)
    spill_lo = nnz - ell_lo
    rows_lo = np.minimum(
        rows_n, r1 + (spill_lo - s1) / np.maximum(k_m, 1.0)
    )

    above = k_m >= k1
    spill = np.where(above, spill_hi, spill_lo)
    spill_rows = np.where(above, rows_hi, rows_lo)
    # A threshold at/above the longest row spills nothing, exactly.
    no_spill = k_m >= batch.nnz_max
    spill = np.where(no_spill, 0.0, spill)
    spill_rows = np.where(no_spill, 0.0, spill_rows)
    ell_slots = rows * np.minimum(k_m, batch.nnz_max.astype(np.float64))
    return ell_slots, spill, spill_rows


def _bsr_block_count(batch: ProfileBatch, shape: Tuple[int, int]) -> np.ndarray:
    """Occupied block count at ``shape``, derived from the exact 4x4 count.

    2x2 sub-blocks: each occupied 4x4 block holds four 2x2 cells; with
    ``e`` entries spread over it, the expected occupied fraction is
    ``1 - (3/4)**e`` (uniform placement), clipped to the combinatorial
    bounds ``[blocks4, min(nnz, 4 * blocks4)]``.  8x8 super-blocks:
    occupancy of the 8x8 grid under an independence assumption on the
    4x4 block density, clipped to ``[ceil(blocks4 / 4), blocks4]``.
    """
    b4 = batch.bsr_blocks.astype(np.float64)
    nnz = batch.nnz.astype(np.float64)
    if shape == (4, 4):
        return b4
    if shape == (2, 2):
        e = np.zeros(len(batch))
        np.divide(nnz, b4, out=e, where=b4 > 0)
        raw = b4 * 4.0 * (1.0 - 0.75 ** e)
        return np.clip(raw, b4, np.minimum(nnz, 4.0 * b4))
    if shape == (8, 8):
        cells4 = (-(-batch.n_rows // 4)) * (-(-batch.n_cols // 4))
        d4 = np.zeros(len(batch))
        np.divide(b4, cells4.astype(np.float64), out=d4, where=cells4 > 0)
        cells8 = ((-(-batch.n_rows // 8)) * (-(-batch.n_cols // 8))).astype(
            np.float64
        )
        raw = cells8 * (1.0 - (1.0 - d4) ** 4)
        return np.clip(raw, np.ceil(b4 / 4.0), b4)
    # Off-grid shapes: interpolate through the area ratio against 4x4.
    area = float(shape[0] * shape[1])
    scale = np.clip(16.0 / area, 1.0 / 4.0, 4.0)
    return np.clip(b4 * scale, np.ceil(b4 / 4.0), np.minimum(nnz, 4.0 * b4))


# ---------------------------------------------------------------------------
# Parameterised batch cost models
# ---------------------------------------------------------------------------


def _csr_config_batch(
    batch: ProfileBatch, device: DeviceSpec, precision: str, config: Configuration
):
    """CSR with a tuned vector-kernel lane count.

    Mirrors :func:`repro.gpu.batch._csr_batch` (scalar and packed
    variants untouched); ``lanes`` narrows the vector kernel: the lane
    waste on short rows shrinks proportionally, while coalescing
    efficiency drops and the warp reduction shortens with ``log2``.
    """
    lanes = config.param("lanes")
    if lanes < 1 or lanes > 32:
        raise ConfigError(f"csr lanes must be in [1, 32], got {lanes}")
    v = _itemsize(precision)
    nnz = batch.nnz
    rows = batch.n_rows
    matrix_bytes = nnz * (IDX + v) + (rows + 1) * IDX
    x_bytes = _gather_batch(batch, device, precision)
    y_bytes = rows * v

    scalar = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.30,
        imbalance=1.0 + 0.8 * (batch.warp_divergence - 1.0),
        compute_seconds=_reduction_seconds_batch(device, nnz, 1.0),
        launches=1,
    )
    frac = lanes / 32.0
    waste = 1.0 + (batch.vector_waste - 1.0) * frac
    vector = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.88 * (0.85 + 0.15 * frac),
        imbalance=1.0 + 0.45 * (waste - 1.0),
        compute_seconds=_reduction_seconds_batch(
            device, nnz + 8.0 * rows * (math.log2(lanes) / 5.0), 1.2
        ),
        launches=1,
    )
    cv = batch.row_cv
    packed = _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.82,
        imbalance=1.0 + 0.80 * np.minimum(cv, 4.0),
        compute_seconds=_reduction_seconds_batch(device, nnz * 1.1 + 8.0 * rows, 1.0),
        launches=1,
    )
    stacked = np.stack([scalar["seconds"], vector["seconds"], packed["seconds"]])
    choice = np.argmin(stacked, axis=0)
    return {
        field: np.choose(choice, [scalar[field], vector[field], packed[field]])
        for field in scalar
    }


def _ell_config_batch(
    batch: ProfileBatch, device: DeviceSpec, precision: str, config: Configuration
):
    """ELL with rows-per-thread chunking (width cap is feasibility-only).

    Chunking ``rpt`` rows into one thread saves scheduling/issue work on
    regular matrices but serialises the longest of each chunk — a
    penalty growing with the row-length coefficient of variation.  At
    ``rpt == 1`` the factor is exactly 1, so only non-default
    configurations diverge from the base model.
    """
    from .gpu.batch import _ell_batch

    cols = _ell_batch(batch, device, precision)
    rpt = config.param("rows_per_thread")
    if rpt < 1:
        raise ConfigError(f"ell rows_per_thread must be >= 1, got {rpt}")
    if rpt != 1:
        factor = (
            1.0 + 0.07 * (rpt - 1) * np.minimum(batch.row_cv, 2.0)
        ) * (1.0 - 0.04 * (rpt - 1))
        cols = dict(cols)
        cols["seconds"] = cols["seconds"] * factor
    return cols


def _hyb_config_batch(
    batch: ProfileBatch, device: DeviceSpec, precision: str, config: Configuration
):
    """HYB with a tuned split threshold (geometry re-derived per split)."""
    split = config.param("split")
    if split <= 0:
        raise ConfigError(f"hyb split must be > 0, got {split}")
    v = _itemsize(precision)
    rows = batch.n_rows
    ell_slots, spill, spill_rows = _hyb_split_geometry(batch, split)
    matrix_bytes = ell_slots * (IDX + v) + spill * (2 * IDX + v)
    x_bytes = _gather_batch(batch, device, precision)
    atomic_eff = device.atomic_efficiency
    if precision == "double" and device.arch == "kepler":
        atomic_eff *= 0.5
    y_bytes = rows * v + 2.0 * spill_rows * v / max(atomic_eff, 1e-3)
    compute = _reduction_seconds_batch(device, ell_slots * 0.8 + spill * 2.5, 1.0)
    total_elems = np.maximum(ell_slots + spill, 1)
    efficiency = (0.96 * ell_slots + 0.88 * spill) / total_elems
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=efficiency,
        imbalance=1.0,
        compute_seconds=compute,
        launches=2,
        setup_us=3.0,
    )


def _bsr_config_batch(
    batch: ProfileBatch, device: DeviceSpec, precision: str, config: Configuration
):
    """BSR with a tuned block shape (block count re-derived per shape)."""
    r, c = config.param("block_shape")
    if r < 1 or c < 1:
        raise ConfigError(f"bsr block_shape must be positive, got {(r, c)}")
    v = _itemsize(precision)
    blocks = _bsr_block_count(batch, (r, c))
    n_brows = -(-batch.n_rows // r)
    matrix_bytes = blocks * (r * c) * v + blocks * IDX + (n_brows + 1) * IDX
    x_bytes = 0.9 * _gather_batch(batch, device, precision)
    y_bytes = batch.n_rows * v
    compute = _reduction_seconds_batch(device, blocks * (r * c) * 1.0, 1.0)
    return _assemble_batch(
        batch,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.94,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=1.0,
    )


_CONFIG_BATCH_MODELS = {
    "csr": _csr_config_batch,
    "ell": _ell_config_batch,
    "hyb": _hyb_config_batch,
    "bsr": _bsr_config_batch,
}


def batch_columns(
    config: Union[Configuration, str],
    batch: ProfileBatch,
    device: DeviceSpec,
    precision: str,
):
    """Cost-model columns of one configuration over a profile batch.

    The vectorised entry point :func:`repro.gpu.batch.estimate_batch`
    dispatches here for any ``fmt?...`` key.  Default configurations
    return the registered batch kernel's columns unchanged — the
    bit-identity anchor of the whole tuning space.
    """
    config = coerce(config)
    try:
        base = BATCH_KERNEL_MODELS[config.format]
    except KeyError:
        raise ConfigError(
            f"no kernel model for format {config.format!r}"
        ) from None
    if config.is_default:
        return base(batch, device, precision)
    model = _CONFIG_BATCH_MODELS.get(config.format)
    if model is None:  # unreachable for grid configs: paramless formats
        return base(batch, device, precision)
    return model(batch, device, precision, config)


def estimate_config(
    config: Union[Configuration, str],
    profile: MatrixProfile,
    device: DeviceSpec,
    precision: str = "single",
) -> CostBreakdown:
    """Scalar estimate of one configuration (batch-of-one bridge).

    :func:`repro.gpu.kernels.estimate_time` dispatches here for
    configuration keys, so scalar and batched estimates agree by
    construction.
    """
    batch = ProfileBatch.from_profiles([profile])
    cols = batch_columns(config, batch, device, precision)
    return CostBreakdown(
        **{name: float(np.asarray(cols[name]).reshape(-1)[0])
           for name in _BREAKDOWN_FIELDS}
    )


# ---------------------------------------------------------------------------
# Footprint + feasibility
# ---------------------------------------------------------------------------


def config_bytes_batch(
    batch: ProfileBatch, config: Union[Configuration, str], precision: str
) -> np.ndarray:
    """Device footprint of a configuration per matrix (vectorised).

    Twin of :func:`repro.gpu.batch.format_bytes_batch`; parameters that
    change the stored geometry (HYB split, BSR block shape) change the
    footprint, execution-only knobs (CSR lanes, ELL rows-per-thread) do
    not.
    """
    config = coerce(config)
    v = _itemsize(precision)
    if config.is_default:
        return format_bytes_batch(batch, config.format, precision)
    if config.format == "hyb":
        ell_slots, spill, _ = _hyb_split_geometry(batch, config.param("split"))
        return ell_slots * (IDX + v) + spill * (2 * IDX + v)
    if config.format == "bsr":
        r, c = config.param("block_shape")
        blocks = _bsr_block_count(batch, (r, c))
        return blocks * (r * c) * v + blocks * IDX
    return format_bytes_batch(batch, config.format, precision)


def config_bytes(
    profile: MatrixProfile, config: Union[Configuration, str], precision: str
) -> float:
    """Scalar device footprint of one configuration."""
    batch = ProfileBatch.from_profiles([profile])
    return float(config_bytes_batch(batch, config, precision)[0])


def infeasible_batch(
    batch: ProfileBatch, config: Union[Configuration, str]
) -> Dict[int, Tuple[str, str]]:
    """Parameter-specific infeasibilities over a batch.

    Returns ``index -> (error_name, reason)`` for matrices the
    configuration cannot run regardless of memory — currently the ELL
    width cap.  The executor merges these into its feasibility sweep
    (same strings as the scalar :func:`check_feasible_config` path).
    """
    config = coerce(config)
    out: Dict[int, Tuple[str, str]] = {}
    if config.format == "ell":
        cap = config.param("width_cap")
        if cap is not None:
            bad = (batch.nnz != 0) & (batch.nnz_max > cap)
            for i in np.nonzero(bad)[0]:
                i = int(i)
                out[i] = (
                    "KernelFailure",
                    f"ELL width {int(batch.nnz_max[i])} exceeds the "
                    f"configured width cap {cap}",
                )
    return out


def check_feasible_config(
    profile: MatrixProfile, config: Union[Configuration, str]
) -> None:
    """Raise for parameter-specific infeasibilities (scalar twin)."""
    from .gpu.executor import KernelFailure

    batch = ProfileBatch.from_profiles([profile])
    failures = infeasible_batch(batch, config)
    if failures:
        _, reason = failures[0]
        raise KernelFailure(reason)


# ---------------------------------------------------------------------------
# Energy proxy + multi-objective scalarisation
# ---------------------------------------------------------------------------


def energy_joules(cost, device: DeviceSpec):
    """Energy-proxy estimate of one kernel invocation (Joules).

    Works on a scalar :class:`~repro.gpu.kernels.CostBreakdown` or a
    :class:`~repro.gpu.batch.CostBreakdownBatch` (elementwise).  Three
    terms, all first-order: DRAM traffic at ``dram_pj_per_byte``,
    useful arithmetic at ``pj_per_flop``, and static/leakage power
    integrated over the kernel duration.  Infeasible estimates
    (``seconds == inf``) yield infinite energy, so masking survives
    scalarisation.
    """
    traffic = cost.matrix_bytes + cost.x_bytes + cost.y_bytes
    dynamic = (
        traffic * device.dram_pj_per_byte + cost.flops * device.pj_per_flop
    ) * 1e-12
    return dynamic + device.static_watts * cost.seconds


def scalarize(seconds, energy, weight: float = 0.0):
    """Multi-objective selection score ``seconds^(1-w) * energy^w``.

    ``weight == 0`` returns ``seconds`` unchanged (bit-identical
    argmins — the default single-objective behaviour); ``weight == 1``
    ranks purely by the energy proxy.  The geometric blend keeps the
    score monotone in both objectives and unit-stable for argmin use.
    """
    w = float(weight)
    if not 0.0 <= w <= 1.0:
        raise ValueError(f"energy weight must be in [0, 1], got {weight!r}")
    if w == 0.0:
        return seconds
    return seconds ** (1.0 - w) * np.asarray(energy) ** w


# ---------------------------------------------------------------------------
# Reporting helpers
# ---------------------------------------------------------------------------


def tuned_vs_default_speedup(
    times: np.ndarray, formats: Sequence[str]
) -> Dict[str, float]:
    """Tuned-over-default speedup summary of a labeled campaign.

    ``times`` is the campaign's ``(N, F)`` per-configuration time
    matrix (``inf`` for failures) with columns named by ``formats``
    (configuration keys).  Compares, per matrix, the best all-default
    configuration against the best configuration overall, and returns
    the geometric-mean / max speedup plus the fraction of matrices
    where a non-default configuration wins outright.
    """
    times = np.asarray(times, dtype=np.float64)
    default_cols = [j for j, f in enumerate(formats) if "?" not in f]
    if not default_cols:
        raise ValueError("no default configurations among formats")
    best_default = np.min(times[:, default_cols], axis=1)
    best_tuned = np.min(times, axis=1)
    ok = np.isfinite(best_default) & np.isfinite(best_tuned) & (best_tuned > 0)
    ratio = best_default[ok] / best_tuned[ok]
    if ratio.size == 0:
        return {"geomean": 1.0, "max": 1.0, "tuned_wins": 0.0, "n": 0}
    return {
        "geomean": float(np.exp(np.mean(np.log(ratio)))),
        "max": float(ratio.max()),
        "tuned_wins": float(np.mean(ratio > 1.0)),
        "n": int(ratio.size),
    }
