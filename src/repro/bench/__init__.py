"""Benchmark/experiment harness regenerating the paper's evaluation.

``repro.bench`` is consumed by the pytest files under ``benchmarks/``:
:mod:`~repro.bench.runner` owns the shared (cached) datasets and scale
knobs, :mod:`~repro.bench.campaign` the parallel fault-tolerant
measurement-campaign engine behind them, :mod:`~repro.bench.experiments`
implements one function per table/figure, and
:mod:`~repro.bench.tables` renders results next to the paper's reported
numbers.
"""

from .campaign import (  # noqa: F401
    CampaignProgress,
    CampaignResult,
    MatrixResult,
    run_campaign,
)

from .experiments import (  # noqa: F401
    MODELS,
    classification_accuracy,
    classification_table,
    corpus_statistics,
    feature_importance,
    format_gflops_sweep,
    imp_features_table,
    indirect_vs_direct,
    regression_rme_by_feature_set,
    regression_rme_per_format,
    slowdown_analysis,
    twin_matrices,
)
from .loadgen import run_load  # noqa: F401
from .runner import (  # noqa: F401
    CONFIGS,
    BenchConfig,
    bench_config,
    bench_corpus,
    bench_dataset,
    bench_max_nnz,
    bench_reps,
    bench_scale,
    bench_seed,
    bench_workers,
)
from .tables import caption, format_pct, render_series, render_table  # noqa: F401

__all__ = [
    "CONFIGS",
    "MODELS",
    "BenchConfig",
    "CampaignProgress",
    "CampaignResult",
    "MatrixResult",
    "run_campaign",
    "run_load",
    "bench_config",
    "bench_corpus",
    "bench_dataset",
    "bench_scale",
    "bench_max_nnz",
    "bench_seed",
    "bench_reps",
    "bench_workers",
    "corpus_statistics",
    "twin_matrices",
    "format_gflops_sweep",
    "classification_accuracy",
    "classification_table",
    "imp_features_table",
    "feature_importance",
    "slowdown_analysis",
    "regression_rme_by_feature_set",
    "regression_rme_per_format",
    "indirect_vs_direct",
    "render_table",
    "render_series",
    "format_pct",
    "caption",
]
