"""Plain-text rendering of reproduced tables and figures.

The benchmark suite prints each experiment in the same row/column
layout the paper uses, next to the paper's reported numbers, so a
reader can eyeball the reproduction quality straight from the pytest
output (and EXPERIMENTS.md is generated from the same renderer).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["render_table", "render_series", "format_pct", "caption"]


def format_pct(value: float) -> str:
    """``0.876`` → ``"88%"`` (the paper reports whole percents)."""
    return f"{100.0 * value:.0f}%"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
) -> str:
    """Monospace table with auto-sized columns."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, points: Dict[str, float], *, unit: str = "", bar_width: int = 40
) -> str:
    """ASCII bar chart for figure-style results (RME curves, importance)."""
    if not points:
        return f"{name}: (no data)"
    peak = max(abs(v) for v in points.values()) or 1.0
    lines = [name]
    for label, value in points.items():
        bar = "#" * max(1, int(round(bar_width * abs(value) / peak)))
        lines.append(f"  {label:>14s} {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def caption(exp_id: str, paper_claim: str) -> str:
    """Standard header tying a bench to its paper artefact."""
    return f"[{exp_id}] paper: {paper_claim}"
