"""Experiment implementations for every table and figure in the paper.

Each function reproduces one evaluation artefact (see DESIGN.md's
per-experiment index) from the shared benchmark datasets.  They return
plain dictionaries/lists so the pytest benches, the EXPERIMENTS.md
generator and interactive users all consume the same code path.

The paper's evaluation protocol is followed throughout: labels from
50-rep averaged timings, the Sec. V-A COO-exclusion rule for the
classification studies, k-fold cross-validated accuracies, and 80/20
splits for the slowdown/indirect analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import (
    FormatSelector,
    IndirectClassifier,
    PerformancePredictor,
    SpMVDataset,
    feature_importance_ranking,
    slowdown_table_row,
    top_k_features,
)
from ..features import IMP_FEATURES
from ..formats import FORMAT_NAMES
from ..gpu import DEVICES, SpMVExecutor
from ..matrices import power_law, table1_statistics
from ..ml import KFold
from .runner import CONFIGS, bench_config, bench_corpus, bench_dataset

__all__ = [
    "MODELS",
    "corpus_statistics",
    "twin_matrices",
    "format_gflops_sweep",
    "classification_accuracy",
    "classification_table",
    "imp_features_table",
    "feature_importance",
    "slowdown_analysis",
    "regression_rme_by_feature_set",
    "regression_rme_per_format",
    "indirect_vs_direct",
]

#: The paper's four classification models, in its column order.
MODELS: Tuple[str, ...] = ("decision_tree", "svm", "mlp", "xgboost")


def _study_dataset(
    device_key: str, precision: str, formats: Sequence[str]
) -> SpMVDataset:
    """Dataset restricted to a format study, with the COO rule applied.

    The paper removes matrices whose 6-format winner is COO (Sec. V-A)
    before every classification experiment; for the basic 3-format
    study COO is simply not among the candidate formats.
    """
    ds = bench_dataset(device_key, precision)
    ds = ds.drop_coo_best()
    if tuple(formats) != ds.formats:
        ds = ds.restrict_formats(formats)
    return ds


# ---------------------------------------------------------------------------
# Table I + Figs. 2-3: corpus & motivation
# ---------------------------------------------------------------------------


def corpus_statistics() -> List[Dict]:
    """Table I: per-nnz-bin corpus statistics."""
    return table1_statistics(bench_corpus())


def twin_matrices(seed: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Fig. 2: two same-size matrices with different CSR5/merge GFLOPS.

    The paper's pair (``rgg_n_2_19_s0`` vs ``auto``, both ≈6.5 M nnz)
    differ in column locality, not macro shape.  We synthesise the
    analogous pair: a clustered-column matrix vs a scattered power-law
    one, identical rows/nnz, and report GFLOPS for CSR5 and merge-CSR
    on the Kepler device.
    """
    from ..matrices import clustered

    seed = bench_config().seed if seed is None else seed
    n, nnz = 150_000, 1_500_000
    local = clustered(n, n, nnz=nnz, chunk=16, seed=seed)
    scattered = power_law(n, n, nnz=nnz, alpha=1.7, seed=seed + 1)
    ex = SpMVExecutor(DEVICES["k40c"], "single", seed=seed)
    out: Dict[str, Dict[str, float]] = {}
    for name, matrix in (("locality_rich", local), ("scattered", scattered)):
        prof = ex.profile(matrix)
        out[name] = {
            "nnz": prof.nnz,
            "rows": prof.n_rows,
            "csr5_gflops": ex.benchmark(prof, "csr5").gflops,
            "merge_csr_gflops": ex.benchmark(prof, "merge_csr").gflops,
        }
    return out


def format_gflops_sweep(n_matrices: int = 12) -> Dict[str, Dict[str, float]]:
    """Fig. 3: per-format GFLOPS across sample matrices (K80c, single).

    Returns ``{matrix_name: {format: gflops or nan}}`` for a spread of
    corpus matrices, demonstrating that no single format wins
    everywhere.
    """
    corpus = bench_corpus()
    step = max(1, len(corpus.entries) // n_matrices)
    ex = SpMVExecutor(DEVICES["k80c"], "single", seed=bench_config().seed)
    out: Dict[str, Dict[str, float]] = {}
    for entry in corpus.entries[::step][:n_matrices]:
        matrix = entry.build()
        prof = ex.profile(matrix)
        row: Dict[str, float] = {}
        for fmt in FORMAT_NAMES:
            try:
                row[fmt] = ex.benchmark(prof, fmt).gflops
            except Exception:
                row[fmt] = float("nan")
        out[entry.name] = row
    return out


# ---------------------------------------------------------------------------
# Tables IV-X: classification accuracy
# ---------------------------------------------------------------------------


def classification_accuracy(
    model: str,
    device_key: str,
    precision: str,
    *,
    formats: Sequence[str] = FORMAT_NAMES,
    feature_set="set123",
    cv: int = 5,
    seed: Optional[int] = None,
) -> float:
    """Cross-validated best-format accuracy for one configuration."""
    seed = bench_config().seed if seed is None else seed
    ds = _study_dataset(device_key, precision, formats)
    folds = min(cv, len(ds))
    accs = []
    for tr, te in KFold(folds, seed=seed).split(len(ds)):
        sel = FormatSelector(model, feature_set=feature_set)
        sel.fit(ds.subset(tr))
        accs.append(sel.score(ds.subset(te)))
    return float(np.mean(accs))


def classification_table(
    *,
    formats: Sequence[str] = FORMAT_NAMES,
    feature_set="set123",
    models: Sequence[str] = MODELS,
    configs: Sequence[Tuple[str, str]] = CONFIGS,
    cv: int = 5,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """One of Tables IV-IX: accuracy per (machine, precision) × model."""
    return {
        (dev, prec): {
            m: classification_accuracy(
                m, dev, prec, formats=formats, feature_set=feature_set, cv=cv
            )
            for m in models
        }
        for dev, prec in configs
    }


def imp_features_table(
    *,
    k: int = 7,
    models: Sequence[str] = MODELS,
    configs: Sequence[Tuple[str, str]] = CONFIGS,
    cv: int = 5,
    rederive: bool = False,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Table X: accuracy with the top-``k`` important features.

    With ``rederive=True`` the subset is recomputed from this corpus's
    XGBoost importance (the paper's procedure); by default the paper's
    published 7-feature subset is used so the table is directly
    comparable.
    """
    if rederive:
        ds = _study_dataset("k40c", "single", FORMAT_NAMES)
        features: Sequence[str] = top_k_features(ds, k)
    else:
        features = IMP_FEATURES[:k]
    return classification_table(
        feature_set=tuple(features), models=models, configs=configs, cv=cv
    )


# ---------------------------------------------------------------------------
# Figs. 4-5: feature importance
# ---------------------------------------------------------------------------


def feature_importance(
    device_key: str = "k40c", precision: str = "single"
) -> List[Tuple[str, int]]:
    """Figs. 4-5: XGBoost F-score ranking of the 17 features."""
    ds = _study_dataset(device_key, precision, FORMAT_NAMES)
    return feature_importance_ranking(ds, seed=bench_config().seed)


# ---------------------------------------------------------------------------
# Tables XI-XIII: slowdown analysis
# ---------------------------------------------------------------------------


def slowdown_analysis(
    model: str,
    *,
    device_key: str = "p100",
    precision: str = "double",
    feature_sets: Sequence[str] = ("set1", "set12", "set123", "imp"),
    test_size: float = 0.2,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, int]]:
    """One of Tables XI-XIII: slowdown histograms per feature set.

    Trains on an 80/20 split of the P100/double study (the paper's
    choice) and buckets the misprediction penalties.
    """
    seed = bench_config().seed if seed is None else seed
    ds = _study_dataset(device_key, precision, FORMAT_NAMES)
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(ds))
    n_test = max(1, int(round(test_size * len(ds))))
    train, test = ds.subset(idx[n_test:]), ds.subset(idx[:n_test])
    out: Dict[str, Dict[str, int]] = {}
    for fs in feature_sets:
        sel = FormatSelector(model, feature_set=fs)
        sel.fit(train)
        out[fs] = slowdown_table_row(sel, test)
    return out


# ---------------------------------------------------------------------------
# Figs. 6-7 + Table XIV: performance modeling
# ---------------------------------------------------------------------------


def _regression_split(device_key: str, precision: str, seed: int):
    ds = _study_dataset(device_key, precision, FORMAT_NAMES)
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(ds))
    n_test = max(1, int(round(0.2 * len(ds))))
    return ds.subset(idx[n_test:]), ds.subset(idx[:n_test])


def regression_rme_by_feature_set(
    device_key: str = "k40c",
    precision: str = "double",
    *,
    feature_sets: Sequence[str] = ("set1", "set12", "set123", "imp"),
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 6: overall RME of MLP vs MLP-ensemble per feature set."""
    seed = bench_config().seed if seed is None else seed
    train, test = _regression_split(device_key, precision, seed)
    out: Dict[str, Dict[str, float]] = {}
    for fs in feature_sets:
        row = {}
        for model in ("mlp", "mlp_ensemble"):
            pp = PerformancePredictor(model, feature_set=fs, mode="joint")
            pp.fit(train)
            row[model] = pp.rme(test)
        out[fs] = row
    return out


def regression_rme_per_format(
    device_key: str = "k40c",
    precision: str = "double",
    *,
    feature_set="set123",
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Fig. 7: per-format RME of the MLP-ensemble regressor."""
    seed = bench_config().seed if seed is None else seed
    train, test = _regression_split(device_key, precision, seed)
    pp = PerformancePredictor("mlp_ensemble", feature_set=feature_set, mode="per_format")
    pp.fit(train)
    return pp.rme_per_format(test)


def indirect_vs_direct(
    *,
    configs: Sequence[Tuple[str, str]] = CONFIGS,
    tolerances: Sequence[float] = (0.0, 0.05),
    seed: Optional[int] = None,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Table XIV: XGBoost direct vs MLP-ensemble indirect classification."""
    seed = bench_config().seed if seed is None else seed
    out: Dict[Tuple[str, str], Dict[str, float]] = {}
    for dev, prec in configs:
        train, test = _regression_split(dev, prec, seed)
        sel = FormatSelector("xgboost", feature_set="set123")
        sel.fit(train)
        row = {"xgboost_direct": sel.score(test)}
        ic = IndirectClassifier(
            PerformancePredictor("mlp_ensemble", feature_set="set123", mode="joint")
        )
        ic.fit(train)
        for tol in tolerances:
            row[f"indirect_tol{int(round(100 * tol))}"] = ic.score(test, tolerance=tol)
        out[(dev, prec)] = row
    return out
