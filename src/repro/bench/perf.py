"""Tracked performance-benchmark harness (``repro-spmv perf``).

Times the hot paths this repo's growth loop watches and writes a
``BENCH_<date>.json`` at the repo root so speedups (and regressions)
leave a tracked trail:

* **analysis per matrix** — the unified one-pass analyzer
  (:func:`repro.analysis.analyze_matrix`) against the frozen two-pass
  reference (separate profile + feature scans, four ``np.unique`` full
  sorts), over a corpus sample.
* **label per matrix** — :func:`repro.core.labeling.label_matrix` end to
  end, before (explicit two-pass profile/features) vs after (the shared
  ``executor.analyze`` scan).
* **batched estimate** — the cost-model fleet sweep: a per-pair loop
  of :func:`repro.gpu.kernels.estimate_time` vs one vectorised
  :func:`repro.gpu.batch.estimate_batch` call over the same N×F
  (matrices × formats) grid.
* **tree fit / boosting fit** — ``presort=False`` (the historical
  per-node sorting implementation) vs ``presort=True`` (root presort +
  stable partition; see :mod:`repro.ml.tree`) on the repo's labeled
  dataset at the configured scale.
* **ml inference** — the compiled flat-array inference engine
  (:mod:`repro.ml.compiled`): fused ensemble traversal vs the node-graph
  reference walk at serving-shaped batch sizes (1/16/256), plus the
  one-off lowering cost.
* **serving** — model-registry save/load and end-to-end decision
  latency of :mod:`repro.serve`, both through the in-process
  :class:`~repro.serve.service.SelectionService` API and through the
  JSON-lines daemon path the ``repro-spmv serve --daemon`` CLI runs.
* **adaptive loop** — the online-learning loop's serving cost: p95
  decision latency with a live shadow candidate scoring every batch vs
  the bare service (budget: ≤10% added p95), plus candidate-training
  and promotion cycle times.
* **serving under concurrency** — the multi-client load generator
  (:mod:`repro.bench.loadgen`) against a live
  :class:`~repro.serve.server.SelectionServer` socket: ≥8 concurrent
  connections, sustained throughput, p99 round-trip latency and the
  cross-client micro-batch sizes the server actually formed.
* **obs overhead** — the :mod:`repro.obs` telemetry spine's cost, both
  the disabled fast path (the repo's ≤2% guard) and full tracing.
* **campaign end-to-end** — wall time of a tiny measurement campaign,
  the integration number everything above feeds.
* **tuning** — joint format+parameter auto-tuning headroom
  (:mod:`repro.tuning`): labels a small campaign over
  ``tuning.tuned_space()`` and reports the geometric-mean speedup of
  the per-matrix best tuned configuration over the best all-default
  format (the ``before``/``after`` columns are the mean best-default
  and best-tuned kernel times).

The *reference workload* is the repository's own default benchmark
scale (``REPRO_SCALE=0.1`` → ~219 matrices × 17 features), i.e. the
dataset the test/bench suite actually trains on.  ``--quick`` shrinks
every section to a seconds-long smoke run (same code paths, smaller
samples) for use in the verify flow.

All before/after pairs are *numerically equivalent by construction* —
the equivalence is asserted bit-for-bit by
``tests/test_analysis_equivalence.py`` and
``tests/test_ml_presort_equivalence.py``; this harness only measures.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["run_benchmarks", "main"]

SCHEMA = "repro-perf-bench/v1"


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    """Best wall time of ``repeats`` calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup(before: float, after: float) -> float:
    return before / after if after > 0 else float("inf")


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def _bench_analysis(matrices: Sequence, repeats: int) -> Dict:
    """One-pass analyzer vs the frozen two-pass reference."""
    from ..analysis import (
        analyze_matrix,
        extract_features_two_pass,
        profile_matrix_two_pass,
    )

    def before() -> None:
        for m in matrices:
            profile_matrix_two_pass(m)
            extract_features_two_pass(m)

    def after() -> None:
        for m in matrices:
            analyze_matrix(m)

    t0 = _best_of(before, repeats)
    t1 = _best_of(after, repeats)
    n = len(matrices)
    return {
        "n_matrices": n,
        "before_ms_per_matrix": 1e3 * t0 / n,
        "after_ms_per_matrix": 1e3 * t1 / n,
        "speedup": _speedup(t0, t1),
    }


def _bench_labeling(
    matrices: Sequence, names: Sequence[str], device, precision: str,
    reps: int, repeats: int,
) -> Dict:
    """label_matrix end to end, two-pass scans vs the shared analysis."""
    from ..analysis import extract_features_two_pass, profile_matrix_two_pass
    from ..core.labeling import label_matrix
    from ..gpu import SpMVExecutor

    def before() -> None:
        # The pre-refactor shape: separate profile + feature scans, then
        # label with both passed explicitly (skips executor.analyze).
        ex = SpMVExecutor(device, precision)
        for m, name in zip(matrices, names):
            prof = profile_matrix_two_pass(m)
            feats = extract_features_two_pass(m)
            label_matrix(ex, m, name=name, reps=reps, profile=prof, features=feats)

    def after() -> None:
        ex = SpMVExecutor(device, precision)
        for m, name in zip(matrices, names):
            label_matrix(ex, m, name=name, reps=reps)

    t0 = _best_of(before, repeats)
    t1 = _best_of(after, repeats)
    n = len(matrices)
    return {
        "n_matrices": n,
        "reps": reps,
        "before_ms_per_matrix": 1e3 * t0 / n,
        "after_ms_per_matrix": 1e3 * t1 / n,
        "speedup": _speedup(t0, t1),
    }


def _bench_batched_estimate(matrices: Sequence, repeats: int) -> Dict:
    """Cost-model sweep: per-pair ``estimate_time`` loop vs one batch.

    Profiling is hoisted out of both sides (the batch API takes
    profiles too), so the number isolates the model evaluation itself —
    the part ``benchmark_batch`` and campaign labeling now vectorise.
    """
    from ..gpu import DEVICES, ProfileBatch, estimate_batch, profile_matrix
    from ..gpu.kernels import KERNEL_MODELS, estimate_time

    device = DEVICES["v100"]
    n = 64
    profiles = [profile_matrix(matrices[i % len(matrices)]) for i in range(n)]
    batch = ProfileBatch.from_profiles(profiles)
    formats = tuple(KERNEL_MODELS)

    def before() -> None:
        for prof in profiles:
            for fmt in formats:
                estimate_time(fmt, prof, device, "single")

    def after() -> None:
        estimate_batch(batch, formats, device, "single")

    t0 = _best_of(before, repeats)
    t1 = _best_of(after, repeats)
    pairs = n * len(formats)
    return {
        "n_matrices": n,
        "n_formats": len(formats),
        "n_pairs": pairs,
        "before_s": t0,
        "after_s": t1,
        "before_ms_per_pair": 1e3 * t0 / pairs,
        "after_ms_per_pair": 1e3 * t1 / pairs,
        "speedup": _speedup(t0, t1),
    }


def _bench_tree_fit(X: np.ndarray, y: np.ndarray, repeats: int) -> Dict:
    """CART fit: per-node sorting (presort=False) vs root presort."""
    from ..ml import DecisionTreeClassifier

    t0 = _best_of(
        lambda: DecisionTreeClassifier(max_depth=16, presort=False).fit(X, y), repeats
    )
    t1 = _best_of(
        lambda: DecisionTreeClassifier(max_depth=16, presort=True).fit(X, y), repeats
    )
    return {
        "n_samples": int(X.shape[0]),
        "n_features": int(X.shape[1]),
        "before_s": t0,
        "after_s": t1,
        "speedup": _speedup(t0, t1),
    }


def _bench_boosting_fit(
    X: np.ndarray, y: np.ndarray, n_estimators: int, repeats: int
) -> Dict:
    """XGBoost-style fit: per-node sorting vs hoisted fit-wide presort."""
    from ..ml import GradientBoostingClassifier

    def fit(presort: bool) -> None:
        GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=6, presort=presort
        ).fit(X, y)

    t0 = _best_of(lambda: fit(False), repeats)
    t1 = _best_of(lambda: fit(True), repeats)
    return {
        "n_samples": int(X.shape[0]),
        "n_features": int(X.shape[1]),
        "n_estimators": n_estimators,
        "before_s": t0,
        "after_s": t1,
        "speedup": _speedup(t0, t1),
    }


def _bench_ml_inference(X: np.ndarray, y: np.ndarray, quick: bool,
                        repeats: int) -> Dict:
    """Compiled flat-array inference vs the node-graph reference walk.

    Fits a gradient-boosted classifier (the paper's best model family —
    also the deepest ensemble: ``n_estimators × n_classes`` trees), then
    times ``decision_function`` at serving-shaped batch sizes with the
    compiled table active vs forced onto the node path
    (:func:`repro.ml.compiled.node_path`).  Both paths are bit-identical
    by construction (asserted by ``tests/test_ml_compiled.py``); the
    one-off lowering cost is reported as ``compile_ms``.
    """
    from ..ml import GradientBoostingClassifier
    from ..ml import compiled as _compiled

    n_estimators = 10 if quick else 40
    model = GradientBoostingClassifier(n_estimators=n_estimators, max_depth=6)
    model.fit(X, y)
    compile_s = _best_of(model._compile, max(repeats, 3))
    table = model.compiled_

    rng = np.random.default_rng(0)
    batches: Dict[str, Dict] = {}
    out: Dict = {
        "n_estimators": n_estimators,
        "n_classes": int(model.n_classes_),
        "n_trees": int(table.n_trees),
        "table_nodes": int(table.n_nodes),
        "table_max_depth": int(table.max_depth),
        "compile_ms": 1e3 * compile_s,
        "batches": batches,
    }
    for size in (1, 16, 256):
        Xb = X[rng.integers(0, X.shape[0], size)]
        inner = max(1, 256 // size)

        def compiled_run() -> None:
            for _ in range(inner):
                model.decision_function(Xb)

        def node_run() -> None:
            with _compiled.node_path():
                compiled_run()

        t0 = _best_of(node_run, repeats)
        t1 = _best_of(compiled_run, repeats)
        batches[str(size)] = {
            "node_ms_per_batch": 1e3 * t0 / inner,
            "compiled_ms_per_batch": 1e3 * t1 / inner,
            "speedup": _speedup(t0, t1),
        }
        if size == 16:
            # The acceptance batch size doubles as the section headline.
            out["before_s"] = t0
            out["after_s"] = t1
            out["speedup"] = _speedup(t0, t1)
    return out


def _bench_serving(ds, matrices: Sequence, quick: bool) -> Dict:
    """Registry save/load plus end-to-end serving latency.

    Trains a small selector, round-trips it through a throwaway
    registry, then serves requests two ways: the in-process
    :class:`~repro.serve.service.SelectionService` API (cold = feature
    extraction + model, warm = decision-cache hit) and the JSON-lines
    daemon path the ``repro-spmv serve --daemon`` CLI runs.
    """
    import io
    import tempfile

    from ..core.selector import FormatSelector
    from ..features import extract_features
    from ..serve import ModelRegistry, SelectionService, serve_jsonl

    selector = FormatSelector("decision_tree", feature_set="set123").fit(ds)
    n_requests = 20 if quick else 100
    requests = [matrices[i % len(matrices)] for i in range(n_requests)]

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        start = time.perf_counter()
        registry.save(selector, "bench", dataset=ds, promote=True)
        save_s = time.perf_counter() - start
        start = time.perf_counter()
        model, _ = registry.load("bench")
        load_s = time.perf_counter() - start

        service = SelectionService(model)
        start = time.perf_counter()
        for m in requests:
            service.predict(m)
        direct_wall = time.perf_counter() - start
        snap = service.telemetry.snapshot()

        # The CLI daemon path: one JSON-lines predict request per matrix.
        daemon_service = SelectionService(model)
        lines = [
            json.dumps({"op": "predict", "features": extract_features(m)})
            for m in requests
        ]
        sink = io.StringIO()
        start = time.perf_counter()
        served = serve_jsonl(daemon_service, lines, sink)
        daemon_wall = time.perf_counter() - start

    # Separate obs-enabled pass: the serve.predict_ms histogram costs a
    # little to record, so it is sampled outside the timed runs above.
    from .. import obs

    obs.disable(reset=True)
    obs.enable()
    try:
        obs_service = SelectionService(model)
        for m in requests:
            obs_service.predict(m)
        predict_ms = obs.snapshot()["metrics"]["serve.predict_ms"]
    finally:
        obs.disable(reset=True)

    return {
        "n_requests": n_requests,
        "predict_ms_histogram": {
            k: predict_ms[k] for k in ("count", "mean", "p50", "p95", "max")
        },
        "registry_save_ms": 1e3 * save_s,
        "registry_load_ms": 1e3 * load_s,
        "direct_ms_per_request": 1e3 * direct_wall / n_requests,
        "latency_ms_p50": snap["latency_ms"]["p50"],
        "latency_ms_p95": snap["latency_ms"]["p95"],
        "feature_cache_hit_rate": snap["feature_cache"]["hit_rate"],
        "decision_cache_hit_rate": snap["decision_cache"]["hit_rate"],
        "daemon_requests_served": served,
        "daemon_ms_per_request": 1e3 * daemon_wall / n_requests,
        "wall_s": direct_wall + daemon_wall,
    }


def _bench_adaptive(ds, quick: bool) -> Dict:
    """Adaptive-loop cost: shadow-evaluation overhead + cycle timings.

    Drives the same predict→feedback traffic twice — once against a
    bare :class:`~repro.serve.service.SelectionService`, once with an
    :class:`~repro.serve.adaptive.AdaptiveController` attached and a
    live shadow candidate scoring every batch — and compares p95
    decision latency.  The loop's budget is ≤10% added p95
    (``target_added_p95_pct``); train/promote cycle times are reported
    alongside.
    """
    import tempfile

    from ..core.selector import FormatSelector
    from ..serve import (
        AdaptiveController,
        ModelRegistry,
        PromotionPolicy,
        SelectionService,
    )

    n_requests = 60 if quick else 400
    n = len(ds)
    vectors = [ds.feature_array[i % n] for i in range(n_requests)]
    observed = [
        {f: float(t) for f, t in zip(ds.formats, ds.times[i % n])}
        for i in range(n_requests)
    ]

    def drive(service) -> Dict:
        # Client-side per-predict latency: the service's own telemetry
        # stamps latency *before* the adaptive hook runs, so only the
        # caller's clock sees the shadow-scoring cost being measured.
        lat = []
        start = time.perf_counter()
        for vec, times in zip(vectors, observed):
            t0 = time.perf_counter()
            decision = service.predict(vec)
            lat.append(time.perf_counter() - t0)
            service.record_feedback(decision.request_id, times)
        wall = time.perf_counter() - start
        return {"wall_s": wall, "p95": 1e3 * float(np.percentile(lat, 95))}

    selector = FormatSelector("decision_tree", feature_set="set123").fit(ds)
    baseline = drive(SelectionService(selector))

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.save(selector, "bench", dataset=ds, promote=True)
        model, _ = registry.load("bench")
        service = SelectionService(model)
        controller = AdaptiveController(
            service,
            registry,
            "bench",
            policy=PromotionPolicy(min_samples=8, min_improvement=-1.0),
            min_train_rows=8,
            auto=False,
        )
        # Warm up enough experience for a candidate, install the shadow,
        # then measure with fresh latency telemetry so the p95 reflects
        # steady-state serving *with* shadow scoring on every batch.
        warm = min(16, n_requests)
        for vec, times in zip(vectors[:warm], observed[:warm]):
            decision = service.predict(vec)
            service.record_feedback(decision.request_id, times)
        start = time.perf_counter()
        controller.train_candidate(force=True)
        train_s = time.perf_counter() - start
        shadowed = drive(service)
        start = time.perf_counter()
        controller.promote(force=True, reason="bench")
        promote_s = time.perf_counter() - start

    added_pct = (
        100.0 * (shadowed["p95"] - baseline["p95"]) / baseline["p95"]
        if baseline["p95"] > 0 else 0.0
    )
    return {
        "n_requests": n_requests,
        "baseline_p95_ms": baseline["p95"],
        "shadow_p95_ms": shadowed["p95"],
        "added_p95_pct": added_pct,
        "target_added_p95_pct": 10.0,
        "baseline_ms_per_request": 1e3 * baseline["wall_s"] / n_requests,
        "shadow_ms_per_request": 1e3 * shadowed["wall_s"] / n_requests,
        "train_candidate_ms": 1e3 * train_s,
        "promote_ms": 1e3 * promote_s,
        "wall_s": baseline["wall_s"] + shadowed["wall_s"] + train_s,
    }


def _bench_serving_concurrent(ds, quick: bool) -> Dict:
    """Concurrent socket serving: throughput/p99 under ≥8 clients.

    Starts a :class:`~repro.serve.server.SelectionServer` on a free
    port and drives it with the multi-client load generator.  Payloads
    cycle the bench dataset's feature vectors, so concurrent clients
    mix cache hits and misses and their requests land in shared
    micro-batches (``batch_size_max > 1`` is the cross-client batching,
    observed server-side).
    """
    from ..core.selector import FormatSelector
    from ..serve import SelectionServer, SelectionService
    from .loadgen import run_load

    selector = FormatSelector("decision_tree", feature_set="set123").fit(ds)
    service = SelectionService(selector)
    server = SelectionServer(
        service, port=0, max_batch=64, batch_window_s=0.002, queue_size=1024
    )
    server.start()
    n_clients = 8 if quick else 16
    per_client = 25 if quick else 200
    payloads = [
        json.dumps({"op": "predict", "vector": row.tolist()})
        for row in ds.feature_array
    ]
    try:
        load = run_load(
            server.address, payloads,
            n_clients=n_clients, requests_per_client=per_client,
        )
    finally:
        server.shutdown(drain=True)
    snap = service.telemetry.snapshot()
    return {
        "n_clients": n_clients,
        "requests_total": load["requests_total"],
        "ok": load["ok"],
        "errors": load["errors"],
        "busy": load["busy"],
        "client_failures": load["client_failures"],
        "throughput_rps": load["throughput_rps"],
        "latency_ms_mean": load["latency_ms"]["mean"],
        "latency_ms_p50": load["latency_ms"]["p50"],
        "latency_ms_p95": load["latency_ms"]["p95"],
        "latency_ms_p99": load["latency_ms"]["p99"],
        "batch_size_max": snap["batch_size"]["max"],
        "batch_size_mean": snap["batch_size"]["mean"],
        "batches_gt1": snap["batch_size"]["gt1"],
        "decision_cache_hit_rate": snap["decision_cache"]["hit_rate"],
        "wall_s": load["wall_s"],
    }


def _bench_obs_overhead(X: np.ndarray, y: np.ndarray, quick: bool,
                        repeats: int) -> Dict:
    """Cost of the telemetry spine, disabled (the default) and enabled.

    Two views:

    * **primitive cost** — a tight loop over the three instrumentation
      shapes the hot paths use (``with obs.span(...)``, ``incr``,
      ``observe``), timed with obs disabled and enabled;
    * **workload cost** — an instrumented real fit (gradient boosting,
      which carries per-round obs calls) timed both ways, plus a
      conservative estimate of what the *disabled* checks cost it:
      every per-round site billed at the full disabled-primitive price.

    ``disabled_overhead_pct`` is the repo's ≤2% guard number.
    """
    from .. import obs
    from ..ml import GradientBoostingClassifier

    obs.disable(reset=True)
    n_calls = 50_000 if quick else 200_000

    def primitives() -> None:
        for _ in range(n_calls):
            with obs.span("bench.noop"):
                pass
            obs.incr("bench.counter")
            obs.observe("bench.hist", 1e-3)

    disabled_s = _best_of(primitives, repeats)
    obs.enable()
    try:
        enabled_s = _best_of(primitives, repeats)
    finally:
        obs.disable(reset=True)

    n_estimators = 8 if quick else 40

    def fit() -> None:
        GradientBoostingClassifier(n_estimators=n_estimators, max_depth=6).fit(X, y)

    fit_disabled = _best_of(fit, repeats)
    obs.enable()
    try:
        fit_enabled = _best_of(fit, repeats)
    finally:
        obs.disable(reset=True)

    sites = 3 * n_calls
    disabled_ns = 1e9 * disabled_s / sites
    # One boosting round per (estimator, class); each round holds the
    # instrumented sites.  Bill every round three disabled primitives —
    # an overestimate (the fit hoists the enabled() check), so the guard
    # number is an upper bound on real disabled overhead.
    rounds = n_estimators * len(np.unique(y))
    disabled_overhead_pct = 100.0 * (rounds * 3 * disabled_ns * 1e-9) / fit_disabled
    return {
        "n_primitive_calls": sites,
        "disabled_ns_per_site": disabled_ns,
        "enabled_ns_per_site": 1e9 * enabled_s / sites,
        "fit_disabled_s": fit_disabled,
        "fit_enabled_s": fit_enabled,
        "enabled_overhead_pct": 100.0 * max(0.0, fit_enabled - fit_disabled)
        / fit_disabled,
        "disabled_overhead_pct": disabled_overhead_pct,
    }


def _bench_tuning(scale: float, max_nnz: int, device) -> Dict:
    """Tuned-vs-default headroom of the joint configuration space.

    One campaign labeled over the full tuning grid suffices: the
    default baseline is read off the same dataset's all-default
    columns, so tuned and default candidates see the same matrices,
    the same structural noise draw and the same rep count — a paired
    comparison, not two runs.
    """
    from .. import tuning
    from .campaign import run_campaign
    from ..matrices import SyntheticCorpus

    corpus = SyntheticCorpus(scale=scale, seed=0, max_nnz=max_nnz)
    start = time.perf_counter()
    ds = run_campaign(
        corpus, device, "single", tuned=True, reps=10, workers=1
    ).to_dataset()
    wall = time.perf_counter() - start
    summary = tuning.tuned_vs_default_speedup(ds.times, ds.formats)
    default_cols = [j for j, f in enumerate(ds.formats) if "?" not in f]
    best_default = np.min(ds.times[:, default_cols], axis=1)
    best_tuned = np.min(ds.times, axis=1)
    return {
        "n_matrices": int(len(ds)),
        "n_configs": len(ds.formats),
        "before_s": float(np.mean(best_default)),
        "after_s": float(np.mean(best_tuned)),
        "speedup": summary["geomean"],
        "max_speedup": summary["max"],
        "tuned_wins": summary["tuned_wins"],
        "wall_s": wall,
    }


def _bench_campaign(scale: float, max_nnz: int, device) -> Dict:
    """Wall time of one tiny end-to-end measurement campaign."""
    from .campaign import run_campaign
    from ..matrices import SyntheticCorpus

    corpus = SyntheticCorpus(scale=scale, seed=0, max_nnz=max_nnz)
    start = time.perf_counter()
    result = run_campaign(corpus, device, "single", reps=10, workers=1)
    wall = time.perf_counter() - start
    return {
        "scale": scale,
        "n_matrices": len(corpus),
        "n_ok": result.n_ok,
        "wall_s": wall,
        "ms_per_matrix": 1e3 * wall / max(1, len(corpus)),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_benchmarks(quick: bool = False) -> Dict:
    """Run every section and return the report dict."""
    from .runner import bench_config
    from ..gpu import DEVICES
    from ..matrices import SyntheticCorpus

    cfg = bench_config()
    device = DEVICES["k40c"]

    # Corpus sample for the per-matrix sections.  Corpus entries are
    # ordered by size family, so stride-sampling (not truncation) keeps
    # the realistic nnz distribution — including the large tail where
    # analysis time actually concentrates.
    sample_n = 12 if quick else 96
    max_nnz = 200_000 if quick else cfg.max_nnz
    corpus = SyntheticCorpus(scale=cfg.scale, seed=cfg.seed, max_nnz=max_nnz)
    entries = list(corpus)
    entries = entries[:: max(1, len(entries) // sample_n)][:sample_n]
    matrices = [e.build() for e in entries]
    names = [e.name for e in entries]
    repeats = 1 if quick else 3

    sections: Dict[str, Dict] = {}
    sections["analysis_per_matrix"] = _bench_analysis(matrices, repeats)
    sections["label_per_matrix"] = _bench_labeling(
        matrices, names, device, "single", reps=10 if quick else 50, repeats=repeats
    )

    # The ML reference workload: the repo's labeled dataset at the
    # configured bench scale (default REPRO_SCALE=0.1 → ~219 matrices).
    from .campaign import run_campaign

    train_scale = 0.02 if quick else cfg.scale
    train_corpus = SyntheticCorpus(scale=train_scale, seed=cfg.seed, max_nnz=max_nnz)
    ds = run_campaign(
        train_corpus, device, "single", reps=10, workers=1
    ).to_dataset()
    X, y = ds.feature_array, ds.labels

    sections["batched_estimate"] = _bench_batched_estimate(matrices, repeats)
    sections["tree_fit"] = _bench_tree_fit(X, y, repeats)
    sections["boosting_fit"] = _bench_boosting_fit(
        X, y, n_estimators=8 if quick else 40, repeats=repeats
    )
    sections["ml_inference"] = _bench_ml_inference(X, y, quick, repeats)
    sections["serving"] = _bench_serving(ds, matrices, quick)
    sections["adaptive_loop"] = _bench_adaptive(ds, quick)
    sections["serving_concurrent"] = _bench_serving_concurrent(ds, quick)
    sections["obs_overhead"] = _bench_obs_overhead(X, y, quick, repeats)
    sections["campaign_e2e"] = _bench_campaign(
        0.005 if quick else 0.02, max_nnz, device
    )
    sections["tuning"] = _bench_tuning(
        0.005 if quick else 0.02, max_nnz, device
    )

    return {
        "schema": SCHEMA,
        "generated": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {
            "scale": cfg.scale,
            "train_scale": train_scale,
            "sample_matrices": len(matrices),
            "train_matrices": int(X.shape[0]),
            "max_nnz": max_nnz,
        },
        "sections": sections,
    }


def _render(report: Dict) -> str:
    lines = [
        f"perf benchmark ({'quick' if report['quick'] else 'full'}) — "
        f"python {report['python']}, numpy {report['numpy']}",
    ]
    rows: List[tuple] = []
    for name, sec in report["sections"].items():
        if "speedup" in sec:
            if "before_ms_per_matrix" in sec:
                before = f"{sec['before_ms_per_matrix']:.2f} ms"
                after = f"{sec['after_ms_per_matrix']:.2f} ms"
            else:
                before = f"{sec['before_s']:.3f} s"
                after = f"{sec['after_s']:.3f} s"
            rows.append((name, before, after, f"{sec['speedup']:.2f}x"))
        elif "throughput_rps" in sec:
            rows.append((
                name,
                f"{sec['n_clients']} clients",
                f"{sec['throughput_rps']:.0f} rps",
                f"p99 {sec['latency_ms_p99']:.2f} ms",
            ))
        elif "disabled_overhead_pct" in sec:
            rows.append((
                name,
                f"off {sec['disabled_overhead_pct']:.3f}%",
                f"on {sec['enabled_overhead_pct']:.1f}%",
                f"{sec['disabled_ns_per_site']:.0f} ns",
            ))
        else:
            rows.append((name, "-", f"{sec['wall_s']:.3f} s", "-"))
    widths = [max(len(str(r[i])) for r in rows + [("section", "before", "after", "speedup")])
              for i in range(4)]
    header = ("section", "before", "after", "speedup")
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-spmv perf",
        description="Run the tracked performance benchmarks and write BENCH_<date>.json",
    )
    parser.add_argument("--quick", action="store_true",
                        help="seconds-long smoke run (same code paths, small samples)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default: ./BENCH_<date>.json)")
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    out = args.out
    if out is None:
        out = Path.cwd() / f"BENCH_{_dt.date.today().isoformat()}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(_render(report))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
