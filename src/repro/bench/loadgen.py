"""Multi-client load generator for the concurrent serving stack.

Drives a running :class:`~repro.serve.server.SelectionServer` the way
real traffic would: ``n_clients`` threads each open their **own** TCP
connection and issue JSON-lines requests back-to-back, measuring the
wall time of every request/response round trip.  Because the clients
are genuinely concurrent, their requests land in shared micro-batches
server-side — the scenario the ROADMAP's "service for millions of
users" north star cares about, and the one the single-stream daemon
benchmark can't exercise.

The result dict (sustained throughput, latency mean/p50/p95/p99, error
and busy counts, per-client round counts) drops straight into the
``BENCH_<date>.json`` report via the ``serving_concurrent`` section of
:mod:`repro.bench.perf`.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["run_load"]


def _percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _client(
    address: Tuple[str, int],
    payloads: Sequence[str],
    n_requests: int,
    start_offset: int,
    barrier: threading.Barrier,
    timeout: float,
    out: Dict,
) -> None:
    latencies: List[float] = []
    ok = errors = busy = 0
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            fh = sock.makefile("rw", encoding="utf-8", newline="\n")
            barrier.wait(timeout=timeout)
            for i in range(n_requests):
                line = payloads[(start_offset + i) % len(payloads)]
                t0 = time.perf_counter()
                fh.write(line + "\n")
                fh.flush()
                response = json.loads(fh.readline())
                latencies.append(time.perf_counter() - t0)
                if response.get("ok"):
                    ok += 1
                elif response.get("busy"):
                    busy += 1
                else:
                    errors += 1
    except Exception as exc:  # connection refused/reset, timeout, ...
        out["failure"] = f"{type(exc).__name__}: {exc}"
    out["latencies"] = latencies
    out["ok"] = ok
    out["errors"] = errors
    out["busy"] = busy


def run_load(
    address: Tuple[str, int],
    payloads: Sequence[str],
    *,
    n_clients: int = 8,
    requests_per_client: int = 100,
    timeout: float = 30.0,
) -> Dict:
    """Hammer ``address`` with ``n_clients`` concurrent connections.

    Parameters
    ----------
    address:
        ``(host, port)`` of a running server speaking the JSON-lines
        protocol.
    payloads:
        Pre-encoded request lines (no trailing newline); each client
        cycles through them from a per-client offset, so concurrent
        clients mix distinct and shared requests like real traffic.
    n_clients / requests_per_client:
        Fleet shape.  Clients synchronise on a barrier after connecting
        so the measured window is genuinely concurrent.
    timeout:
        Per-connection socket timeout (and barrier bound), seconds.

    Returns a JSON-able dict: sustained throughput over the concurrent
    window, latency mean/p50/p95/p99 (ms), ok/error/busy counts and
    any per-client connection failures.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if not payloads:
        raise ValueError("payloads must be non-empty")
    barrier = threading.Barrier(n_clients + 1)
    results: List[Dict] = [{} for _ in range(n_clients)]
    threads = [
        threading.Thread(
            target=_client,
            args=(address, payloads, requests_per_client,
                  c * requests_per_client, barrier, timeout, results[c]),
            name=f"loadgen-{c}",
            daemon=True,
        )
        for c in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    # The generator itself is barrier party n+1: the clock starts only
    # once every client is connected and ready to fire.
    barrier.wait(timeout=timeout)
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0

    latencies = [lat for r in results for lat in r.get("latencies", [])]
    n_ok = sum(r.get("ok", 0) for r in results)
    n_err = sum(r.get("errors", 0) for r in results)
    n_busy = sum(r.get("busy", 0) for r in results)
    failures = [r["failure"] for r in results if "failure" in r]
    total = len(latencies)
    return {
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "requests_total": total,
        "ok": n_ok,
        "errors": n_err,
        "busy": n_busy,
        "client_failures": failures,
        "wall_s": wall,
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": 1e3 * float(np.mean(latencies)) if latencies else 0.0,
            "p50": 1e3 * _percentile(latencies, 50),
            "p95": 1e3 * _percentile(latencies, 95),
            "p99": 1e3 * _percentile(latencies, 99),
        },
    }
