"""Shared experiment runner for the benchmark suite.

Every table/figure bench needs the same expensive artefact: a labeled
dataset per (device, precision).  This module owns that lifecycle:

* experiment scale is configured by environment variables so the same
  bench files run in CI minutes or at full paper scale:

  - ``REPRO_SCALE``   — corpus fraction of the ~2300-matrix collection
    (default ``0.05``; the paper is ``1.0``),
  - ``REPRO_MAX_NNZ`` — per-matrix nnz cap (default ``2_000_000``),
  - ``REPRO_SEED``    — master seed (default ``0``),
  - ``REPRO_CACHE``   — dataset cache directory (default
    ``.repro_cache`` under the current directory);

* datasets are built once per process and cached both in memory and on
  disk (``.npz``), exactly as the paper reuses one measurement campaign
  for all its tables.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Tuple

from ..core import SpMVDataset, build_dataset
from ..gpu import DEVICES, DeviceSpec
from ..matrices import SyntheticCorpus

__all__ = [
    "bench_scale",
    "bench_max_nnz",
    "bench_seed",
    "bench_corpus",
    "bench_dataset",
    "CONFIGS",
]

#: The paper's four measurement configurations: (device key, precision).
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("k40c", "single"),
    ("k40c", "double"),
    ("p100", "single"),
    ("p100", "double"),
)


def bench_scale() -> float:
    """Corpus scale for benches (env ``REPRO_SCALE``, default 0.1)."""
    return float(os.environ.get("REPRO_SCALE", "0.1"))


def bench_max_nnz() -> int:
    """Per-matrix nnz cap (env ``REPRO_MAX_NNZ``, default 2e6)."""
    return int(float(os.environ.get("REPRO_MAX_NNZ", "2000000")))


def bench_seed() -> int:
    """Master seed (env ``REPRO_SEED``, default 0)."""
    return int(os.environ.get("REPRO_SEED", "0"))


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE", ".repro_cache"))


@lru_cache(maxsize=4)
def bench_corpus() -> SyntheticCorpus:
    """The benchmark corpus at the configured scale (process-cached)."""
    return SyntheticCorpus(
        scale=bench_scale(), seed=bench_seed(), max_nnz=bench_max_nnz()
    )


@lru_cache(maxsize=8)
def bench_dataset(device_key: str = "k40c", precision: str = "single") -> SpMVDataset:
    """Labeled dataset for one configuration (memory + disk cached)."""
    device: DeviceSpec = DEVICES[device_key]
    tag = (
        f"{device_key}_{precision}_s{bench_scale():g}_m{bench_max_nnz()}"
        f"_r{bench_seed()}.npz"
    )
    return build_dataset(
        bench_corpus(),
        device,
        precision,
        seed=bench_seed(),
        cache_path=_cache_dir() / tag,
    )
