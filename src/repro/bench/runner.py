"""Shared experiment runner for the benchmark suite.

Every table/figure bench needs the same expensive artefact: a labeled
dataset per (device, precision).  This module owns that lifecycle:

* experiment scale is configured by environment variables so the same
  bench files run in CI minutes or at full paper scale:

  - ``REPRO_SCALE``   — corpus fraction of the ~2300-matrix collection
    (default ``0.1``; the paper is ``1.0``),
  - ``REPRO_MAX_NNZ`` — per-matrix nnz cap (default ``2_000_000``),
  - ``REPRO_SEED``    — master seed (default ``0``),
  - ``REPRO_REPS``    — repetitions per (matrix, format) (default 50,
    the paper's protocol),
  - ``REPRO_WORKERS`` — measurement-campaign worker processes
    (default ``1``; results are bit-identical for any count),
  - ``REPRO_CACHE``   — dataset cache directory (default
    ``.repro_cache`` under the current directory; per-matrix resume
    shards live in a ``shards/`` subdirectory);

* datasets are built once per process and cached both in memory and on
  disk (``.npz``), exactly as the paper reuses one measurement campaign
  for all its tables.  The in-memory cache is keyed on the *resolved*
  environment configuration (:func:`bench_config`), so changing
  ``REPRO_SCALE``/``REPRO_MAX_NNZ``/``REPRO_SEED``/… mid-process
  transparently builds (or loads) the right dataset instead of serving
  a stale one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Tuple

from ..core import SpMVDataset, build_dataset
from ..core.labeling import DEFAULT_REPS
from ..gpu import DEVICES, DeviceSpec
from ..matrices import SyntheticCorpus

__all__ = [
    "BenchConfig",
    "bench_config",
    "bench_scale",
    "bench_max_nnz",
    "bench_seed",
    "bench_reps",
    "bench_workers",
    "bench_corpus",
    "bench_dataset",
    "CONFIGS",
]

#: The paper's four measurement configurations: (device key, precision).
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("k40c", "single"),
    ("k40c", "double"),
    ("p100", "single"),
    ("p100", "double"),
)


@dataclass(frozen=True)
class BenchConfig:
    """Resolved snapshot of the ``REPRO_*`` environment configuration.

    Hashable, so the process-level corpus/dataset caches can key on it —
    a mid-process environment change yields a different config and thus
    a fresh cache entry rather than silently stale data.
    """

    scale: float
    max_nnz: int
    seed: int
    reps: int
    workers: int
    cache_dir: str


def bench_config() -> BenchConfig:
    """Read the ``REPRO_*`` environment into an explicit config object."""
    return BenchConfig(
        scale=float(os.environ.get("REPRO_SCALE", "0.1")),
        max_nnz=int(float(os.environ.get("REPRO_MAX_NNZ", "2000000"))),
        seed=int(os.environ.get("REPRO_SEED", "0")),
        reps=int(os.environ.get("REPRO_REPS", str(DEFAULT_REPS))),
        workers=int(os.environ.get("REPRO_WORKERS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE", ".repro_cache"),
    )


def bench_scale() -> float:
    """Corpus scale for benches (env ``REPRO_SCALE``, default 0.1)."""
    return bench_config().scale


def bench_max_nnz() -> int:
    """Per-matrix nnz cap (env ``REPRO_MAX_NNZ``, default 2e6)."""
    return bench_config().max_nnz


def bench_seed() -> int:
    """Master seed (env ``REPRO_SEED``, default 0)."""
    return bench_config().seed


def bench_reps() -> int:
    """Repetitions per (matrix, format) (env ``REPRO_REPS``, default 50)."""
    return bench_config().reps


def bench_workers() -> int:
    """Campaign worker processes (env ``REPRO_WORKERS``, default 1)."""
    return bench_config().workers


@lru_cache(maxsize=4)
def _corpus_for(scale: float, seed: int, max_nnz: int) -> SyntheticCorpus:
    return SyntheticCorpus(scale=scale, seed=seed, max_nnz=max_nnz)


def bench_corpus() -> SyntheticCorpus:
    """The benchmark corpus at the configured scale (process-cached)."""
    cfg = bench_config()
    return _corpus_for(cfg.scale, cfg.seed, cfg.max_nnz)


@lru_cache(maxsize=8)
def _dataset_for(cfg: BenchConfig, device_key: str, precision: str) -> SpMVDataset:
    device: DeviceSpec = DEVICES[device_key]
    tag = (
        f"{device_key}_{precision}_s{cfg.scale:g}_m{cfg.max_nnz}"
        f"_r{cfg.seed}_n{cfg.reps}.npz"
    )
    cache_dir = Path(cfg.cache_dir)
    return build_dataset(
        _corpus_for(cfg.scale, cfg.seed, cfg.max_nnz),
        device,
        precision,
        reps=cfg.reps,
        seed=cfg.seed,
        cache_path=cache_dir / tag,
        workers=cfg.workers,
        shard_dir=cache_dir / "shards",
    )


def bench_dataset(device_key: str = "k40c", precision: str = "single") -> SpMVDataset:
    """Labeled dataset for one configuration (memory + disk cached)."""
    return _dataset_for(bench_config(), device_key, precision)


# The pre-refactor functions were lru_cached directly and the test suite
# (and downstream users) clear them between scale changes; keep that API.
bench_corpus.cache_clear = _corpus_for.cache_clear  # type: ignore[attr-defined]
bench_dataset.cache_clear = _dataset_for.cache_clear  # type: ignore[attr-defined]
