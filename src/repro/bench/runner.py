"""Shared experiment runner for the benchmark suite.

Every table/figure bench needs the same expensive artefact: a labeled
dataset per (device, precision).  This module owns that lifecycle:

* experiment scale is configured through :class:`repro.config.ReproConfig`
  — the single resolution point of the ``REPRO_*`` environment
  variables (``REPRO_SCALE``, ``REPRO_MAX_NNZ``, ``REPRO_SEED``,
  ``REPRO_REPS``, ``REPRO_WORKERS``, ``REPRO_CACHE``; see
  :mod:`repro.config` for meanings and defaults), so the same bench
  files run in CI minutes or at full paper scale;

* datasets are built once per process and cached both in memory and on
  disk (``.npz``), exactly as the paper reuses one measurement campaign
  for all its tables.  The in-memory cache is keyed on the *config
  object* (:func:`bench_config` / the ``config=`` argument), so
  changing the environment mid-process transparently builds (or loads)
  the right dataset instead of serving a stale one.

Every entry point takes an optional ``config=`` argument defaulting to
``ReproConfig.from_env()``; the historical per-field readers
(``bench_scale`` …) survive as deprecation shims.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from .._compat import deprecated
from ..config import ReproConfig
from ..core import SpMVDataset, build_dataset
from ..gpu import DEVICES, DeviceSpec
from ..matrices import SyntheticCorpus

__all__ = [
    "BenchConfig",
    "bench_config",
    "bench_scale",
    "bench_max_nnz",
    "bench_seed",
    "bench_reps",
    "bench_workers",
    "bench_corpus",
    "bench_dataset",
    "CONFIGS",
]

#: The paper's four measurement configurations: (device key, precision).
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("k40c", "single"),
    ("k40c", "double"),
    ("p100", "single"),
    ("p100", "double"),
)

#: Historical name of the resolved-environment snapshot; the unified
#: :class:`repro.config.ReproConfig` replaced it (same fields, same
#: hashability) and the alias keeps old imports working.
BenchConfig = ReproConfig


def bench_config() -> ReproConfig:
    """Resolve the ``REPRO_*`` environment into a :class:`ReproConfig`."""
    return ReproConfig.from_env()


@deprecated("ReproConfig.from_env().scale")
def bench_scale() -> float:
    """Corpus scale for benches (env ``REPRO_SCALE``, default 0.1)."""
    return bench_config().scale


@deprecated("ReproConfig.from_env().max_nnz")
def bench_max_nnz() -> int:
    """Per-matrix nnz cap (env ``REPRO_MAX_NNZ``, default 2e6)."""
    return bench_config().max_nnz


@deprecated("ReproConfig.from_env().seed")
def bench_seed() -> int:
    """Master seed (env ``REPRO_SEED``, default 0)."""
    return bench_config().seed


@deprecated("ReproConfig.from_env().reps")
def bench_reps() -> int:
    """Repetitions per (matrix, format) (env ``REPRO_REPS``, default 50)."""
    return bench_config().reps


@deprecated("ReproConfig.from_env().workers")
def bench_workers() -> int:
    """Campaign worker processes (env ``REPRO_WORKERS``, default 1)."""
    return bench_config().workers


@lru_cache(maxsize=4)
def _corpus_for(scale: float, seed: int, max_nnz: int) -> SyntheticCorpus:
    return SyntheticCorpus(scale=scale, seed=seed, max_nnz=max_nnz)


def bench_corpus(config: Optional[ReproConfig] = None) -> SyntheticCorpus:
    """The benchmark corpus at the configured scale (process-cached)."""
    cfg = config if config is not None else bench_config()
    return _corpus_for(cfg.scale, cfg.seed, cfg.max_nnz)


@lru_cache(maxsize=8)
def _dataset_for(cfg: ReproConfig, device_key: str, precision: str) -> SpMVDataset:
    device: DeviceSpec = DEVICES[device_key]
    return build_dataset(
        _corpus_for(cfg.scale, cfg.seed, cfg.max_nnz),
        device,
        precision,
        reps=cfg.reps,
        seed=cfg.seed,
        cache_path=cfg.cache_path / cfg.dataset_tag(device_key, precision),
        workers=cfg.workers,
        shard_dir=cfg.shard_dir,
    )


def bench_dataset(
    device_key: str = "k40c",
    precision: str = "single",
    config: Optional[ReproConfig] = None,
) -> SpMVDataset:
    """Labeled dataset for one configuration (memory + disk cached)."""
    cfg = config if config is not None else bench_config()
    return _dataset_for(cfg, device_key, precision)


# The pre-refactor functions were lru_cached directly and the test suite
# (and downstream users) clear them between scale changes; keep that API.
bench_corpus.cache_clear = _corpus_for.cache_clear  # type: ignore[attr-defined]
bench_dataset.cache_clear = _dataset_for.cache_clear  # type: ignore[attr-defined]
