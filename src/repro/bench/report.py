"""EXPERIMENTS.md generator: paper-vs-measured for every table/figure.

Runs the full experiment battery (reusing the on-disk dataset cache the
benchmark suite creates) and renders a Markdown report.  The repository
ships the output of one run at the default bench scale; downstream
users can regenerate at any scale:

    python -m repro.bench.report --out EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..features import IMP_FEATURES
from ..formats import FORMAT_NAMES
from . import experiments as E
from .runner import CONFIGS, bench_config

__all__ = ["generate_report", "main"]

#: Paper-reported numbers for the side-by-side columns.
PAPER_CLASSIFICATION = {
    # (table, formats, feature_set): {(dev, prec): {model: acc}}
    "IV": {
        ("k40c", "single"): {"decision_tree": .69, "svm": .62, "mlp": .68, "xgboost": .69},
        ("k40c", "double"): {"decision_tree": .69, "svm": .62, "mlp": .68, "xgboost": .70},
        ("p100", "single"): {"decision_tree": .72, "svm": .72, "mlp": .75, "xgboost": .75},
        ("p100", "double"): {"decision_tree": .72, "svm": .69, "mlp": .73, "xgboost": .74},
    },
    "V": {
        ("k40c", "single"): {"decision_tree": .89, "svm": .88, "mlp": .88, "xgboost": .91},
        ("k40c", "double"): {"decision_tree": .86, "svm": .87, "mlp": .88, "xgboost": .89},
        ("p100", "single"): {"decision_tree": .85, "svm": .89, "mlp": .87, "xgboost": .88},
        ("p100", "double"): {"decision_tree": .86, "svm": .87, "mlp": .88, "xgboost": .89},
    },
    "VI": {
        ("k40c", "single"): {"decision_tree": .87, "svm": .88, "mlp": .87, "xgboost": .91},
        ("k40c", "double"): {"decision_tree": .84, "svm": .87, "mlp": .86, "xgboost": .89},
        ("p100", "single"): {"decision_tree": .86, "svm": .88, "mlp": .86, "xgboost": .88},
        ("p100", "double"): {"decision_tree": .87, "svm": .87, "mlp": .89, "xgboost": .89},
    },
    "VII": {
        ("k40c", "single"): {"decision_tree": .60, "svm": .62, "mlp": .62, "xgboost": .67},
        ("k40c", "double"): {"decision_tree": .64, "svm": .63, "mlp": .64, "xgboost": .68},
        ("p100", "single"): {"decision_tree": .65, "svm": .65, "mlp": .67, "xgboost": .69},
        ("p100", "double"): {"decision_tree": .63, "svm": .65, "mlp": .67, "xgboost": .69},
    },
    "VIII": {
        ("k40c", "single"): {"decision_tree": .81, "svm": .83, "mlp": .83, "xgboost": .85},
        ("k40c", "double"): {"decision_tree": .81, "svm": .85, "mlp": .85, "xgboost": .88},
        ("p100", "single"): {"decision_tree": .79, "svm": .83, "mlp": .82, "xgboost": .84},
        ("p100", "double"): {"decision_tree": .81, "svm": .83, "mlp": .84, "xgboost": .86},
    },
    "IX": {
        ("k40c", "single"): {"decision_tree": .78, "svm": .83, "mlp": .83, "xgboost": .85},
        ("k40c", "double"): {"decision_tree": .82, "svm": .85, "mlp": .85, "xgboost": .88},
        ("p100", "single"): {"decision_tree": .79, "svm": .83, "mlp": .82, "xgboost": .84},
        ("p100", "double"): {"decision_tree": .79, "svm": .83, "mlp": .83, "xgboost": .85},
    },
    "X": {
        ("k40c", "single"): {"decision_tree": .79, "svm": .85, "mlp": .83, "xgboost": .85},
        ("k40c", "double"): {"decision_tree": .83, "svm": .87, "mlp": .86, "xgboost": .88},
        ("p100", "single"): {"decision_tree": .77, "svm": .83, "mlp": .83, "xgboost": .84},
        ("p100", "double"): {"decision_tree": .79, "svm": .84, "mlp": .85, "xgboost": .86},
    },
}

PAPER_TABLE14 = {
    ("k40c", "single"): {"xgboost_direct": .85, "indirect_tol0": .78, "indirect_tol5": .90},
    ("k40c", "double"): {"xgboost_direct": .88, "indirect_tol0": .86, "indirect_tol5": .92},
    ("p100", "single"): {"xgboost_direct": .84, "indirect_tol0": .77, "indirect_tol5": .89},
    ("p100", "double"): {"xgboost_direct": .86, "indirect_tol0": .78, "indirect_tol5": .87},
}


def _md_table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _classification_block(table_id: str, formats, feature_set, cv: int) -> str:
    measured = E.classification_table(
        formats=formats, feature_set=feature_set, cv=cv
    )
    paper = PAPER_CLASSIFICATION[table_id]
    rows = []
    for (dev, prec), accs in measured.items():
        p = paper[(dev, prec)]
        rows.append(
            [f"{dev}/{prec}"]
            + [f"{accs[m]:.0%} *(paper {p[m]:.0%})*" for m in E.MODELS]
        )
    return _md_table(["machine"] + list(E.MODELS), rows)


def generate_report(cv: int = 3, *, stream=None) -> str:
    """Run every experiment and return the EXPERIMENTS.md text."""
    log = stream or sys.stderr
    parts: List[str] = []
    cfg = bench_config()
    scale = cfg.scale
    parts.append(f"""# EXPERIMENTS — paper vs. measured

Generated by ``python -m repro.bench.report`` at corpus scale
**{scale:g}** (~{int(2290 * scale)} matrices; the paper uses ~2300),
``max_nnz = {cfg.max_nnz:,}``, seed {cfg.seed}, {cv}-fold CV.
Ground truth comes from the GPU execution simulator (see DESIGN.md and
docs/MODELING.md) — absolute numbers are not expected to match the
paper's testbeds; the comparison targets are *who wins, by roughly what
factor, and where the crossovers fall*.

Regenerate at full scale with
``REPRO_SCALE=1.0 REPRO_MAX_NNZ=200000000 python -m repro.bench.report``.
""")

    print("[report] Table I ...", file=log)
    rows = E.corpus_statistics()
    parts.append("## Table I — corpus characteristics\n")
    parts.append(
        "Paper: density falls from ~4.6 % to ~0.002 % with size; mean nnz/row "
        "rises; row-length sigma shows no clean pattern.\n"
    )
    parts.append(_md_table(
        ["nnz range", "count", "avg rows", "avg cols", "avg density %", "nnz_mu", "nnz_sigma"],
        [[r["range"], r["count"], f"{r['avg_rows']:.0f}", f"{r['avg_cols']:.0f}",
          f"{r['avg_density_pct']:.3f}", f"{r['avg_nnz_mu']:.1f}",
          f"{r['avg_nnz_sigma']:.1f}"] for r in rows],
    ))

    print("[report] Fig 2 ...", file=log)
    twins = E.twin_matrices()
    parts.append("\n## Fig. 2 — same macro shape, different GFLOPS\n")
    parts.append(
        "Paper: rgg_n_2_19_s0 vs auto (~6.5 M nnz each): CSR5 22 vs 18 GF, "
        "merge-CSR 21 vs 15 GF.\n"
    )
    parts.append(_md_table(
        ["matrix", "rows", "nnz", "CSR5 GF", "merge-CSR GF"],
        [[k, f"{v['rows']:,.0f}", f"{v['nnz']:,.0f}", f"{v['csr5_gflops']:.1f}",
          f"{v['merge_csr_gflops']:.1f}"] for k, v in twins.items()],
    ))

    print("[report] Fig 3 ...", file=log)
    sweep = E.format_gflops_sweep(12)
    parts.append("\n## Fig. 3 — per-format GFLOPS (K80c, single)\n")
    parts.append("Paper: 0–25 GF across matrices; no single format wins everywhere.\n")
    parts.append(_md_table(
        ["matrix"] + list(FORMAT_NAMES),
        [[name] + [("fail" if g != g else f"{g:.1f}") for g in row.values()]
         for name, row in sweep.items()],
    ))

    class_specs = [
        ("IV", "Table IV — ELL/CSR/HYB, feature set 1 (5 features)",
         ("ell", "csr", "hyb"), "set1"),
        ("V", "Table V — ELL/CSR/HYB, sets 1+2 (11 features)",
         ("ell", "csr", "hyb"), "set12"),
        ("VI", "Table VI — ELL/CSR/HYB, sets 1+2+3 (17 features)",
         ("ell", "csr", "hyb"), "set123"),
        ("VII", "Table VII — all six formats, feature set 1",
         FORMAT_NAMES, "set1"),
        ("VIII", "Table VIII — all six formats, sets 1+2",
         FORMAT_NAMES, "set12"),
        ("IX", "Table IX — all six formats, sets 1+2+3",
         FORMAT_NAMES, "set123"),
        ("X", "Table X — all six formats, top-7 'imp.' features",
         FORMAT_NAMES, tuple(IMP_FEATURES)),
    ]
    for table_id, title, formats, fs in class_specs:
        print(f"[report] Table {table_id} ...", file=log)
        parts.append(f"\n## {title}\n")
        parts.append(_classification_block(table_id, formats, fs, cv))

    print("[report] Figs 4-5 ...", file=log)
    parts.append("\n## Figs. 4–5 — XGBoost feature importance (F-score)\n")
    parts.append(
        "Paper: per-machine orderings differ, but the same top-7 features "
        f"dominate everywhere: {', '.join(IMP_FEATURES)}.\n"
    )
    for dev, prec in CONFIGS:
        ranking = E.feature_importance(dev, prec)
        top = ", ".join(f"{n} ({s})" for n, s in ranking[:7])
        parts.append(f"* **{dev}/{prec}** top-7: {top}")

    print("[report] Tables XI-XIII ...", file=log)
    parts.append("\n\n## Tables XI–XIII — misprediction slowdowns (P100, double)\n")
    parts.append(
        "Paper: with 11+ features ~97 % of test matrices see no slowdown and "
        "the ≥2× tail shrinks to ~1 case; feature set 1 leaves ~90 matrices "
        "at ≥1.2×.\n"
    )
    for model in ("svm", "mlp", "xgboost"):
        result = E.slowdown_analysis(model)
        parts.append(f"\n**{model}**\n")
        parts.append(_md_table(
            ["feature set", "no slowdown", ">1x", ">=1.2x", ">=1.5x", ">=2.0x"],
            [[fs, r["no_slowdown"], r["gt_1x"], r["ge_1.2x"], r["ge_1.5x"],
              r["ge_2.0x"]] for fs, r in result.items()],
        ))

    print("[report] Fig 6 ...", file=log)
    parts.append("\n## Fig. 6 — joint-regression RME by feature set (double)\n")
    parts.append(
        "Paper: MLP-ensemble ≤ MLP everywhere; best RME ≈ 10–12 % with rich "
        "feature sets.\n"
    )
    for dev in ("k40c", "p100"):
        res = E.regression_rme_by_feature_set(dev, "double")
        parts.append(f"\n**{dev}/double**\n")
        parts.append(_md_table(
            ["feature set", "MLP RME", "MLP-ensemble RME"],
            [[fs, f"{r['mlp']:.3f}", f"{r['mlp_ensemble']:.3f}"]
             for fs, r in res.items()],
        ))

    print("[report] Fig 7 ...", file=log)
    parts.append("\n## Fig. 7 — per-format RME, MLP ensemble (double)\n")
    parts.append(
        "Paper: every format individually predictable; CSR5 11–13 %, "
        "merge-CSR 9–11 %, CSR 8–11 %.\n"
    )
    for dev in ("k40c", "p100"):
        res = E.regression_rme_per_format(dev, "double")
        parts.append(f"\n**{dev}/double**\n")
        parts.append(_md_table(
            ["format", "RME"],
            [[f, f"{res[f]:.3f}"] for f in FORMAT_NAMES],
        ))

    print("[report] Table XIV ...", file=log)
    parts.append("\n## Table XIV — direct vs indirect classification\n")
    parts.append(
        "Paper: indirect loses 2–8 points at 0 % tolerance but matches or "
        "beats direct XGBoost at 5 % (e.g. 92 % vs 88 % on K80c double).\n"
    )
    result = E.indirect_vs_direct()
    rows = []
    for (dev, prec), r in result.items():
        p = PAPER_TABLE14[(dev, prec)]
        rows.append([
            f"{dev}/{prec}",
            f"{r['xgboost_direct']:.0%} *(paper {p['xgboost_direct']:.0%})*",
            f"{r['indirect_tol0']:.0%} *(paper {p['indirect_tol0']:.0%})*",
            f"{r['indirect_tol5']:.0%} *(paper {p['indirect_tol5']:.0%})*",
        ])
    parts.append(_md_table(
        ["machine", "XGBoost direct", "indirect 0% tol", "indirect 5% tol"], rows
    ))

    parts.append("""

## Reading the comparison

* **Shapes that reproduce:** the large set-1 → set-1+2 accuracy jump;
  set 3 adding nothing on top; XGBoost best-or-near-best in every cell;
  the same top-7 features across machines and precisions (with
  `nnzb_tot` among them); the MLP ensemble beating the single MLP;
  slowdown tails collapsing once set 2 is available; indirect
  classification catching direct selection at a 5 % tolerance band.
* **Known deviations:** absolute accuracies at CI scale sit a few
  points below the paper (a tenth of the training data); the simulated
  corpus lacks the paper's ≥5M-nnz giants at default ``max_nnz``, which
  is where merge-CSR collects most of its wins; regression RME is
  better than the paper's ~10 % because an analytical simulator is
  smoother than real hardware even with calibrated noise.
* Ablation benches (``benchmarks/test_ablation_*.py``) cover the COO
  exclusion rule, tolerance sweeps, ensemble sizes, label-noise
  robustness, HYB threshold policies, the DIA/BSR extended study, the
  CNN image selector and the adaptive sampling baseline.
""")
    return "\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--cv", type=int, default=3)
    args = parser.parse_args(argv)
    text = generate_report(cv=args.cv)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
