"""Parallel, fault-tolerant, resumable measurement campaigns.

The paper's ground truth is one expensive measurement campaign — every
(matrix, format) pair of a ~2300-matrix corpus, 50 repetitions each,
per (device, precision) — that all tables and figures reuse (Sec.
IV-B).  :func:`run_campaign` is the engine that runs it:

* **parallel** — the per-matrix labeling loop fans out over a
  ``concurrent.futures`` process pool (``workers`` > 1); each matrix is
  labeled by its own executor seeded from a per-matrix derived seed, so
  the result is bit-identical regardless of worker count or completion
  order;
* **resumable** — with ``shard_dir`` set, every finished matrix is
  persisted as a small JSON shard under a content key covering the
  matrix recipe *and* the campaign parameters (device, precision,
  formats, reps, seed, noise).  An interrupted campaign re-run with the
  same parameters reloads finished shards instead of re-measuring;
* **fault-tolerant** — any per-matrix error (generator failure, every
  format failing, a crashed or hung worker) records a failure reason
  and moves on, mirroring the paper dropping ~400 of its 2700 matrices,
  instead of aborting the whole campaign;
* **observable** — a ``progress`` callback receives a
  :class:`CampaignProgress` event after every matrix (done counts,
  failures, ETA, per-format running mean times), and when
  :mod:`repro.obs` is enabled the engine reports into the shared
  telemetry spine: a ``campaign.run`` span (with per-matrix child
  spans in serial mode), a ``campaign.matrix_seconds`` histogram,
  ok/failed/cached counters, a worker-utilisation gauge and
  ``campaign.progress`` events on the attached sink.

:func:`repro.core.dataset.build_dataset` is a thin wrapper over this
engine, so every consumer of labeled datasets picks it up unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..config import ReproConfig
from ..core.labeling import DEFAULT_REPS, label_matrix
from ..features import ALL_FEATURES
from ..formats import FORMAT_NAMES
from ..gpu import DeviceSpec, NoiseModel, SpMVExecutor
from ..matrices import CorpusEntry

__all__ = [
    "CampaignProgress",
    "CampaignResult",
    "MatrixResult",
    "derive_matrix_seed",
    "run_campaign",
    "shard_key",
]

#: Bump when the shard schema or the labeling semantics change; stale
#: shards are ignored and re-measured.
SHARD_VERSION = 1

#: Default number of workers when neither the ``workers`` argument nor
#: ``REPRO_WORKERS`` is set.
_DEFAULT_WORKERS = 1


# ---------------------------------------------------------------------------
# Seeds and content keys
# ---------------------------------------------------------------------------


def derive_matrix_seed(master_seed: int, name: str) -> int:
    """Stable per-matrix seed derived from the campaign master seed.

    Every matrix gets its own jitter stream, so labeling order and
    worker count cannot change any measurement (serial and parallel
    campaigns are bit-identical).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(master_seed).to_bytes(8, "little", signed=True))
    h.update(name.encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def shard_key(
    entry: CorpusEntry,
    device: DeviceSpec,
    precision: str,
    formats: Sequence[str],
    reps: int,
    seed: int,
    noise: NoiseModel,
) -> str:
    """Content key of one matrix's measurement under a campaign config.

    Covers the full build recipe of the matrix and every campaign
    parameter that can change the measured times, so a shard can never
    be served to a campaign it does not belong to (different device,
    precision, reps, seed, noise calibration, or format list).
    """
    payload = {
        "v": SHARD_VERSION,
        "name": entry.name,
        "family": entry.family,
        "target_nnz": entry.target_nnz,
        "entry_seed": entry.seed,
        "params": {k: entry.params[k] for k in sorted(entry.params)},
        "device": device.name,
        "precision": precision,
        "formats": list(formats),
        "reps": int(reps),
        "seed": int(seed),
        "noise": [noise.sigma_structural, noise.sigma_run, noise.seed],
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------


@dataclass
class MatrixResult:
    """Outcome of labeling one corpus matrix.

    ``ok`` results carry the 17 features (:data:`ALL_FEATURES` order)
    and the mean times per requested format; failures carry a human-
    readable ``failure`` reason instead (a matrix failing *any* format
    is a failure, per the paper's drop rule).
    """

    name: str
    key: str
    ok: bool
    features: Optional[List[float]] = None
    times: Optional[List[float]] = None
    failure: Optional[str] = None
    elapsed_s: float = 0.0
    cached: bool = False

    def to_json(self) -> Dict:
        return {
            "version": SHARD_VERSION,
            "name": self.name,
            "key": self.key,
            "ok": self.ok,
            "features": self.features,
            "times": self.times,
            "failure": self.failure,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "MatrixResult":
        return cls(
            name=data["name"],
            key=data["key"],
            ok=data["ok"],
            features=data["features"],
            times=data["times"],
            failure=data["failure"],
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            cached=True,
        )


@dataclass
class CampaignProgress:
    """One observability event, emitted after every finished matrix."""

    total: int            #: matrices in the campaign
    done: int             #: matrices finished (ok + failed, incl. cached)
    ok: int               #: successfully labeled
    failed: int           #: recorded failures
    cached: int           #: served from resume shards
    elapsed_s: float      #: wall time since the campaign started
    eta_s: float          #: naive remaining-time estimate
    name: str             #: matrix that just finished
    format_means: Dict[str, float] = field(default_factory=dict)
    #: running mean seconds per format over the ok results so far


@dataclass
class CampaignResult:
    """Full campaign outcome: one :class:`MatrixResult` per corpus entry."""

    results: List[MatrixResult]
    formats: Tuple[str, ...]
    device: str
    precision: str
    reps: int
    seed: int

    @property
    def failures(self) -> Dict[str, str]:
        """``name -> reason`` for every matrix that did not survive."""
        return {r.name: r.failure or "unknown" for r in self.results if not r.ok}

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    def to_dataset(self):
        """Pack surviving matrices into an :class:`~repro.core.SpMVDataset`."""
        from ..core.dataset import SpMVDataset

        ok = [r for r in self.results if r.ok]
        if not ok:
            raise ValueError("no corpus matrix survived labeling")
        return SpMVDataset(
            names=[r.name for r in ok],
            feature_array=np.array([r.features for r in ok], dtype=float),
            times=np.array([r.times for r in ok], dtype=float),
            formats=self.formats,
            device=self.device,
            precision=self.precision,
            reps=self.reps,
        )

    def write_failure_log(self, path: Union[str, Path]) -> None:
        """Write a ``name,reason`` CSV of dropped matrices."""
        lines = ["name,reason"]
        for r in self.results:
            if not r.ok:
                reason = (r.failure or "unknown").replace("\n", " ").replace(",", ";")
                lines.append(f"{r.name},{reason}")
        Path(path).write_text("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def _label_one(payload: Tuple) -> MatrixResult:
    """Label one matrix; never raises (failures become records).

    Runs in a worker process (or inline for serial campaigns).  Any
    exception — generator failure, every-format-failed, an injected
    fault — is caught and returned as a failed :class:`MatrixResult`;
    a hard worker death is handled by the pool loop in
    :func:`run_campaign`.
    """
    entry, device, precision, formats, reps, noise, seed, key, timeout_s = payload
    start = time.perf_counter()
    try:
        alarm_set = False
        try:
            if timeout_s:
                import signal

                if hasattr(signal, "SIGALRM"):

                    def _on_alarm(signum, frame):  # pragma: no cover - timing
                        raise TimeoutError(f"labeling exceeded {timeout_s:g}s")

                    signal.signal(signal.SIGALRM, _on_alarm)
                    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
                    alarm_set = True
            matrix = entry.build()
            executor = SpMVExecutor(device, precision, noise=noise, seed=seed)
            # One structural scan produces the profile and all 17
            # features (repro.analysis) — the campaign's per-matrix
            # analysis cost is one pass, not two.
            analysis = executor.analyze(matrix)
            features = analysis.features
            label = label_matrix(
                executor,
                matrix,
                name=entry.name,
                formats=formats,
                reps=reps,
                features=features,
                profile=analysis.profile,
            )
            if not label.complete:
                reasons = "; ".join(
                    f"{f}: {r}" for f, r in sorted(label.failed.items())
                )
                return MatrixResult(
                    name=entry.name,
                    key=key,
                    ok=False,
                    failure=f"incomplete: {reasons}",
                    elapsed_s=time.perf_counter() - start,
                )
            return MatrixResult(
                name=entry.name,
                key=key,
                ok=True,
                features=[float(features[f]) for f in ALL_FEATURES],
                times=[float(label.times[f]) for f in formats],
                elapsed_s=time.perf_counter() - start,
            )
        finally:
            # Cancel before leaving so a late alarm cannot hit unrelated
            # code; one firing *inside* this finally still lands in the
            # outer except below.
            if alarm_set:
                import signal

                signal.setitimer(signal.ITIMER_REAL, 0.0)
    except BaseException as exc:
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return MatrixResult(
            name=entry.name,
            key=key,
            ok=False,
            failure=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - start,
        )


# ---------------------------------------------------------------------------
# Shard persistence
# ---------------------------------------------------------------------------


def _load_shard(shard_dir: Path, key: str, name: str) -> Optional[MatrixResult]:
    path = shard_dir / f"{key}.json"
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None  # truncated/corrupt shard: re-measure
    if data.get("version") != SHARD_VERSION or data.get("name") != name:
        return None
    return MatrixResult.from_json(data)


def _write_shard(shard_dir: Path, result: MatrixResult) -> None:
    # Atomic write so an interrupted campaign never leaves a torn shard.
    path = shard_dir / f"{result.key}.json"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(result.to_json()))
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _resolve_workers(workers: Optional[int],
                     config: Optional[ReproConfig] = None) -> int:
    if workers is None:
        if config is not None:
            workers = config.workers
        else:
            workers = int(os.environ.get("REPRO_WORKERS", str(_DEFAULT_WORKERS)))
    return max(1, int(workers))


def run_campaign(
    corpus: Iterable[CorpusEntry],
    device: DeviceSpec,
    precision: str = "single",
    *,
    formats: Sequence[str] = FORMAT_NAMES,
    tuned: bool = False,
    reps: int = DEFAULT_REPS,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    shard_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[CampaignProgress], None]] = None,
    timeout_s: Optional[float] = None,
    config: Optional[ReproConfig] = None,
) -> CampaignResult:
    """Run the measurement campaign over ``corpus``.

    Parameters
    ----------
    corpus:
        Any iterable of :class:`~repro.matrices.CorpusEntry` (a
        :class:`~repro.matrices.SyntheticCorpus` works directly).
    device, precision, formats, reps, noise, seed:
        The campaign configuration, as in
        :func:`~repro.core.dataset.build_dataset`.  ``formats`` may mix
        bare format names and tuning configuration keys
        (``"hyb?split=2"`` — see :mod:`repro.tuning`).
    tuned:
        Label over the joint format+parameter grid
        (:func:`repro.tuning.tuned_space`) instead of the six default
        formats.  Convenience flag: only applies when ``formats`` is
        left at its default, so an explicit vocabulary always wins.
    workers:
        Process-pool width; ``1`` runs inline.  Defaults to
        ``config.workers`` when a config is given, else to the
        ``REPRO_WORKERS`` environment variable (itself defaulting to
        1).  Results are bit-identical for any worker count.
    shard_dir:
        Directory for per-matrix resume shards; ``None`` disables
        resumability.
    progress:
        Callback receiving a :class:`CampaignProgress` after every
        finished matrix.
    timeout_s:
        Per-matrix soft labeling timeout (POSIX only); a matrix
        exceeding it is recorded as failed.
    config:
        Optional :class:`~repro.config.ReproConfig` supplying defaults
        (currently ``workers``) when the explicit argument is ``None``.

    Returns
    -------
    CampaignResult
        One result per corpus entry, in corpus order.
    """
    entries = list(corpus)
    noise = noise if noise is not None else NoiseModel()
    workers = _resolve_workers(workers, config)
    if tuned and tuple(formats) == tuple(FORMAT_NAMES):
        from .. import tuning

        formats = tuning.tuned_space()
    formats = tuple(formats)
    shard_path: Optional[Path] = None
    if shard_dir is not None:
        shard_path = Path(shard_dir)
        shard_path.mkdir(parents=True, exist_ok=True)

    n = len(entries)
    results: List[Optional[MatrixResult]] = [None] * n
    start = time.perf_counter()
    done = ok = failed = cached = 0
    fmt_sums = {f: 0.0 for f in formats}

    def _finish(i: int, result: MatrixResult) -> None:
        nonlocal done, ok, failed, cached
        results[i] = result
        done += 1
        if result.ok:
            ok += 1
            for f, t in zip(formats, result.times):
                fmt_sums[f] += t
        else:
            failed += 1
        if result.cached:
            cached += 1
        elif shard_path is not None:
            _write_shard(shard_path, result)
        if obs.enabled():
            obs.incr("campaign.matrices_ok" if result.ok
                     else "campaign.matrices_failed")
            if result.cached:
                obs.incr("campaign.shard_hits")
            else:
                obs.observe("campaign.matrix_seconds", result.elapsed_s)
            obs.emit("campaign.progress", {
                "name": result.name, "done": done, "total": n,
                "ok": ok, "failed": failed, "cached": cached,
            })
        if progress is not None:
            elapsed = time.perf_counter() - start
            fresh = done - cached
            eta = (elapsed / fresh) * (n - done) if fresh else 0.0
            progress(
                CampaignProgress(
                    total=n,
                    done=done,
                    ok=ok,
                    failed=failed,
                    cached=cached,
                    elapsed_s=elapsed,
                    eta_s=eta,
                    name=result.name,
                    format_means={f: fmt_sums[f] / ok for f in formats} if ok else {},
                )
            )

    def _payload(i: int, key: str) -> Tuple:
        return (entries[i], device, precision, formats, reps, noise,
                derive_matrix_seed(seed, entries[i].name), key, timeout_s)

    with obs.span("campaign.run"):
        # Pass 1: serve finished shards.
        keys = [
            shard_key(e, device, precision, formats, reps, seed, noise)
            for e in entries
        ]
        todo: List[int] = []
        for i, entry in enumerate(entries):
            hit = _load_shard(shard_path, keys[i], entry.name) if shard_path else None
            if hit is not None:
                _finish(i, hit)
            else:
                todo.append(i)

        # Pass 2: measure what's missing.
        if todo and workers == 1:
            for i in todo:
                res = _label_one(_payload(i, keys[i]))
                # Serial labeling happens on this thread, inside the
                # campaign.run wall time, so the measured duration is a
                # genuine child span.  (Parallel labeling overlaps — its
                # durations go to the histogram in _finish instead, which
                # keeps the parent >= sum-of-children invariant true.)
                obs.record_span("campaign.matrix", res.elapsed_s)
                _finish(i, res)
        elif todo:
            _run_pool(todo, _payload, keys, workers, _finish, entries)

        if obs.enabled():
            obs.set_gauge("campaign.workers", workers)
            wall = time.perf_counter() - start
            busy = sum(r.elapsed_s for r in results if r is not None and not r.cached)
            if wall > 0 and done > cached:
                obs.set_gauge("campaign.worker_utilisation",
                              min(1.0, busy / (wall * workers)))

    return CampaignResult(
        results=[r for r in results if r is not None],
        formats=formats,
        device=device.name,
        precision=precision,
        reps=reps,
        seed=seed,
    )


def _run_pool(
    todo: List[int],
    payload: Callable[[int, str], Tuple],
    keys: List[str],
    workers: int,
    finish: Callable[[int, MatrixResult], None],
    entries: List[CorpusEntry],
) -> None:
    """Fan ``todo`` out over a process pool, surviving worker deaths.

    Python-level errors never reach here (:func:`_label_one` converts
    them to failure records); a future that raises means its worker
    process died (segfault, OOM-kill, hard timeout).  One death breaks
    the whole ``ProcessPoolExecutor``, taking every in-flight future
    with it, so every crashed task is retried once in its *own*
    single-worker pool: collateral victims of someone else's crash then
    succeed, and only the genuinely poisonous matrix is recorded as
    crashed.  This keeps results independent of crash timing.
    """
    crashed: List[Tuple[int, BaseException]] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
        futures = {pool.submit(_label_one, payload(i, keys[i])): i for i in todo}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                i = futures[fut]
                try:
                    finish(i, fut.result())
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    crashed.append((i, exc))
    for i, _ in sorted(crashed):
        with ProcessPoolExecutor(max_workers=1) as pool:
            fut = pool.submit(_label_one, payload(i, keys[i]))
            try:
                finish(i, fut.result())
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                finish(
                    i,
                    MatrixResult(
                        name=entries[i].name,
                        key=keys[i],
                        ok=False,
                        failure=f"worker crashed: {type(exc).__name__}: {exc}",
                    ),
                )
