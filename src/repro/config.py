"""Unified runtime configuration: :class:`ReproConfig`.

Every ``REPRO_*`` environment variable the package understands is
resolved in exactly one place — :meth:`ReproConfig.from_env` — instead
of piecemeal ``os.environ`` reads scattered across the bench runner,
the campaign engine and the CLI.  The object is a frozen (hashable)
dataclass, so process-level caches key on *it*: change the environment
mid-process, call the entry point again, and the new config hashes to a
new cache slot instead of silently serving stale data.

Recognised variables (and their defaults):

========================  =====================================  ============
variable                  meaning                                default
========================  =====================================  ============
``REPRO_SCALE``           corpus fraction of the ~2300-matrix    ``0.1``
                          collection (paper scale is ``1.0``)
``REPRO_MAX_NNZ``         per-matrix nnz cap                     ``2_000_000``
``REPRO_SEED``            master seed                            ``0``
``REPRO_REPS``            repetitions per (matrix, format)       ``50``
``REPRO_WORKERS``         campaign worker processes              ``1``
``REPRO_CACHE``           dataset cache directory                ``.repro_cache``
``REPRO_ENERGY_WEIGHT``   multi-objective selection weight       ``0.0``
                          (0 = pure time, 1 = pure energy
                          proxy; see :mod:`repro.tuning`)
========================  =====================================  ============

Call sites take an optional ``config=`` argument defaulting to
``ReproConfig.from_env()``::

    from repro.config import ReproConfig

    cfg = ReproConfig.from_env().replace(workers=8)
    ds = bench_dataset("k40c", "single", config=cfg)
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

__all__ = ["ReproConfig", "DEFAULT_REPS"]

#: The paper's measurement protocol: 50 repetitions per (matrix, format).
#: (:data:`repro.core.labeling.DEFAULT_REPS` re-exports this; the value
#: lives here so importing the config never pulls the ML stack in.)
DEFAULT_REPS = 50


@dataclass(frozen=True)
class ReproConfig:
    """Resolved runtime configuration (one frozen, hashable snapshot).

    Attributes mirror the ``REPRO_*`` environment variables; see the
    module docstring for meanings and defaults.
    """

    scale: float = 0.1
    max_nnz: int = 2_000_000
    seed: int = 0
    reps: int = DEFAULT_REPS
    workers: int = 1
    cache_dir: str = ".repro_cache"
    energy_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.max_nnz < 1:
            raise ValueError(f"max_nnz must be >= 1, got {self.max_nnz}")
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 <= self.energy_weight <= 1.0:
            raise ValueError(
                f"energy_weight must be in [0, 1], got {self.energy_weight}"
            )

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "ReproConfig":
        """Resolve the configuration from ``env`` (default: ``os.environ``).

        Accepts the same spellings the historical piecemeal readers did
        (``REPRO_MAX_NNZ`` may be written ``2e6``).
        """
        if env is None:
            env = os.environ
        return cls(
            scale=float(env.get("REPRO_SCALE", "0.1")),
            max_nnz=int(float(env.get("REPRO_MAX_NNZ", "2000000"))),
            seed=int(env.get("REPRO_SEED", "0")),
            reps=int(env.get("REPRO_REPS", str(DEFAULT_REPS))),
            workers=max(1, int(env.get("REPRO_WORKERS", "1"))),
            cache_dir=env.get("REPRO_CACHE", ".repro_cache"),
            energy_weight=float(env.get("REPRO_ENERGY_WEIGHT", "0.0")),
        )

    def replace(self, **changes) -> "ReproConfig":
        """A copy with ``changes`` applied (the object itself is frozen)."""
        return dataclasses.replace(self, **changes)

    @property
    def cache_path(self) -> Path:
        """``cache_dir`` as a :class:`~pathlib.Path`."""
        return Path(self.cache_dir)

    @property
    def shard_dir(self) -> Path:
        """Resume-shard directory under the dataset cache."""
        return self.cache_path / "shards"

    def dataset_tag(self, device_key: str, precision: str) -> str:
        """Canonical ``.npz`` cache filename for one (device, precision)."""
        return (
            f"{device_key}_{precision}_s{self.scale:g}_m{self.max_nnz}"
            f"_r{self.seed}_n{self.reps}.npz"
        )

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-able; used by snapshots and reports)."""
        return dataclasses.asdict(self)
