"""Process-wide observability: tracing spans, metrics, exporters.

``repro.obs`` is the single telemetry spine of the reproduction.  Every
layer — the GPU executor, the measurement-campaign engine, the ML
training loops, the serving stack — reports into one process-wide,
thread-safe pair of registries:

* **spans** (:mod:`repro.obs.trace`) — hierarchical wall-time regions
  with a context-manager and decorator API, aggregated by nesting path;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms with O(1)-memory quantile estimates;
* **exporters** (:mod:`repro.obs.export`) — JSON snapshots, terminal
  tables and a JSON-lines event sink.

Disabled by default
-------------------
Observability is **off** unless :func:`enable` runs (the CLI's
``--trace`` / ``--metrics-out`` flags do this).  While disabled, every
instrumentation point is a single module-attribute read plus a branch —
``span()`` hands back a shared no-op context manager and the metric
helpers return immediately — so instrumented hot paths stay within ~2%
of their uninstrumented cost (guarded by ``tests/test_obs.py`` and
reported by ``repro-spmv perf``).

Quickstart
----------
>>> from repro import obs
>>> obs.enable()
>>> with obs.span("demo.outer"):
...     with obs.span("demo.inner"):
...         pass
>>> obs.incr("demo.requests")
>>> snap = obs.snapshot()
>>> sorted(snap["spans"])
['demo.outer', 'demo.outer/demo.inner']
>>> obs.disable(reset=True)
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from .export import (  # noqa: F401
    SNAPSHOT_SCHEMA,
    JsonLinesSink,
    check_snapshot,
    render_snapshot,
    snapshot_dict,
)
from .metrics import (  # noqa: F401
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import PATH_SEP, SpanRecorder, SpanStats, make_traced  # noqa: F401

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "SpanRecorder",
    "SpanStats",
    "SNAPSHOT_SCHEMA",
    "check_snapshot",
    "counter",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "get_metrics",
    "get_spans",
    "histogram",
    "incr",
    "observe",
    "record_span",
    "render_snapshot",
    "reset",
    "set_gauge",
    "set_sink",
    "snapshot",
    "snapshot_dict",
    "span",
    "traced",
]


class _NullSpan:
    """Shared no-op context manager returned while obs is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    @property
    def path(self) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Fast-path flag.  Read directly (one module-dict lookup) by every
#: instrumentation helper; flipped only by :func:`enable`/:func:`disable`.
_ENABLED = False

_lock = threading.Lock()
_spans = SpanRecorder()
_metrics = MetricsRegistry()
_sink = None  # JsonLinesSink | callable | None


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def enable(sink=None) -> None:
    """Turn instrumentation on (optionally attaching an event sink).

    ``sink`` may be a :class:`JsonLinesSink`, a path (wrapped in one),
    or any ``(event, payload) -> None`` callable.  Passing ``None``
    keeps any previously attached sink.
    """
    global _ENABLED
    with _lock:
        if sink is not None:
            _set_sink_locked(sink)
        _ENABLED = True


def disable(*, reset: bool = False) -> None:
    """Turn instrumentation off (optionally also dropping collected data)."""
    global _ENABLED
    with _lock:
        _ENABLED = False
    if reset:
        _spans.reset()
        _metrics.reset()


def enabled() -> bool:
    """Whether instrumentation is currently on."""
    return _ENABLED


def reset() -> None:
    """Drop all collected spans and metrics (the sink stays attached)."""
    _spans.reset()
    _metrics.reset()


def _set_sink_locked(sink) -> None:
    global _sink
    if sink is None or callable(sink) or isinstance(sink, JsonLinesSink):
        _sink = sink
    else:
        _sink = JsonLinesSink(sink)


def set_sink(sink) -> None:
    """Attach (or with ``None`` detach) the process-wide event sink."""
    with _lock:
        _set_sink_locked(sink)


def get_spans() -> SpanRecorder:
    """The process-wide span recorder."""
    return _spans


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _metrics


# ---------------------------------------------------------------------------
# Instrumentation helpers (the fast path)
# ---------------------------------------------------------------------------


def span(name: str):
    """Context manager timing one region; no-op while disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    return _spans.span(name)


traced = make_traced(span)
traced.__doc__ = """Decorator tracing every call of the wrapped function.

Usable bare (``@obs.traced``) or with an explicit span name
(``@obs.traced("ml.fit")``); the default name is
``<module>.<qualname>``.  Adds only the disabled-span branch while
observability is off.
"""


def record_span(name: str, seconds: float) -> None:
    """Record an externally measured duration as a span (if enabled)."""
    if _ENABLED:
        _spans.record(name, seconds)


def incr(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if _ENABLED:
        _metrics.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _ENABLED:
        _metrics.gauge(name).set(value)


def observe(name: str, value: float,
            boundaries: Optional[Sequence[float]] = None) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    if _ENABLED:
        _metrics.histogram(name, boundaries).observe(value)


def counter(name: str) -> Counter:
    """The process-wide counter ``name`` (always live; see note).

    Unlike :func:`incr` this bypasses the enabled check — layers whose
    telemetry must stay exact regardless of tracing state (e.g. the
    serving façade) hold the metric objects directly.
    """
    return _metrics.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide gauge ``name`` (always live)."""
    return _metrics.gauge(name)


def histogram(name: str, boundaries: Optional[Sequence[float]] = None) -> Histogram:
    """The process-wide histogram ``name`` (always live)."""
    return _metrics.histogram(name, boundaries)


def emit(event: str, payload: Optional[Dict] = None) -> None:
    """Send one event to the attached sink (no-op if disabled/no sink)."""
    if not _ENABLED:
        return
    sink = _sink
    if sink is None:
        return
    if isinstance(sink, JsonLinesSink):
        sink.emit(event, payload)
    else:
        try:
            sink(event, dict(payload or {}))
        except Exception:
            pass  # observer errors must never break the observed code


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def snapshot() -> Dict:
    """One JSON-able snapshot of every span and metric collected so far."""
    return snapshot_dict(_spans.snapshot(), _metrics.snapshot())
