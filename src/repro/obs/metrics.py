"""Metric primitives: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric of a process.  Metrics
are created on first use (``registry.counter("serve.requests")``) and
identified by dotted names; the naming conventions live in
``docs/OBSERVABILITY.md``.  All mutators are thread-safe and cheap — a
counter increment is one lock acquisition and one float add — so hot
paths can afford to keep them always on once the caller has checked
:func:`repro.obs.enabled`.

Histograms use *fixed* bucket boundaries (a 1-2-5 geometric series by
default, spanning nanoseconds to minutes for timing data), so quantile
estimates need no reservoir: :meth:`Histogram.quantile` interpolates
inside the bucket containing the requested rank.  The estimate is exact
to within one bucket width — plenty for the p50/p95/p99 dashboards this
repo tracks — at O(1) memory per metric regardless of traffic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]


def _geometric_125(lo: float, hi: float) -> Tuple[float, ...]:
    """1-2-5 series boundaries covering [lo, hi]."""
    out: List[float] = []
    decade = 1.0
    while decade > lo:
        decade /= 10.0
    while decade <= hi:
        for m in (1.0, 2.0, 5.0):
            edge = m * decade
            if lo <= edge <= hi:
                out.append(edge)
        decade *= 10.0
    return tuple(out)


#: Default histogram boundaries: 1-2-5 series from 100 ns to 100 s.
#: Good for timing data (the dominant histogram use in this repo);
#: callers with other units pass explicit ``buckets``.
DEFAULT_BUCKETS: Tuple[float, ...] = _geometric_125(1e-7, 1e2)


class Counter:
    """Monotonically increasing count (requests served, cache hits...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-written value (worker utilisation, queue depth...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    ``boundaries`` are the *upper* edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    Count, sum, min and max are tracked exactly; quantiles are
    estimated by linear interpolation within the selected bucket.
    """

    __slots__ = ("name", "boundaries", "_lock", "_counts", "_overflow",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("boundaries must be a non-empty increasing sequence")
        self.name = name
        self.boundaries = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = bisect_left(self.boundaries, value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if idx < len(self._counts):
                self._counts[idx] += 1
            else:
                self._overflow += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]).

        Linear interpolation inside the bucket containing the target
        rank, clamped to the observed min/max so estimates never leave
        the data range.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cum = 0
            lower = self._min
            for edge, c in zip(self.boundaries, self._counts):
                if c:
                    if cum + c >= target:
                        frac = (target - cum) / c
                        est = lower + frac * (min(edge, self._max) - lower)
                        return min(max(est, self._min), self._max)
                    cum += c
                lower = max(edge, self._min)
            return self._max  # target rank lives in the overflow bucket

    def snapshot(self) -> Dict:
        with self._lock:
            nonzero = {
                f"{edge:g}": c
                for edge, c in zip(self.boundaries, self._counts)
                if c
            }
            if self._overflow:
                nonzero["+inf"] = self._overflow
            counts = dict(nonzero)
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": counts,
        }


class MetricsRegistry:
    """Thread-safe name → metric map with create-on-first-use semantics.

    Asking for an existing name returns the same object; asking for an
    existing name *as a different metric type* raises ``TypeError`` —
    name collisions across types are always a bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        if boundaries is None:
            boundaries = DEFAULT_BUCKETS
        return self._get_or_create(name, Histogram, boundaries)

    def get(self, name: str):
        """The metric named ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """``name -> metric snapshot`` for every registered metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: m.snapshot() for name, m in sorted(metrics)}

    def reset(self) -> None:
        """Drop every metric (tests and long-lived daemons)."""
        with self._lock:
            self._metrics.clear()
