"""Snapshot exporters: JSON, human-readable tables, JSON-lines events.

Three ways out of the in-process registries:

* :func:`snapshot` — one JSON-able dict covering spans and metrics
  (the wire/disk format; ``repro-spmv --metrics-out`` writes it and
  ``repro-spmv obs`` pretty-prints it back);
* :func:`render_snapshot` — fixed-width tables for terminals;
* :class:`JsonLinesSink` — an append-only event stream (one JSON
  object per line) for live tailing of campaign progress or periodic
  daemon snapshots.

:func:`check_snapshot` validates the structural invariants every
well-formed snapshot obeys — most importantly that a parent span's
total time is at least the sum of its (sequentially nested) children —
so downstream dashboards can trust the numbers they aggregate.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Union

from .trace import PATH_SEP

__all__ = [
    "SNAPSHOT_SCHEMA",
    "JsonLinesSink",
    "check_snapshot",
    "render_snapshot",
    "snapshot_dict",
]

#: Schema tag stamped into every snapshot.
SNAPSHOT_SCHEMA = "repro-obs-snapshot/v1"

#: Slack allowed when comparing a parent span total against the sum of
#: its children: clock granularity plus per-span bookkeeping overhead.
_NESTING_SLACK_S = 1e-4


def snapshot_dict(spans: Dict[str, Dict], metrics: Dict[str, Dict]) -> Dict:
    """Assemble the canonical snapshot structure."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "unix_time": time.time(),
        "spans": spans,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# Human rendering
# ---------------------------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{1e3 * s:.2f}ms"
    return f"{1e6 * s:.1f}us"


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return lines


def render_snapshot(snap: Dict) -> str:
    """Render a snapshot as fixed-width terminal tables."""
    out: List[str] = []
    spans = snap.get("spans", {})
    if spans:
        rows = []
        for path in sorted(spans):
            s = spans[path]
            depth = path.count(PATH_SEP)
            label = "  " * depth + path.rsplit(PATH_SEP, 1)[-1]
            rows.append([
                label,
                str(s["count"]),
                _fmt_seconds(s["total_s"]),
                _fmt_seconds(s["mean_s"]),
                _fmt_seconds(s["min_s"]),
                _fmt_seconds(s["max_s"]),
            ])
        out.append("spans")
        out.extend(_table(["span", "count", "total", "mean", "min", "max"], rows))
    metrics = snap.get("metrics", {})
    counters = [(n, m) for n, m in sorted(metrics.items()) if m["type"] == "counter"]
    gauges = [(n, m) for n, m in sorted(metrics.items()) if m["type"] == "gauge"]
    hists = [(n, m) for n, m in sorted(metrics.items()) if m["type"] == "histogram"]
    if counters or gauges:
        if out:
            out.append("")
        rows = [[n, "counter", f"{m['value']:g}"] for n, m in counters]
        rows += [[n, "gauge", f"{m['value']:g}"] for n, m in gauges]
        out.append("counters / gauges")
        out.extend(_table(["metric", "type", "value"], rows))
    if hists:
        if out:
            out.append("")
        rows = [
            [
                n,
                str(m["count"]),
                _fmt_seconds(m["mean"]),
                _fmt_seconds(m["p50"]),
                _fmt_seconds(m["p95"]),
                _fmt_seconds(m["p99"]),
                _fmt_seconds(m["max"]),
            ]
            for n, m in hists
        ]
        out.append("histograms")
        out.extend(_table(
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"], rows
        ))
    if not out:
        out.append("(empty snapshot)")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Consistency checking
# ---------------------------------------------------------------------------


def check_snapshot(snap: Dict) -> List[str]:
    """Validate snapshot invariants; returns a list of problems (empty = ok).

    Checks:

    * schema tag is recognised;
    * every span path's parent exists and the parent's total time is at
      least the sum of its children (within clock slack) — children are
      nested *inside* the parent on one thread, so they can never sum
      past it;
    * histogram bucket counts sum to the recorded count, and
      ``min <= mean <= max``;
    * counters and span/histogram counts are non-negative.
    """
    problems: List[str] = []
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(
            f"unknown snapshot schema {snap.get('schema')!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    spans: Dict[str, Dict] = snap.get("spans", {})
    child_totals: Dict[str, float] = {}
    for path, s in spans.items():
        if s["count"] < 0 or s["total_s"] < -1e-12:
            problems.append(f"span {path!r}: negative count/total")
        if PATH_SEP in path:
            parent = path.rsplit(PATH_SEP, 1)[0]
            if parent not in spans:
                problems.append(f"span {path!r}: parent {parent!r} missing")
            child_totals[parent] = child_totals.get(parent, 0.0) + s["total_s"]
    for parent, child_sum in child_totals.items():
        if parent not in spans:
            continue
        total = spans[parent]["total_s"]
        slack = _NESTING_SLACK_S * max(1, spans[parent]["count"])
        if child_sum > total + slack:
            problems.append(
                f"span {parent!r}: children sum to {child_sum:.6f}s "
                f"> own total {total:.6f}s"
            )
    for name, m in snap.get("metrics", {}).items():
        kind = m.get("type")
        if kind == "counter" and m["value"] < 0:
            problems.append(f"counter {name!r}: negative value")
        elif kind == "histogram":
            bucket_sum = sum(m.get("buckets", {}).values())
            if bucket_sum != m["count"]:
                problems.append(
                    f"histogram {name!r}: bucket counts sum to {bucket_sum} "
                    f"!= count {m['count']}"
                )
            if m["count"] and not (
                m["min"] - 1e-12 <= m["mean"] <= m["max"] + 1e-12
            ):
                problems.append(f"histogram {name!r}: mean outside [min, max]")
    return problems


# ---------------------------------------------------------------------------
# Event sink
# ---------------------------------------------------------------------------


class JsonLinesSink:
    """Append-only JSON-lines event stream.

    Accepts a path (opened lazily, line-buffered append) or any
    writable text stream.  Every event is one JSON object with at least
    ``{"ts": <unix seconds>, "event": <type>}``; emission is serialised
    by a lock so concurrent threads never interleave partial lines.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._lock = threading.Lock()
        self._own = False
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._fh: Optional[IO[str]] = None
        else:
            self._path = None
            self._fh = target

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self._path, "a", buffering=1)
            self._own = True
        return self._fh

    def emit(self, event: str, payload: Optional[Dict] = None) -> None:
        """Write one event line (never raises into the instrumented code)."""
        record = {"ts": time.time(), "event": event}
        if payload:
            record.update(payload)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            line = json.dumps({"ts": record["ts"], "event": event,
                               "error": "unserialisable payload"})
        with self._lock:
            try:
                fh = self._handle()
                fh.write(line + "\n")
                fh.flush()
            except OSError:
                pass  # a full disk must not take the workload down

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._own:
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = None
            self._own = False

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Type of the pluggable sink callables :mod:`repro.obs` accepts: either
#: a :class:`JsonLinesSink` or any ``(event, payload) -> None`` callable.
SinkLike = Union[JsonLinesSink, Callable[[str, Dict], None]]
