"""Hierarchical tracing spans with monotonic clocks.

A *span* measures one named region of execution.  Spans nest: entering
a span while another is open on the same thread makes it a child, and
aggregation is keyed by the full path (``campaign.run/campaign.matrix``),
so one snapshot shows where the time inside each parent went.  The
recorder is process-wide and thread-safe; each thread carries its own
span stack (``threading.local``), so concurrent request threads trace
independently without sharing state.

Timing uses ``time.perf_counter`` (monotonic, sub-microsecond), and
aggregation is bounded: per path we keep count / total / min / max —
O(1) memory per distinct path no matter how many times it runs.

Use :class:`SpanRecorder` through :mod:`repro.obs`, which adds the
process-wide instance and the disabled-by-default fast path::

    from repro import obs

    with obs.span("campaign.run"):
        for m in corpus:
            with obs.span("campaign.matrix"):
                label(m)

    @obs.traced("ml.fit")
    def fit(...): ...
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["SpanRecorder", "SpanStats", "PATH_SEP"]

#: Separator between span names in an aggregation path.  Span *names*
#: use dots (``campaign.matrix``); the path separator is distinct so
#: nesting stays unambiguous.
PATH_SEP = "/"


class SpanStats:
    """Aggregated timings of every run of one span path."""

    __slots__ = ("path", "count", "total_s", "min_s", "max_s")

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @property
    def name(self) -> str:
        """Leaf span name (last path component)."""
        return self.path.rsplit(PATH_SEP, 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count(PATH_SEP)

    def parent_path(self) -> Optional[str]:
        if PATH_SEP not in self.path:
            return None
        return self.path.rsplit(PATH_SEP, 1)[0]

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _ActiveSpan:
    """Context manager for one span activation (created per entry)."""

    __slots__ = ("_recorder", "_name", "_start", "_path")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0
        self._path = ""

    def __enter__(self) -> "_ActiveSpan":
        stack = self._recorder._stack()
        parent = stack[-1] if stack else None
        self._path = (
            f"{parent}{PATH_SEP}{self._name}" if parent else self._name
        )
        stack.append(self._path)
        self._start = time.perf_counter()
        self._recorder._open(self, self._path, self._start)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._recorder._stack()
        # Pop back to (and including) our own frame even if an exception
        # unwound past child __exit__ calls.
        while stack and stack[-1] != self._path:
            stack.pop()
        if stack:
            stack.pop()
        self._recorder._close(self, self._path, elapsed)

    @property
    def path(self) -> str:
        """Full aggregation path (valid once entered)."""
        return self._path


class SpanRecorder:
    """Process-wide span aggregator (one per :class:`~repro.obs` state)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, SpanStats] = {}
        self._local = threading.local()
        #: Spans currently open on any thread: id(span) -> (path, start).
        #: Lets :meth:`snapshot` report elapsed-so-far for long-running
        #: regions (a daemon session, a campaign in flight), so a live
        #: snapshot never shows a child whose parent is missing.
        self._active: Dict[int, Tuple[str, float]] = {}

    # -- per-thread stack --------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_path(self) -> Optional[str]:
        """Path of the innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    def span(self, name: str) -> _ActiveSpan:
        """A context manager timing one region named ``name``."""
        return _ActiveSpan(self, name)

    def record(self, name: str, seconds: float) -> str:
        """Record an externally measured duration as a span.

        The span is attached under the calling thread's innermost open
        span (if any).  Used for durations measured elsewhere — e.g. a
        worker process reporting per-matrix labeling time back to the
        campaign coordinator.  Returns the full path recorded.
        """
        parent = self.current_path()
        path = f"{parent}{PATH_SEP}{name}" if parent else name
        self._record(path, float(seconds))
        return path

    def _record(self, path: str, seconds: float) -> None:
        with self._lock:
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = SpanStats(path)
            stats.add(seconds)

    def _open(self, span: "_ActiveSpan", path: str, start: float) -> None:
        with self._lock:
            self._active[id(span)] = (path, start)

    def _close(self, span: "_ActiveSpan", path: str, seconds: float) -> None:
        with self._lock:
            self._active.pop(id(span), None)
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = SpanStats(path)
            stats.add(seconds)

    # -- reading -----------------------------------------------------------

    def stats(self) -> Dict[str, SpanStats]:
        """Path → stats for every recorded span path (sorted copy)."""
        with self._lock:
            return {p: self._stats[p] for p in sorted(self._stats)}

    def snapshot(self, include_active: bool = True) -> Dict[str, Dict]:
        """JSON-able path → aggregate dict.

        With ``include_active`` (default) spans still open at snapshot
        time contribute their elapsed-so-far as one provisional run
        (flagged with an ``"open"`` count), so a live snapshot of a
        running daemon or campaign stays hierarchy-consistent: a parent
        still in flight is present, and its elapsed time bounds the sum
        of the children that already finished inside it.
        """
        with self._lock:
            snap = {p: s.snapshot() for p, s in sorted(self._stats.items())}
            active = list(self._active.values())
        if include_active and active:
            now = time.perf_counter()
            for path, start in active:
                elapsed = now - start
                entry = snap.get(path)
                if entry is None:
                    entry = snap[path] = {
                        "count": 0, "total_s": 0.0, "mean_s": 0.0,
                        "min_s": elapsed, "max_s": 0.0,
                    }
                entry["count"] += 1
                entry["total_s"] += elapsed
                entry["mean_s"] = entry["total_s"] / entry["count"]
                entry["min_s"] = min(entry["min_s"], elapsed)
                entry["max_s"] = max(entry["max_s"], elapsed)
                entry["open"] = entry.get("open", 0) + 1
            snap = {p: snap[p] for p in sorted(snap)}
        return snap

    def reset(self) -> None:
        """Drop aggregates (open spans on other threads keep running)."""
        with self._lock:
            self._stats.clear()


def make_traced(
    span_factory: Callable[[str], object],
) -> Callable:
    """Build a ``@traced`` decorator on top of any span factory.

    Separated out so :mod:`repro.obs` can wire the decorator to its
    enabled-check fast path without this module importing it back.
    """

    def traced(name_or_fn=None):
        def wrap(fn, name: Optional[str] = None):
            import functools

            span_name = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

            @functools.wraps(fn)
            def inner(*args, **kwargs):
                with span_factory(span_name):
                    return fn(*args, **kwargs)

            return inner

        if callable(name_or_fn):
            return wrap(name_or_fn)
        return lambda fn: wrap(fn, name_or_fn)

    return traced
