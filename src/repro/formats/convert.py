"""Cross-format conversion hub.

All formats convert through canonical COO, so conversion between any
pair is two hops at most.  :func:`as_format` is the single entry point
used by the executor, the labeler and the examples.
"""

from __future__ import annotations

from typing import Dict, Type, Union

from .base import SparseFormat
from .bsr import BSRMatrix
from .coo import COOMatrix
from .csr import CSRMatrix
from .csr5 import CSR5Matrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .hyb import HYBMatrix
from .merge_csr import MergeCSRMatrix

__all__ = [
    "FORMATS",
    "FORMAT_NAMES",
    "BASIC_FORMATS",
    "ADVANCED_FORMATS",
    "EXTENSION_FORMATS",
    "as_format",
]

#: Registry of all concrete formats, keyed by canonical name.
FORMATS: Dict[str, Type[SparseFormat]] = {
    cls.name: cls
    for cls in (
        COOMatrix,
        CSRMatrix,
        ELLMatrix,
        HYBMatrix,
        CSR5Matrix,
        MergeCSRMatrix,
        DIAMatrix,
        BSRMatrix,
    )
}

#: Canonical ordering of the six formats, as listed in the paper.
FORMAT_NAMES = ("coo", "ell", "csr", "hyb", "csr5", "merge_csr")

#: Extra formats beyond the paper's study (DIA from Bell & Garland, BSR
#: from the Zhao et al. comparison), used by the extended-study bench.
EXTENSION_FORMATS = ("dia", "bsr")

#: The paper's "basic" study subset (Tables IV–VI).
BASIC_FORMATS = ("ell", "csr", "hyb")

#: The advanced formats added for Tables VII–XIV.
ADVANCED_FORMATS = ("csr5", "merge_csr")


#: Formats whose ``from_coo`` takes the uniform tuning-knob mapping
#: (the others have no storage-affecting parameters).
_PARAM_FORMATS = ("ell", "hyb", "bsr")


def as_format(
    matrix: Union[SparseFormat, COOMatrix],
    name,
    *,
    params=None,
    **kwargs,
) -> SparseFormat:
    """Convert ``matrix`` to the format called ``name``.

    Parameters
    ----------
    matrix:
        Any :class:`~repro.formats.base.SparseFormat` instance.
    name:
        One of :data:`FORMAT_NAMES`, a tuning configuration key
        (``"hyb?split=2"``) or a ``repro.tuning.Configuration`` — the
        configuration's storage parameters are applied to the
        conversion (execution-only knobs like CSR ``lanes`` are
        validated but do not change the stored data).
    params:
        Uniform tuning-knob mapping, consistent with
        ``repro.tuning.Configuration`` (merged over parameters carried
        by ``name``); forwarded to ``from_coo(params=...)`` for the
        parameterised formats.
    **kwargs:
        Format-specific construction options (e.g. ``threshold`` for
        HYB, ``omega``/``sigma`` for CSR5, ``partitions`` for merge
        CSR, ``max_padding_ratio`` for ELL).  These ad-hoc spellings
        delegate to the same ``from_coo`` knobs ``params`` feeds.

    Raises
    ------
    KeyError
        If ``name`` is not a registered format.
    repro.formats.base.FormatError
        If the conversion is structurally infeasible (e.g. ELL padding
        guard tripped).
    """
    if not isinstance(name, str) or "?" in name:
        from .. import tuning

        config = tuning.coerce(name)
        merged = dict(config.non_default_params)
        if params:
            merged.update(params)
        name, params = config.format, merged
    try:
        target = FORMATS[name]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; expected one of {sorted(FORMATS)}"
        ) from None
    if params:
        if name in _PARAM_FORMATS:
            kwargs = dict(kwargs, params=params)
        else:
            from .. import tuning

            # Validate names/values; execution-only knobs (CSR lanes)
            # leave the stored data unchanged.
            tuning.Configuration(name, params)
    if isinstance(matrix, target) and not kwargs:
        return matrix
    coo = matrix.to_coo()
    return target.from_coo(coo, **kwargs)
