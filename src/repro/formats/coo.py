"""COO (coordinate) sparse-matrix format.

COO stores three parallel dense arrays — row indices, column indices and
values — one entry per structural non-zero (paper Sec. II-A.1,
Fig. 1(a)).  It is the canonical interchange format in this package:
every other format converts through it.

The GPU kernel modelled here is Bell & Garland's segmented-reduction
COO SpMV: every non-zero's product is computed by an independent thread
and contributions belonging to the same row are combined with a
segmented reduction, which makes performance almost insensitive to the
sparsity structure (excellent load balance) at the cost of streaming an
extra row-index array and performing inter-thread reduction work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)

__all__ = ["COOMatrix"]


class COOMatrix(SparseFormat):
    """Coordinate-format sparse matrix (canonical interchange format).

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the logical matrix.
    row, col:
        Integer index arrays of equal length ``nnz``.
    val:
        Value array of the same length, ``float32`` or ``float64``.
    canonical:
        If True (default) the entries are sorted row-major
        (row, then column) and duplicate coordinates are summed, which
        is the invariant the rest of the package relies on.  Pass False
        only when the caller guarantees canonical order already.

    Notes
    -----
    All arrays are stored read-only; the constructor copies only when
    sorting or deduplication is actually required.
    """

    name = "coo"

    def __init__(
        self,
        shape: Tuple[int, int],
        row: np.ndarray,
        col: np.ndarray,
        val: np.ndarray,
        *,
        canonical: bool = True,
    ) -> None:
        self.shape = check_shape(shape)
        row = np.asarray(row, dtype=INDEX_DTYPE)
        col = np.asarray(col, dtype=INDEX_DTYPE)
        val = np.asarray(val)
        if val.dtype not in (np.float32, np.float64):
            val = val.astype(np.float64)
        if not (row.ndim == col.ndim == val.ndim == 1):
            raise FormatError("row, col and val must be 1-D arrays")
        if not (row.shape == col.shape == val.shape):
            raise FormatError(
                f"row/col/val length mismatch: {row.shape}, {col.shape}, {val.shape}"
            )
        if row.size:
            if row.min(initial=0) < 0 or col.min(initial=0) < 0:
                raise FormatError("negative indices are not allowed")
            if row.max(initial=-1) >= self.shape[0]:
                raise FormatError(
                    f"row index {row.max()} out of bounds for {self.shape[0]} rows"
                )
            if col.max(initial=-1) >= self.shape[1]:
                raise FormatError(
                    f"column index {col.max()} out of bounds for {self.shape[1]} columns"
                )
        if canonical:
            row, col, val = _canonicalise(self.shape, row, col, val)
        self.row = _freeze(row)
        self.col = _freeze(col)
        self.val = _freeze(val)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "COOMatrix":
        """Identity conversion (shared, the arrays are immutable)."""
        return coo

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype: Optional[np.dtype] = None) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise FormatError("from_dense expects a 2-D array")
        row, col = np.nonzero(dense)
        val = dense[row, col]
        if dtype is not None:
            val = val.astype(dtype)
        return cls(dense.shape, row, col, val)

    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=np.float64) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.zeros(0)
        return cls(shape, z, z, z.astype(dtype))

    def to_coo(self) -> "COOMatrix":
        return self

    def astype(self, dtype) -> "COOMatrix":
        """Return a copy with values cast to ``dtype`` (``float32``/``float64``)."""
        dtype = np.dtype(dtype)
        if dtype == self.val.dtype:
            return self
        return COOMatrix(
            self.shape, self.row, self.col, self.val.astype(dtype), canonical=False
        )

    # -- metadata -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.val.size)

    @property
    def dtype(self) -> np.dtype:
        return self.val.dtype

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries in each row (length ``n_rows``)."""
        return np.bincount(self.row, minlength=self.n_rows).astype(np.int64)

    def memory_bytes(self) -> int:
        """COO stores row + col indices and values for every non-zero."""
        return self.nnz * (2 * INDEX_BYTES + self.dtype.itemsize)

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Segmented-reduction COO SpMV (Bell & Garland).

        Every non-zero contributes ``val * x[col]``; contributions are
        reduced per row.  ``np.add.at`` is the numpy rendering of the
        atomics/segmented-scan combination used on the GPU.
        """
        x = check_vector(x, self.n_cols, self.dtype)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        if self.nnz:
            products = self.val * x[self.col]
            # Canonical order means equal rows are contiguous: reduceat is
            # the segmented reduction.  Fall back to add.at for safety when
            # the invariant cannot be assumed (never in practice).
            np.add.at(y, self.row, products)
        return y

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        # Duplicates were summed at construction; direct assignment is safe.
        dense[self.row, self.col] = self.val
        return dense

    # -- structural transforms -------------------------------------------

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (canonicalised)."""
        return COOMatrix((self.n_cols, self.n_rows), self.col, self.row, self.val)

    def select_rows(self, mask: np.ndarray) -> "COOMatrix":
        """Extract the sub-matrix of rows where ``mask`` is True.

        Row indices are *not* compacted — the result has the same shape —
        which is exactly the slicing HYB needs to split rows between its
        ELL and COO parts.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise FormatError("row mask must have one entry per row")
        keep = mask[self.row]
        return COOMatrix(
            self.shape, self.row[keep], self.col[keep], self.val[keep], canonical=False
        )


def _canonicalise(
    shape: Tuple[int, int], row: np.ndarray, col: np.ndarray, val: np.ndarray
):
    """Sort entries row-major and sum duplicate coordinates."""
    if row.size == 0:
        return row, col, val
    # Single-key lexsort via a fused 64-bit key is measurably faster than
    # np.lexsort for the corpus sizes used here.
    key = row.astype(np.int64) * shape[1] + col.astype(np.int64)
    order = np.argsort(key, kind="stable")
    key = key[order]
    row, col, val = row[order], col[order], val[order]
    dup = np.zeros(key.size, dtype=bool)
    dup[1:] = key[1:] == key[:-1]
    if dup.any():
        # Collapse runs of equal coordinates, summing their values.
        starts = np.flatnonzero(~dup)
        val = np.add.reduceat(val, starts)
        row, col = row[starts], col[starts]
    return row, col, val
