"""ELLPACK (ELL) format.

ELL stores the matrix as two dense ``n_rows × K`` arrays — column
indices and values — where ``K`` is the maximum number of non-zeros in
any row; shorter rows are padded (paper Sec. II-A.3, Fig. 1(c)).  On
the GPU the arrays are laid out column-major so that thread ``i``
processing row ``i`` reads element ``[i, j]`` at step ``j`` and a warp's
loads coalesce perfectly.

The price is the padding: a single long row inflates storage (and the
bytes the kernel must stream) by ``K / nnz_mu``.  The
:attr:`ELLMatrix.padding_ratio` exposes this blow-up, and construction
can be guarded with ``max_padding_ratio`` so pathological matrices are
rejected the same way a real GPU run would fail to allocate.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)
from .coo import COOMatrix

__all__ = ["ELLMatrix"]

#: Column index stored in padding slots.  Kernels must skip it; we use a
#: sentinel rather than duplicating index 0 so corruption is detectable.
PAD_COL = INDEX_DTYPE(-1)


class ELLMatrix(SparseFormat):
    """ELLPACK matrix with ``n_rows × width`` padded storage.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    col_idx:
        ``(rows, width)`` int array; padding slots hold :data:`PAD_COL`.
    values:
        ``(rows, width)`` float array; padding slots hold ``0``.
    """

    name = "ell"

    def __init__(
        self, shape: Tuple[int, int], col_idx: np.ndarray, values: np.ndarray
    ) -> None:
        self.shape = check_shape(shape)
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        values = np.asarray(values)
        if values.dtype not in (np.float32, np.float64):
            values = values.astype(np.float64)
        if col_idx.ndim != 2 or values.ndim != 2 or col_idx.shape != values.shape:
            raise FormatError("col_idx and values must be equal-shape 2-D arrays")
        if col_idx.shape[0] != self.shape[0]:
            raise FormatError(
                f"ELL arrays must have one row per matrix row "
                f"({self.shape[0]}), got {col_idx.shape[0]}"
            )
        pad = col_idx == PAD_COL
        if col_idx.size and col_idx[~pad].size:
            live = col_idx[~pad]
            if live.min() < 0 or live.max() >= self.shape[1]:
                raise FormatError("column index out of bounds")
        if values[pad].any():
            raise FormatError("padding slots must store zero values")
        self.col_idx = _freeze(col_idx)
        self.values = _freeze(values)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        max_padding_ratio: Optional[float] = None,
        params: Optional[dict] = None,
    ) -> "ELLMatrix":
        """Pack a canonical COO matrix into ELL layout.

        Parameters
        ----------
        max_padding_ratio:
            If given, raise :class:`FormatError` when
            ``width * n_rows > max_padding_ratio * nnz`` — the analogue
            of an ELL allocation failing on device for wildly skewed
            matrices (the paper drops such cases from its dataset).
        params:
            Uniform tuning-knob mapping, consistent with
            ``repro.tuning.Configuration``: ``rows_per_thread``
            (execution-only chunking knob, recorded on the instance)
            and ``width_cap`` (raise :class:`FormatError` when the
            padded width exceeds it — the conversion-time twin of the
            executor's feasibility check).
        """
        params = dict(params or {})
        rpt = int(params.pop("rows_per_thread", 1))
        width_cap = params.pop("width_cap", None)
        if params:
            raise FormatError(f"unknown ELL parameters: {sorted(params)}")
        if rpt < 1:
            raise FormatError(f"rows_per_thread must be >= 1, got {rpt}")
        lengths = coo.row_lengths()
        width = int(lengths.max(initial=0))
        n_rows = coo.n_rows
        if max_padding_ratio is not None and coo.nnz:
            if width * n_rows > max_padding_ratio * coo.nnz:
                raise FormatError(
                    f"ELL padding ratio {width * n_rows / coo.nnz:.1f} exceeds "
                    f"limit {max_padding_ratio}"
                )
        if width_cap is not None and coo.nnz and width > int(width_cap):
            raise FormatError(
                f"ELL width {width} exceeds the configured width cap "
                f"{int(width_cap)}"
            )
        col_idx = np.full((n_rows, max(width, 1) if n_rows else 0), PAD_COL, dtype=INDEX_DTYPE)
        values = np.zeros_like(col_idx, dtype=coo.dtype)
        if coo.nnz:
            # Position of each nnz within its row: canonical order means
            # entries of a row are consecutive, so a per-row ramp works.
            starts = np.zeros(n_rows + 1, dtype=np.int64)
            np.cumsum(lengths, out=starts[1:])
            slot = np.arange(coo.nnz, dtype=np.int64) - starts[coo.row]
            col_idx[coo.row, slot] = coo.col
            values[coo.row, slot] = coo.val
        if width == 0:
            col_idx = col_idx[:, :0]
            values = values[:, :0]
        ell = cls(coo.shape, col_idx, values)
        ell._params = {
            "rows_per_thread": rpt,
            "width_cap": None if width_cap is None else int(width_cap),
        }
        return ell

    @property
    def params(self) -> dict:
        """Tuning parameters this instance was built with (defaults
        for instances constructed directly from arrays)."""
        return dict(
            getattr(self, "_params", None)
            or {"rows_per_thread": 1, "width_cap": None}
        )

    def to_coo(self) -> COOMatrix:
        live = self.col_idx != PAD_COL
        row, slot = np.nonzero(live)
        return COOMatrix(
            self.shape,
            row.astype(INDEX_DTYPE),
            self.col_idx[row, slot],
            self.values[row, slot],
            canonical=False,
        )

    # -- metadata -------------------------------------------------------

    @property
    def width(self) -> int:
        """Padded row width ``K`` (the maximum row population)."""
        return int(self.col_idx.shape[1])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col_idx != PAD_COL))

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def padding_ratio(self) -> float:
        """Stored slots (rows × width) per structural non-zero; ≥ 1."""
        nnz = self.nnz
        if nnz == 0:
            return 1.0
        return self.col_idx.size / nnz

    def memory_bytes(self) -> int:
        """Padded index + value planes — padding is streamed too."""
        return self.col_idx.size * (INDEX_BYTES + self.dtype.itemsize)

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Column-major traversal: step ``j`` processes slot ``j`` of all rows.

        This mirrors the GPU kernel where at each step the warp reads one
        fully coalesced column of the ELL arrays; padding lanes multiply
        by zero, exactly like the device code's predicated loads.
        """
        x = check_vector(x, self.n_cols, self.dtype)
        if self.width == 0:
            return np.zeros(self.n_rows, dtype=self.dtype)
        gather_idx = np.where(self.col_idx == PAD_COL, 0, self.col_idx)
        # One fused gather+multiply per slot column keeps peak memory at
        # O(rows) rather than materialising the full padded product plane.
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for j in range(self.width):
            y += self.values[:, j] * x[gather_idx[:, j]]
        return y
