"""CSR (compressed sparse row) format.

CSR compresses COO's row-index array into a row-pointer array of length
``n_rows + 1`` whose consecutive differences give each row's population
(paper Sec. II-A.2, Fig. 1(b)).  It is the most widely used sparse
format and the baseline for the advanced formats (CSR5 and merge-based
CSR reuse its arrays).

Two GPU parallelisations exist and both are modelled by the simulator:

* *scalar CSR* — one thread per row; uncoalesced column/value access,
  divergence when row lengths vary;
* *vector CSR* — one warp per row; coalesced access but wasted lanes on
  short rows.

``spmv`` here computes the exact product with a row-segmented reduction
(`np.add.reduceat`), matching either decomposition functionally.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)
from .coo import COOMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseFormat):
    """Compressed-sparse-row matrix.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    indptr:
        Row-pointer array of length ``rows + 1``; ``indptr[i]:indptr[i+1]``
        delimits row ``i``'s slice of ``indices``/``data``.
    indices:
        Column indices, length ``nnz``; must be sorted within each row.
    data:
        Non-zero values, length ``nnz``.
    """

    name = "csr"

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            data = data.astype(np.float64)
        if indptr.ndim != 1 or indptr.size != self.shape[0] + 1:
            raise FormatError(
                f"indptr must have length rows+1 = {self.shape[0] + 1}, got {indptr.size}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.size != data.size:
            raise FormatError("indices and data must have equal length")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.shape[1]
        ):
            raise FormatError("column index out of bounds")
        self.indptr = _freeze(indptr)
        self.indices = _freeze(indices)
        self.data = _freeze(data)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Compress a canonical COO matrix; O(nnz + rows)."""
        counts = np.bincount(coo.row, minlength=coo.n_rows)
        indptr = np.zeros(coo.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Canonical COO is already row-major sorted, so indices/data are
        # shared without copying.
        return cls(coo.shape, indptr, coo.col, coo.val)

    def to_coo(self) -> COOMatrix:
        row = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, row, self.indices, self.data, canonical=False)

    # -- metadata -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def row_lengths(self) -> np.ndarray:
        """Entries per row, length ``n_rows``."""
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """Values + column indices + the (rows+1) row-pointer array."""
        return (
            self.nnz * (INDEX_BYTES + self.dtype.itemsize)
            + (self.n_rows + 1) * INDEX_BYTES
        )

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Row-wise SpMV: per-row dot products via a segmented reduction."""
        x = check_vector(x, self.n_cols, self.dtype)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        if self.nnz == 0:
            return y
        products = self.data * x[self.indices]
        starts = self.indptr[:-1]
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            # reduceat needs strictly valid segment starts; empty rows are
            # skipped and left at zero.
            y[nonempty] = np.add.reduceat(products, starts[nonempty])
        return y

    def row_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i`` — zero-copy views."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]
