"""HYB (hybrid ELL + COO) format.

HYB splits each row at a threshold ``k``: the first ``k`` entries of
every row go into a regular ELL part (width ``k``), the spill-over goes
into a COO part (paper Sec. II-A.4).  It thus combines ELL's coalesced,
balanced access for the "typical" prefix of each row with COO's
structure insensitivity for the heavy tail.

The paper uses the *mean non-zeros per row* (``nnz_mu``) as the split
threshold rather than cuSPARSE's ``max(4096, rows/3)`` histogram rule;
both policies are provided, with the paper's as the default.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .base import FormatError, SparseFormat, check_shape, check_vector
from .coo import COOMatrix
from .ell import ELLMatrix

__all__ = ["HYBMatrix", "mu_threshold", "histogram_threshold"]


def mu_threshold(coo: COOMatrix) -> int:
    """The paper's split rule: the (ceil of the) mean nnz per row."""
    if coo.n_rows == 0 or coo.nnz == 0:
        return 0
    return max(1, math.ceil(coo.nnz / coo.n_rows))


def histogram_threshold(coo: COOMatrix) -> int:
    """cuSPARSE-style rule: widest ``k`` covering all but ``rows/3`` spills.

    Chooses the largest width ``k`` such that fewer than
    ``max(4096, rows/3)`` rows have more than ``k`` entries, i.e. the COO
    part stays small unless the tail is genuinely heavy.
    """
    if coo.n_rows == 0 or coo.nnz == 0:
        return 0
    lengths = coo.row_lengths()
    budget = max(4096, coo.n_rows // 3)
    # rows_longer_than[k] = number of rows with length > k, via a reverse
    # cumulative histogram.
    hist = np.bincount(lengths)
    rows_longer = coo.n_rows - np.cumsum(hist)
    candidates = np.flatnonzero(rows_longer <= budget)
    return int(candidates[0]) if candidates.size else int(lengths.max())


class HYBMatrix(SparseFormat):
    """Hybrid ELL/COO matrix.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    ell:
        The width-``k`` regular part (same shape as the full matrix;
        rows shorter than ``k`` are padded inside the ELL part).
    coo:
        Spill-over entries (same shape, only rows longer than ``k``
        contribute).
    """

    name = "hyb"

    def __init__(self, shape: Tuple[int, int], ell: ELLMatrix, coo: COOMatrix) -> None:
        self.shape = check_shape(shape)
        if ell.shape != self.shape or coo.shape != self.shape:
            raise FormatError("ELL and COO parts must share the full matrix shape")
        if ell.dtype != coo.dtype:
            raise FormatError("ELL and COO parts must share a dtype")
        self.ell = ell
        self.coo = coo

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        threshold: Optional[int] = None,
        params: Optional[dict] = None,
    ) -> "HYBMatrix":
        """Split a canonical COO matrix at ``threshold`` entries per row.

        ``threshold=None`` applies the paper's ``nnz_mu`` rule.  The
        uniform tuning-knob mapping ``params`` accepts ``split``, a
        multiplier on the mean-row-length rule
        (``k = max(1, ceil(split * nnz / n_rows))``, matching
        ``repro.tuning``); passing both ``threshold`` and a ``split``
        raises, since they set the same knob.
        """
        params = dict(params or {})
        split = params.pop("split", None)
        if params:
            raise FormatError(f"unknown HYB parameters: {sorted(params)}")
        if split is not None:
            if threshold is not None:
                raise FormatError(
                    "pass either threshold= or params={'split': ...}, not both"
                )
            split = float(split)
            if split <= 0:
                raise FormatError(f"split must be > 0, got {split}")
            if coo.n_rows > 0 and coo.nnz > 0:
                threshold = max(1, math.ceil(split * coo.nnz / coo.n_rows))
            else:
                threshold = 0
        k = mu_threshold(coo) if threshold is None else int(threshold)
        if k < 0:
            raise FormatError(f"threshold must be non-negative, got {k}")
        if coo.nnz == 0:
            return cls(coo.shape, ELLMatrix.from_coo(coo), coo)
        lengths = coo.row_lengths()
        starts = np.zeros(coo.n_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        slot = np.arange(coo.nnz, dtype=np.int64) - starts[coo.row]
        in_ell = slot < k
        ell_part = COOMatrix(
            coo.shape,
            coo.row[in_ell],
            coo.col[in_ell],
            coo.val[in_ell],
            canonical=False,
        )
        coo_part = COOMatrix(
            coo.shape,
            coo.row[~in_ell],
            coo.col[~in_ell],
            coo.val[~in_ell],
            canonical=False,
        )
        hyb = cls(coo.shape, ELLMatrix.from_coo(ell_part), coo_part)
        # Explicit thresholds override the split rule, so no split value
        # describes them; record None in that case.
        hyb._params = {
            "split": split if split is not None
            else (1.0 if threshold is None else None)
        }
        return hyb

    @property
    def params(self) -> dict:
        """Tuning parameters this instance was built with (``split`` is
        ``None`` when an explicit ``threshold=`` overrode the rule)."""
        return dict(getattr(self, "_params", None) or {"split": 1.0})

    def to_coo(self) -> COOMatrix:
        ell_coo = self.ell.to_coo()
        return COOMatrix(
            self.shape,
            np.concatenate([ell_coo.row, self.coo.row]),
            np.concatenate([ell_coo.col, self.coo.col]),
            np.concatenate([ell_coo.val, self.coo.val]),
        )

    # -- metadata -------------------------------------------------------

    @property
    def threshold(self) -> int:
        """Effective split width (the ELL part's padded width)."""
        return self.ell.width

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.ell.dtype

    @property
    def coo_fraction(self) -> float:
        """Fraction of non-zeros that spilled into the COO part."""
        total = self.nnz
        return self.coo.nnz / total if total else 0.0

    def memory_bytes(self) -> int:
        return self.ell.memory_bytes() + self.coo.memory_bytes()

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Two kernel launches on device: ELL pass then COO pass."""
        x = check_vector(x, self.n_cols, self.dtype)
        y = self.ell.spmv(x)
        y += self.coo.spmv(x)
        return y
