"""BSR (block compressed sparse row) — extension format.

BSR is CSR over dense ``r × c`` blocks: one column index per *block*
instead of per element, and contiguous dense blocks that SpMV can
process with coalesced loads and register-blocked arithmetic.  Zhao et
al. (the CNN-based selector the paper compares against) include BSR in
their GPU format set, which is why it joins the extended study here.

BSR shines on FEM-like matrices whose non-zeros naturally cluster into
small dense blocks; on unstructured matrices the zero-fill inside
blocks wastes bandwidth exactly like ELL padding does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)
from .coo import COOMatrix

__all__ = ["BSRMatrix"]


class BSRMatrix(SparseFormat):
    """Block-CSR matrix with fixed ``block_shape`` dense blocks.

    Parameters
    ----------
    shape:
        Logical ``(rows, cols)`` — need not be block-aligned; trailing
        partial blocks are zero-filled.
    indptr:
        Block-row pointer, length ``n_block_rows + 1``.
    indices:
        Block column indices per stored block.
    blocks:
        ``(n_blocks, r, c)`` dense block values.
    block_shape:
        ``(r, c)`` block dimensions.
    """

    name = "bsr"

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        blocks: np.ndarray,
        block_shape: Tuple[int, int] = (4, 4),
    ) -> None:
        self.shape = check_shape(shape)
        r, c = map(int, block_shape)
        if r <= 0 or c <= 0:
            raise FormatError("block dimensions must be positive")
        self.block_shape = (r, c)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        blocks = np.asarray(blocks)
        if blocks.dtype not in (np.float32, np.float64):
            blocks = blocks.astype(np.float64)
        n_brows = -(-self.shape[0] // r)
        n_bcols = -(-self.shape[1] // c)
        if indptr.size != n_brows + 1:
            raise FormatError(f"indptr must have length {n_brows + 1}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise FormatError("indptr must start at 0 and end at n_blocks")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if blocks.shape != (indices.size, r, c):
            raise FormatError(
                f"blocks must be (n_blocks, {r}, {c}), got {blocks.shape}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= n_bcols):
            raise FormatError("block column index out of bounds")
        self.indptr = _freeze(indptr)
        self.indices = _freeze(indices)
        self.blocks = _freeze(blocks)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        block_shape: Optional[Tuple[int, int]] = None,
        params: Optional[dict] = None,
    ) -> "BSRMatrix":
        """Block the matrix into ``block_shape`` tiles (default 4x4).

        ``block_shape`` may equivalently be passed through the uniform
        tuning-knob mapping ``params`` (consistent with
        ``repro.tuning.Configuration``); passing both raises.
        """
        params = dict(params or {})
        shape_param = params.pop("block_shape", None)
        if params:
            raise FormatError(f"unknown BSR parameters: {sorted(params)}")
        if shape_param is not None:
            if block_shape is not None:
                raise FormatError(
                    "pass either block_shape= or params={'block_shape': ...}, "
                    "not both"
                )
            block_shape = tuple(shape_param)
        if block_shape is None:
            block_shape = (4, 4)
        r, c = map(int, block_shape)
        if r <= 0 or c <= 0:
            raise FormatError("block dimensions must be positive")
        n_brows = -(-coo.n_rows // r)
        n_bcols = -(-coo.n_cols // c)
        if coo.nnz == 0:
            return cls(
                coo.shape,
                np.zeros(n_brows + 1, np.int64),
                np.zeros(0, INDEX_DTYPE),
                np.zeros((0, r, c), dtype=coo.dtype),
                (r, c),
            )
        brow = coo.row.astype(np.int64) // r
        bcol = coo.col.astype(np.int64) // c
        key = brow * n_bcols + bcol
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        starts = np.flatnonzero(
            np.concatenate(([True], key_sorted[1:] != key_sorted[:-1]))
        )
        block_keys = key_sorted[starts]
        n_blocks = block_keys.size
        block_of_entry = np.searchsorted(block_keys, key)
        blocks = np.zeros((n_blocks, r, c), dtype=coo.dtype)
        blocks[
            block_of_entry,
            coo.row.astype(np.int64) % r,
            coo.col.astype(np.int64) % c,
        ] = coo.val
        b_rows = (block_keys // n_bcols).astype(np.int64)
        indices = (block_keys % n_bcols).astype(INDEX_DTYPE)
        counts = np.bincount(b_rows, minlength=n_brows)
        indptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(coo.shape, indptr, indices, blocks, (r, c))

    def to_coo(self) -> COOMatrix:
        r, c = self.block_shape
        if self.n_blocks == 0:
            return COOMatrix.empty(self.shape, dtype=self.dtype)
        brow = np.repeat(
            np.arange(self.indptr.size - 1, dtype=np.int64), np.diff(self.indptr)
        )
        bi, ri, ci = np.nonzero(self.blocks)
        rows = brow[bi] * r + ri
        cols = self.indices.astype(np.int64)[bi] * c + ci
        keep = (rows < self.n_rows) & (cols < self.n_cols)
        return COOMatrix(self.shape, rows[keep], cols[keep], self.blocks[bi, ri, ci][keep])

    # -- metadata -------------------------------------------------------

    @property
    def params(self) -> dict:
        """Tuning parameters, uniform with ``repro.tuning`` (derived
        from the stored block shape, so always accurate)."""
        return {"block_shape": self.block_shape}

    @property
    def n_blocks(self) -> int:
        """Number of stored (possibly partially filled) blocks."""
        return int(self.indices.size)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.blocks))

    @property
    def dtype(self) -> np.dtype:
        return self.blocks.dtype

    @property
    def fill_ratio(self) -> float:
        """Stored slots per structural non-zero (block zero-fill, >= 1)."""
        nnz = self.nnz
        return self.blocks.size / nnz if nnz else 1.0

    def memory_bytes(self) -> int:
        """Dense blocks + one column index per block + block-row pointer."""
        r, c = self.block_shape
        return (
            self.blocks.size * self.dtype.itemsize
            + self.n_blocks * INDEX_BYTES
            + self.indptr.size * INDEX_BYTES
        )

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Block-row SpMV: dense (r x c) @ (c,) products, then row sums."""
        x = check_vector(x, self.n_cols, self.dtype)
        r, c = self.block_shape
        n_brows = self.indptr.size - 1
        pad_cols = n_brows and (-self.n_cols) % c
        x_pad = np.concatenate([x, np.zeros((-self.n_cols) % c, dtype=self.dtype)])
        y_pad = np.zeros(n_brows * r, dtype=self.dtype)
        if self.n_blocks:
            # Gather each block's x-slice, batched matvec over all blocks.
            xs = x_pad.reshape(-1, c)[self.indices]          # (n_blocks, c)
            prod = np.einsum("brc,bc->br", self.blocks, xs)  # (n_blocks, r)
            brow = np.repeat(
                np.arange(n_brows, dtype=np.int64), np.diff(self.indptr)
            )
            np.add.at(y_pad.reshape(-1, r), brow, prod)
        return y_pad[: self.n_rows]
