"""CSR5 format (Liu & Vinter, ICS 2015).

CSR5 augments CSR with two tile-level metadata arrays so that SpMV can
be load-balanced at non-zero granularity (paper Sec. II-A.5,
Fig. 1(d)).  The non-zeros are partitioned into 2-D tiles of
``omega × sigma`` elements (``omega`` SIMD lanes, ``sigma`` steps per
lane); within a tile the values and column indices are stored
*transposed* (lane-major) so a warp's loads coalesce, and per-tile
descriptors record where rows start and stop inside the tile:

* ``tile_ptr``  — the row index of the first element of every tile,
* ``tile_desc`` — per-tile ``y_offset`` / ``seg_offset`` words plus a
  ``bit_flag`` marking row boundaries within the tile (stored here as a
  packed bit array, exactly the footprint the real format pays).

Because work is partitioned over non-zeros, performance is largely
insensitive to the row-length distribution — the property the paper's
classifier has to weigh against the format's tile bookkeeping overhead
on small matrices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["CSR5Matrix", "DEFAULT_OMEGA", "DEFAULT_SIGMA"]

#: Default tile width (SIMD lanes).  32 matches an NVIDIA warp.
DEFAULT_OMEGA = 32
#: Default tile depth (elements per lane), the value CSR5 auto-tunes to
#: on Kepler/Pascal-class parts.
DEFAULT_SIGMA = 16


class CSR5Matrix(SparseFormat):
    """CSR5 matrix: CSR arrays + transposed tiles + tile descriptors.

    Construction partitions the CSR non-zero stream into
    ``omega * sigma``-element tiles, transposes each full tile in
    storage, and derives the descriptor metadata.  The trailing partial
    tile (if any) stays in row-major order, as in the reference
    implementation.
    """

    name = "csr5"

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        tile_col: np.ndarray,
        tile_val: np.ndarray,
        perm: np.ndarray,
        tile_ptr: np.ndarray,
        bit_flag: np.ndarray,
        y_offset: np.ndarray,
        omega: int,
        sigma: int,
    ) -> None:
        self.shape = check_shape(shape)
        self.indptr = _freeze(np.asarray(indptr, dtype=np.int64))
        self.tile_col = _freeze(np.asarray(tile_col, dtype=INDEX_DTYPE))
        tile_val = np.asarray(tile_val)
        if tile_val.dtype not in (np.float32, np.float64):
            tile_val = tile_val.astype(np.float64)
        self.tile_val = _freeze(tile_val)
        self.perm = _freeze(np.asarray(perm, dtype=np.int64))
        self.tile_ptr = _freeze(np.asarray(tile_ptr, dtype=np.int64))
        self.bit_flag = _freeze(np.asarray(bit_flag, dtype=np.uint8))
        self.y_offset = _freeze(np.asarray(y_offset, dtype=np.int64))
        if omega <= 0 or sigma <= 0:
            raise FormatError("omega and sigma must be positive")
        self.omega = int(omega)
        self.sigma = int(sigma)
        if self.tile_col.shape != self.tile_val.shape or self.tile_col.ndim != 1:
            raise FormatError("tile_col and tile_val must be equal-length 1-D arrays")
        if self.perm.shape != self.tile_col.shape:
            raise FormatError("perm must map every stored element")
        if self.indptr.size != self.shape[0] + 1:
            raise FormatError("indptr must have length rows+1")

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        omega: int = DEFAULT_OMEGA,
        sigma: int = DEFAULT_SIGMA,
    ) -> "CSR5Matrix":
        csr = CSRMatrix.from_coo(coo)
        return cls.from_csr(csr, omega=omega, sigma=sigma)

    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        *,
        omega: int = DEFAULT_OMEGA,
        sigma: int = DEFAULT_SIGMA,
    ) -> "CSR5Matrix":
        """Tile and transpose a CSR matrix into CSR5 storage."""
        if omega <= 0 or sigma <= 0:
            raise FormatError("omega and sigma must be positive")
        nnz = csr.nnz
        tile_elems = omega * sigma
        n_full = nnz // tile_elems

        # perm[i] = CSR position of storage slot i.  Full tiles are
        # transposed: within tile t, storage slot (lane, step) holds CSR
        # element t*tile_elems + step*omega... no — lane-major storage of a
        # row-major stream means slot (step, lane) <- csr[t*E + lane*sigma
        # + step].  The reference lays each lane's sigma elements down a
        # column; transposing the (omega, sigma) block yields that order.
        perm = np.arange(nnz, dtype=np.int64)
        if n_full:
            body = perm[: n_full * tile_elems].reshape(n_full, omega, sigma)
            perm = np.concatenate(
                [body.transpose(0, 2, 1).reshape(-1), perm[n_full * tile_elems :]]
            )

        tile_col = csr.indices[perm]
        tile_val = csr.data[perm]

        n_tiles = (nnz + tile_elems - 1) // tile_elems
        # tile_ptr[t]: row containing the first CSR element of tile t.
        first_elem = np.arange(n_tiles, dtype=np.int64) * tile_elems
        tile_ptr = np.searchsorted(csr.indptr[1:], first_elem, side="right")
        tile_ptr = np.concatenate([tile_ptr, [csr.n_rows]]).astype(np.int64)

        # bit_flag: one bit per stored element (packed), set where a CSR
        # row starts.  Derived in CSR order then permuted to storage order.
        row_start_csr = np.zeros(nnz, dtype=bool)
        starts = csr.indptr[:-1][np.diff(csr.indptr) > 0]
        row_start_csr[starts] = True
        bit_flag = np.packbits(row_start_csr[perm]) if nnz else np.zeros(0, np.uint8)

        # y_offset[t]: rows completed before tile t within tile_ptr[t]'s
        # span — the partial-sum slot each tile writes first.  For the
        # functional kernel we store the count of row starts preceding the
        # tile, which plays the same role.
        starts_cum = np.concatenate([[0], np.cumsum(row_start_csr)])
        y_offset = starts_cum[np.minimum(first_elem, nnz)] if nnz else np.zeros(0, np.int64)

        return cls(
            csr.shape,
            csr.indptr,
            tile_col,
            tile_val,
            perm,
            tile_ptr,
            bit_flag,
            y_offset.astype(np.int64),
            omega,
            sigma,
        )

    def to_coo(self) -> COOMatrix:
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.perm.size)
        indices = self.tile_col[inv]
        data = self.tile_val[inv]
        row = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, row, indices, data, canonical=False)

    # -- metadata -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.tile_val.size)

    @property
    def dtype(self) -> np.dtype:
        return self.tile_val.dtype

    @property
    def n_tiles(self) -> int:
        """Number of ``omega × sigma`` tiles (incl. the partial tail)."""
        return max(0, int(self.tile_ptr.size) - 1)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """CSR footprint + tile_ptr + descriptors (bit_flag, offsets)."""
        csr_bytes = (
            self.nnz * (INDEX_BYTES + self.dtype.itemsize)
            + (self.n_rows + 1) * INDEX_BYTES
        )
        desc_bytes = self.bit_flag.size + 2 * self.y_offset.size * INDEX_BYTES
        return csr_bytes + self.tile_ptr.size * INDEX_BYTES + desc_bytes

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Tile-parallel SpMV with per-tile segmented sums.

        Each tile forms its products from the transposed storage, reduces
        the segments marked in ``bit_flag`` and emits partial sums; row
        fragments crossing tile boundaries are combined in the CSR-order
        reduction, which is the numpy rendering of CSR5's cross-tile
        "calibration" step.
        """
        x = check_vector(x, self.n_cols, self.dtype)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        nnz = self.nnz
        if nnz == 0:
            return y
        products_storage = self.tile_val * x[self.tile_col]
        # Undo the tile transposition so segments are contiguous, then do
        # one segmented reduction over row starts — mathematically the sum
        # of all per-tile partials plus calibration.
        products = np.empty_like(products_storage)
        products[self.perm] = products_storage
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            y[nonempty] = np.add.reduceat(products, self.indptr[:-1][nonempty])
        return y
