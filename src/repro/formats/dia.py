"""DIA (diagonal) format — extension beyond the paper's six formats.

DIA stores the matrix as a dense ``n_diags × n_rows`` plane of values
plus an offsets array, one entry per occupied diagonal (Bell & Garland;
the format the paper's related work evaluates on CPUs, Zhao et al.).
It is unbeatable for banded/stencil matrices — the x-gather is
perfectly streaming — and catastrophic for anything unstructured, which
makes it a sharp extra class for the extended format-selection study
(see ``benchmarks/test_ablation_extended_formats.py``).

Construction is guarded by ``max_fill_ratio`` because an unstructured
matrix can occupy O(rows + cols) diagonals.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    FormatError,
    SparseFormat,
    _freeze,
    check_shape,
    check_vector,
)
from .coo import COOMatrix

__all__ = ["DIAMatrix"]


class DIAMatrix(SparseFormat):
    """Diagonal-format sparse matrix.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    offsets:
        Sorted 1-D array of occupied diagonal offsets
        (``col - row``; 0 = main diagonal, positive = super-diagonals).
    data:
        ``(n_diags, rows)`` value plane; ``data[d, i]`` is the entry at
        ``(i, i + offsets[d])`` (zero where that cell is off-matrix or
        structurally zero).
    """

    name = "dia"

    def __init__(
        self, shape: Tuple[int, int], offsets: np.ndarray, data: np.ndarray
    ) -> None:
        self.shape = check_shape(shape)
        offsets = np.asarray(offsets, dtype=np.int64)
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            data = data.astype(np.float64)
        if offsets.ndim != 1:
            raise FormatError("offsets must be 1-D")
        if np.any(np.diff(offsets) <= 0):
            raise FormatError("offsets must be strictly increasing")
        if offsets.size and (
            offsets.min() <= -self.shape[0] or offsets.max() >= self.shape[1]
        ):
            raise FormatError("offset outside the matrix")
        if data.shape != (offsets.size, self.shape[0]):
            raise FormatError(
                f"data must be (n_diags, rows) = {(offsets.size, self.shape[0])}, "
                f"got {data.shape}"
            )
        # Cells outside the logical matrix must hold zero.
        for d, off in enumerate(offsets):
            cols = np.arange(self.shape[0], dtype=np.int64) + off
            outside = (cols < 0) | (cols >= self.shape[1])
            if data[d, outside].any():
                raise FormatError(f"diagonal {off} stores values outside the matrix")
        self.offsets = _freeze(offsets)
        self.data = _freeze(data)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, *, max_fill_ratio: Optional[float] = None
    ) -> "DIAMatrix":
        """Pack a COO matrix into DIA.

        Parameters
        ----------
        max_fill_ratio:
            Reject matrices whose DIA plane would store more than this
            many slots per non-zero (analogue of the ELL padding guard).
        """
        offs = np.unique(coo.col.astype(np.int64) - coo.row.astype(np.int64))
        n_diags = int(offs.size)
        if max_fill_ratio is not None and coo.nnz:
            slots = n_diags * coo.n_rows
            if slots > max_fill_ratio * coo.nnz:
                raise FormatError(
                    f"DIA fill ratio {slots / coo.nnz:.1f} exceeds limit "
                    f"{max_fill_ratio:g}"
                )
        data = np.zeros((n_diags, coo.n_rows), dtype=coo.dtype)
        if coo.nnz:
            diag_idx = np.searchsorted(offs, coo.col.astype(np.int64) - coo.row)
            data[diag_idx, coo.row] = coo.val
        return cls(coo.shape, offs, data)

    def to_coo(self) -> COOMatrix:
        rows_idx = []
        cols_idx = []
        vals = []
        rows = np.arange(self.n_rows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            live = (cols >= 0) & (cols < self.n_cols) & (self.data[d] != 0)
            rows_idx.append(rows[live])
            cols_idx.append(cols[live])
            vals.append(self.data[d, live])
        if rows_idx:
            return COOMatrix(
                self.shape,
                np.concatenate(rows_idx),
                np.concatenate(cols_idx),
                np.concatenate(vals),
            )
        return COOMatrix.empty(self.shape, dtype=self.dtype)

    # -- metadata -------------------------------------------------------

    @property
    def n_diags(self) -> int:
        """Number of stored diagonals."""
        return int(self.offsets.size)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def fill_ratio(self) -> float:
        """Stored slots per structural non-zero (>= 1)."""
        nnz = self.nnz
        return self.data.size / nnz if nnz else 1.0

    def memory_bytes(self) -> int:
        """The dense diagonal plane plus the offsets array.

        No per-element column indices at all — DIA's defining advantage.
        """
        return self.data.size * self.dtype.itemsize + self.n_diags * INDEX_BYTES

    # -- behaviour ------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Diagonal-wise SpMV: one shifted AXPY per stored diagonal."""
        x = check_vector(x, self.n_cols, self.dtype)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for d, off in enumerate(self.offsets):
            # Row range whose column i+off is inside the matrix.
            lo = max(0, -off)
            hi = min(self.n_rows, self.n_cols - off)
            if hi > lo:
                y[lo:hi] += self.data[d, lo:hi] * x[lo + off : hi + off]
        return y
