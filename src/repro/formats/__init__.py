"""Sparse-matrix storage formats (paper Sec. II-A).

Six GPU storage formats implemented from scratch on numpy arrays:

============  =======================================  ====================
name          class                                    paper section
============  =======================================  ====================
``coo``       :class:`~repro.formats.coo.COOMatrix`        II-A.1
``csr``       :class:`~repro.formats.csr.CSRMatrix`        II-A.2
``ell``       :class:`~repro.formats.ell.ELLMatrix`        II-A.3
``hyb``       :class:`~repro.formats.hyb.HYBMatrix`        II-A.4
``csr5``      :class:`~repro.formats.csr5.CSR5Matrix`      II-A.5
``merge_csr`` :class:`~repro.formats.merge_csr.MergeCSRMatrix`  II-A.6
============  =======================================  ====================

Every class carries a functional ``spmv`` kernel mirroring the GPU
decomposition, conversion through canonical COO, and device-memory
accounting consumed by :mod:`repro.gpu`.
"""

from .base import (  # noqa: F401
    INDEX_BYTES,
    INDEX_DTYPE,
    PRECISION_DTYPES,
    FormatError,
    SparseFormat,
)
from .bsr import BSRMatrix  # noqa: F401
from .convert import (  # noqa: F401
    ADVANCED_FORMATS,
    BASIC_FORMATS,
    EXTENSION_FORMATS,
    FORMAT_NAMES,
    FORMATS,
    as_format,
)
from .coo import COOMatrix  # noqa: F401
from .dia import DIAMatrix  # noqa: F401
from .csr import CSRMatrix  # noqa: F401
from .csr5 import CSR5Matrix, DEFAULT_OMEGA, DEFAULT_SIGMA  # noqa: F401
from .ell import ELLMatrix, PAD_COL  # noqa: F401
from .hyb import HYBMatrix, histogram_threshold, mu_threshold  # noqa: F401
from .merge_csr import MergeCSRMatrix, merge_path_search  # noqa: F401

__all__ = [
    "SparseFormat",
    "FormatError",
    "INDEX_BYTES",
    "INDEX_DTYPE",
    "PRECISION_DTYPES",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "CSR5Matrix",
    "MergeCSRMatrix",
    "FORMATS",
    "FORMAT_NAMES",
    "BASIC_FORMATS",
    "ADVANCED_FORMATS",
    "EXTENSION_FORMATS",
    "DIAMatrix",
    "BSRMatrix",
    "as_format",
    "mu_threshold",
    "histogram_threshold",
    "merge_path_search",
    "PAD_COL",
    "DEFAULT_OMEGA",
    "DEFAULT_SIGMA",
]
