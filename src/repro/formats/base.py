"""Common machinery for sparse-matrix storage formats.

Every format in :mod:`repro.formats` derives from :class:`SparseFormat`
and provides

* construction from a canonical :class:`~repro.formats.coo.COOMatrix`
  (``from_coo``) and conversion back (``to_coo``),
* a functional SpMV kernel (``spmv``) that mirrors, in vectorised numpy,
  the parallel decomposition of the corresponding GPU kernel,
* device-memory accounting (``memory_bytes``) used by the GPU simulator
  to estimate data movement, and
* structural metadata (``shape``, ``nnz``, ``dtype``).

The formats are value types: all underlying arrays are created
read-only so instances can be shared freely between the executor, the
feature extractor and tests without defensive copies (see the
"views, not copies" guidance in the HPC-Python idioms this repo follows).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .coo import COOMatrix

#: numpy dtype used for all index arrays.  GPU SpMV libraries almost
#: universally use 32-bit indices; the simulator's byte accounting
#: relies on this value.
INDEX_DTYPE = np.int32

#: Number of bytes occupied by one index element on the device.
INDEX_BYTES = 4

#: Supported value dtypes, keyed by the paper's "precision" terminology.
PRECISION_DTYPES = {
    "single": np.float32,
    "double": np.float64,
}


class FormatError(ValueError):
    """Raised when a format is constructed from inconsistent arrays."""


def _freeze(a: np.ndarray) -> np.ndarray:
    """Return ``a`` as a C-contiguous, read-only array (no copy if possible)."""
    out = np.ascontiguousarray(a)
    if out is a and a.flags.writeable:
        # np.ascontiguousarray may return the input itself; never mutate a
        # caller-owned buffer, flag *our* view read-only instead.
        out = a.view()
    out.flags.writeable = False
    return out


def check_shape(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Validate and normalise a ``(rows, cols)`` shape tuple."""
    try:
        n_rows, n_cols = map(int, shape)
    except (TypeError, ValueError) as exc:  # not a 2-tuple of ints
        raise FormatError(f"shape must be a (rows, cols) pair, got {shape!r}") from exc
    if n_rows < 0 or n_cols < 0:
        raise FormatError(f"shape must be non-negative, got {shape!r}")
    return n_rows, n_cols


def check_vector(x: np.ndarray, n_cols: int, dtype: np.dtype) -> np.ndarray:
    """Validate the SpMV input vector and coerce it to the matrix dtype.

    Parameters
    ----------
    x:
        Dense input vector of length ``n_cols``.
    n_cols:
        Number of matrix columns.
    dtype:
        The matrix value dtype; ``x`` is converted to it so that mixed
        precision does not silently upcast the product.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise FormatError(f"SpMV input must be a 1-D vector, got ndim={x.ndim}")
    if x.shape[0] != n_cols:
        raise FormatError(
            f"SpMV dimension mismatch: matrix has {n_cols} columns, "
            f"vector has {x.shape[0]} entries"
        )
    return np.ascontiguousarray(x, dtype=dtype)


class SparseFormat(abc.ABC):
    """Abstract base class for sparse-matrix storage formats.

    Subclasses set the class attribute :attr:`name` to the lower-case
    format identifier used throughout the package (``"coo"``, ``"csr"``,
    ``"ell"``, ``"hyb"``, ``"csr5"``, ``"merge_csr"``).
    """

    #: Canonical lower-case name of the format (class attribute).
    name: str = "abstract"

    #: Matrix shape as ``(rows, cols)``.
    shape: Tuple[int, int]

    # -- construction -------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def from_coo(cls, coo: "COOMatrix") -> "SparseFormat":
        """Build this format from a canonical COO matrix."""

    @abc.abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert back to a canonical (row-major sorted) COO matrix."""

    # -- structural metadata ------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of matrix rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of matrix columns."""
        return self.shape[1]

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored (structurally non-zero) elements."""

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Value dtype (``float32`` or ``float64``)."""

    @property
    def precision(self) -> str:
        """``"single"`` or ``"double"``, per the paper's terminology."""
        return "single" if self.dtype == np.float32 else "double"

    # -- behaviour -----------------------------------------------------

    @abc.abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A @ x`` using this format's storage layout.

        The implementation follows the data-access pattern of the
        corresponding GPU kernel (e.g. row-per-thread for scalar CSR,
        tile-wise segmented sums for CSR5) expressed with vectorised
        numpy primitives, so it doubles as a functional model of the
        kernel for the execution simulator.
        """

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Device bytes occupied by the matrix data structures.

        This is the *stored* footprint — e.g. for ELL it includes the
        zero padding — and is the quantity the GPU simulator streams
        from DRAM.
        """

    # -- conveniences ---------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense 2-D array (testing helper)."""
        return self.to_coo().to_dense()

    def memory_ratio(self) -> float:
        """Stored bytes relative to an ideal CSR footprint.

        A value of ``1.0`` means "as compact as CSR"; ELL on a matrix
        with one long row can be orders of magnitude larger.  Used by
        the HYB split heuristic and by the ELL feasibility guard.
        """
        ideal = (
            self.nnz * (self.dtype.itemsize + INDEX_BYTES)
            + (self.n_rows + 1) * INDEX_BYTES
        )
        return self.memory_bytes() / max(ideal, 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.n_rows}x{self.n_cols} "
            f"nnz={self.nnz} dtype={np.dtype(self.dtype).name}>"
        )
