"""Merge-based CSR SpMV (Merrill & Garland, PPoPP 2016).

The merge-based algorithm keeps the *standard CSR arrays* (paper
Sec. II-A.6) but distributes work by logically merging two sorted lists

* ``A`` — the row-end offsets ``indptr[1:]`` (length ``n_rows``), and
* ``B`` — the natural numbers ``0..nnz-1`` (the non-zero indices),

into a path of length ``n_rows + nnz``.  Splitting that path into equal
segments gives every thread exactly the same amount of combined
row-bookkeeping + element work regardless of how skewed the row lengths
are.  Each thread runs a 2-D binary search ("merge-path search") along
its diagonal to find its starting ``(row, nnz)`` coordinate, consumes
its segment, and publishes a partial sum for the row it ends inside,
which a fix-up pass adds back.

:meth:`MergeCSRMatrix.spmv` implements exactly this decomposition —
including the diagonal search and the carry fix-up — so the partition
logic itself is under test (any partition count must give identical
results).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import INDEX_BYTES, FormatError, SparseFormat, check_shape, check_vector
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["MergeCSRMatrix", "merge_path_search"]

#: Default number of merge-path partitions used by :meth:`spmv`.  On the
#: GPU this is ``#threads``; functionally any positive value works.
DEFAULT_PARTITIONS = 64


def merge_path_search(diagonals: np.ndarray, indptr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Locate merge-path coordinates for the given diagonals.

    For each diagonal ``d`` (total consumed items), returns the pair
    ``(rows_consumed, nnz_consumed)`` with
    ``rows_consumed + nnz_consumed == d`` such that the first
    ``rows_consumed`` row-end offsets are all ``<=`` the first
    ``nnz_consumed`` element indices — the standard merge-path invariant
    (ties consume from the row list first, matching the reference
    implementation's ``<=`` comparison).

    Vectorised over ``diagonals``; each lookup is a binary search, i.e.
    O(log rows) per diagonal exactly like the GPU kernel.

    Parameters
    ----------
    diagonals:
        1-D int array of path positions in ``[0, rows + nnz]``.
    indptr:
        CSR row pointer (length ``rows + 1``).
    """
    diagonals = np.asarray(diagonals, dtype=np.int64)
    indptr = np.asarray(indptr, dtype=np.int64)
    n_rows = indptr.size - 1
    nnz = int(indptr[-1])
    if np.any(diagonals < 0) or np.any(diagonals > n_rows + nnz):
        raise FormatError("diagonal out of range")
    # rows_consumed = largest r with indptr[r] + r <= d (consuming a
    # row-end marker requires all of that row's elements consumed first).
    # The key array (indptr[r] + r for r = 1..n_rows) is sorted, so
    # searchsorted performs the classic diagonal binary search.
    key = indptr[1:] + np.arange(1, n_rows + 1, dtype=np.int64)
    rows_consumed = np.searchsorted(key, diagonals, side="right")
    nnz_consumed = diagonals - rows_consumed
    return rows_consumed.astype(np.int64), nnz_consumed.astype(np.int64)


class MergeCSRMatrix(SparseFormat):
    """CSR matrix executed with the merge-based SpMV decomposition.

    The storage is plain CSR (it shares the arrays with
    :class:`~repro.formats.csr.CSRMatrix`); only the execution schedule
    differs, which is why the paper treats "merge-based CSR" as a
    distinct *format choice* with its own performance profile.
    """

    name = "merge_csr"

    def __init__(self, csr: CSRMatrix, *, partitions: int = DEFAULT_PARTITIONS) -> None:
        if not isinstance(csr, CSRMatrix):
            raise FormatError("MergeCSRMatrix wraps a CSRMatrix")
        if partitions <= 0:
            raise FormatError("partitions must be positive")
        self.shape = check_shape(csr.shape)
        self.csr = csr
        self.partitions = int(partitions)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, partitions: int = DEFAULT_PARTITIONS) -> "MergeCSRMatrix":
        return cls(CSRMatrix.from_coo(coo), partitions=partitions)

    def to_coo(self) -> COOMatrix:
        return self.csr.to_coo()

    # -- metadata -------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """Shared CSR row pointer."""
        return self.csr.indptr

    @property
    def indices(self) -> np.ndarray:
        """Shared CSR column indices."""
        return self.csr.indices

    @property
    def data(self) -> np.ndarray:
        """Shared CSR values."""
        return self.csr.data

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.csr.dtype

    def row_lengths(self) -> np.ndarray:
        return self.csr.row_lengths()

    def memory_bytes(self) -> int:
        """CSR arrays plus the per-partition coordinate scratch."""
        return self.csr.memory_bytes() + 2 * (self.partitions + 1) * INDEX_BYTES

    # -- behaviour ------------------------------------------------------

    def partition_coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Merge-path start coordinates of every partition.

        Returns ``(row_starts, nnz_starts)``, each of length
        ``partitions + 1`` (the last entry is the terminal coordinate
        ``(n_rows, nnz)``).
        """
        total = self.n_rows + self.nnz
        diagonals = np.linspace(0, total, self.partitions + 1).astype(np.int64)
        return merge_path_search(diagonals, self.indptr)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Merge-path SpMV with explicit per-partition carry fix-up."""
        x = check_vector(x, self.n_cols, self.dtype)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        if self.nnz == 0:
            return y
        products = self.data * x[self.indices]
        row_starts, nnz_starts = self.partition_coordinates()
        indptr = self.indptr
        carries = np.zeros(self.partitions, dtype=self.dtype)
        carry_rows = np.full(self.partitions, -1, dtype=np.int64)
        for p in range(self.partitions):
            r0, r1 = int(row_starts[p]), int(row_starts[p + 1])
            e0, e1 = int(nnz_starts[p]), int(nnz_starts[p + 1])
            if e0 == e1 and r0 == r1:
                continue
            # Rows fully *ending* inside this partition are r0..r1-1; their
            # elements span [max(indptr[r], e0), indptr[r+1]).  Elements past
            # the last completed row belong to row r1 and become the carry.
            seg = products[e0:e1]
            csum = np.concatenate(([0], np.cumsum(seg, dtype=np.float64)))
            if r1 > r0:
                ends = np.clip(indptr[r0 + 1 : r1 + 1], e0, e1) - e0
                starts = np.concatenate(([0], ends[:-1]))
                y[r0:r1] += (csum[ends] - csum[starts]).astype(self.dtype)
                tail = csum[-1] - csum[ends[-1]]
            else:
                tail = csum[-1]
            if r1 < self.n_rows and tail != 0.0:
                carries[p] = tail
                carry_rows[p] = r1
        live = carry_rows >= 0
        if live.any():
            np.add.at(y, carry_rows[live], carries[live])
        return y
