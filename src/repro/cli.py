"""Command-line interface: ``repro-spmv``.

Subcommands cover the full workflow a downstream user needs:

* ``corpus``   — sample the synthetic SuiteSparse-shaped corpus and write
  Matrix Market files plus a manifest.
* ``features`` — print the paper's 17 features for ``.mtx`` files.
* ``label``    — run the measurement campaign on a simulated device and
  save an ``SpMVDataset`` (``.npz``).
* ``campaign`` — the same measurement campaign with the full engine
  surfaced: parallel workers, per-matrix resume shards, a failure log
  and live progress output.
* ``train``    — fit a format selector on a labeled dataset and pickle it.
* ``predict``  — load a trained selector and pick formats for ``.mtx``
  files.
* ``table``    — regenerate one of the paper's tables/figures at the
  configured scale.
* ``registry`` — train models into the versioned, checksummed model
  registry (``save`` / ``list`` / ``promote``).
* ``serve``    — load registry models and serve format decisions:
  one-shot over ``.mtx`` files, a JSON-lines stdin/stdout daemon, or a
  concurrent socket server (``--listen HOST:PORT``) micro-batching
  requests across client connections.  ``--adaptive`` attaches the
  online-learning loop: feedback-driven retraining, shadow evaluation
  and regret-gated auto-promotion (knobs: ``--adapt-*``).
* ``adapt``    — inspect and drive the adaptive-promotion machinery
  offline: ``status``, the ``history`` audit trail, manual ``promote``
  and ``rollback`` of the production alias.
* ``perf``     — run the tracked performance benchmarks (one-pass
  analysis, presorted tree/boosting fits, serving latency, obs
  overhead) and write ``BENCH_<date>.json``.
* ``obs``      — pretty-print (and ``--check`` validate) observability
  snapshot files written by ``--metrics-out`` or a daemon's
  ``snapshot_every`` flight recorder.

Two root-level flags (they go *before* the subcommand) switch on the
:mod:`repro.obs` telemetry spine for any command: ``--trace`` prints
the span/metric tables to stderr at exit, and ``--metrics-out PATH``
writes the full JSON snapshot for ``repro-spmv obs`` to read back.

Every command is importable (``from repro.cli import main``) and returns
a process exit code, so the test suite drives it in-process.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv",
        description="ML-based SpMV format selection & performance modeling "
        "(reproduction of Nisa et al., 2018)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable repro.obs tracing and print the span/metric tables "
        "to stderr when the command finishes",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="enable repro.obs and write the JSON observability snapshot "
        "to PATH when the command finishes (read it back with "
        "'repro-spmv obs')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .gpu import DEVICES

    device_choices = sorted(DEVICES)

    p = sub.add_parser("corpus", help="generate the synthetic corpus as .mtx files")
    p.add_argument("--scale", type=float, default=0.01, help="corpus fraction of ~2300")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-nnz", type=int, default=1_000_000)
    p.add_argument("--out", type=Path, required=True, help="output directory")

    p = sub.add_parser("features", help="print the 17 features of .mtx files")
    p.add_argument("files", nargs="+", type=Path)

    p = sub.add_parser("label", help="run the simulated measurement campaign")
    p.add_argument("--device", default="k40c", choices=device_choices)
    p.add_argument("--precision", default="single", choices=("single", "double"))
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-nnz", type=int, default=1_000_000)
    p.add_argument("--reps", type=int, default=50)
    p.add_argument("--workers", type=int, default=None,
                   help="campaign worker processes (default: REPRO_WORKERS or 1)")
    p.add_argument("--out", type=Path, required=True, help="output .npz path")

    p = sub.add_parser(
        "campaign",
        help="run a parallel, resumable measurement campaign",
        description="Run the labeling measurement campaign with the full "
        "engine surfaced: a process pool fans the per-matrix loop out, "
        "per-matrix result shards make interrupted runs resumable, "
        "failures are recorded (and logged) instead of aborting, and "
        "progress (counts, ETA) streams to stdout.  Repeat --device to "
        "label the same corpus across a device fleet; each device gets "
        "its own dataset (the device key is inserted before the output "
        "suffix) and its own resume shards.",
    )
    p.add_argument("--device", dest="devices", action="append", default=None,
                   choices=device_choices, metavar="DEVICE",
                   help="simulated device (repeatable for a fleet sweep; "
                   f"default: k40c; choices: {', '.join(device_choices)})")
    p.add_argument("--precision", default="single", choices=("single", "double"))
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-nnz", type=int, default=1_000_000)
    p.add_argument("--reps", type=int, default=50)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS or 1)")
    p.add_argument("--shard-dir", type=Path, default=None,
                   help="resume-shard directory (default: <out>.shards)")
    p.add_argument("--no-resume", action="store_true",
                   help="disable shard caching entirely")
    p.add_argument("--failures", type=Path, default=None,
                   help="write a name,reason CSV of dropped matrices")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-matrix labeling timeout in seconds")
    p.add_argument("--tuned", action="store_true",
                   help="label over the joint format+parameter grid "
                   "(repro.tuning.tuned_space()) instead of the six "
                   "default formats")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke preset: clamp the corpus to scale<=0.01 "
                   "and reps<=5")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    p.add_argument("--out", type=Path, required=True, help="output .npz path")

    p = sub.add_parser("train", help="train a format selector on a dataset")
    p.add_argument("--dataset", type=Path, required=True, help=".npz from 'label'")
    p.add_argument("--model", default="xgboost",
                   choices=("decision_tree", "svm", "mlp", "mlp_ensemble", "xgboost"))
    p.add_argument("--feature-set", default="set12",
                   choices=("set1", "set12", "set123", "imp"))
    p.add_argument("--keep-coo-best", action="store_true",
                   help="skip the paper's Sec. V-A COO-exclusion rule")
    p.add_argument("--out", type=Path, required=True, help="output .pkl path")

    p = sub.add_parser("predict", help="pick the best format for .mtx files")
    p.add_argument("--model", type=Path, required=True, help=".pkl from 'train'")
    p.add_argument("files", nargs="+", type=Path)

    p = sub.add_parser("table", help="regenerate a paper table/figure")
    p.add_argument("name", choices=("table1", "fig3", "table5", "table8",
                                    "table10", "fig6", "table14", "importance"))

    p = sub.add_parser(
        "registry",
        help="manage the versioned model registry",
        description="Save trained selection models as versioned, "
        "checksummed pure-numpy artifacts; list versions; promote one "
        "to production.",
    )
    rsub = p.add_subparsers(dest="registry_command", required=True)

    rp = rsub.add_parser("save", help="train a model and save it as a new version")
    rp.add_argument("--registry", type=Path, required=True, help="registry root dir")
    rp.add_argument("--name", required=True, help="model name in the registry")
    rp.add_argument("--dataset", type=Path, required=True, help=".npz from 'label'")
    rp.add_argument("--kind", default="selector", choices=("selector", "predictor"))
    rp.add_argument("--model", default="xgboost",
                    choices=("decision_tree", "svm", "svr", "mlp",
                             "mlp_ensemble", "xgboost"))
    rp.add_argument("--feature-set", default="set12",
                    choices=("set1", "set12", "set123", "imp"))
    rp.add_argument("--mode", default="joint", choices=("joint", "per_format"),
                    help="predictor mode (ignored for selectors)")
    rp.add_argument("--keep-coo-best", action="store_true",
                    help="skip the paper's Sec. V-A COO-exclusion rule")
    rp.add_argument("--promote", action="store_true",
                    help="mark the new version as production")

    rp = rsub.add_parser("list", help="list registered model versions")
    rp.add_argument("--registry", type=Path, required=True)
    rp.add_argument("--name", default=None, help="restrict to one model name")

    rp = rsub.add_parser("promote", help="promote a version to production")
    rp.add_argument("--registry", type=Path, required=True)
    rp.add_argument("--name", required=True)
    rp.add_argument("--version", required=True)

    p = sub.add_parser(
        "serve",
        help="serve format decisions from registry models",
        description="Load models from the registry and serve format "
        "decisions: one-shot over .mtx files, a JSON-lines "
        "request/response daemon on stdin/stdout, or a concurrent "
        "socket server (--listen) micro-batching requests across "
        "client connections (ops: predict, feedback, stats, metrics, "
        "shutdown; with --adaptive also adaptive, promote, rollback).",
    )
    p.add_argument("--registry", type=Path, required=True, help="registry root dir")
    p.add_argument("--selector", default=None, help="selector name in the registry")
    p.add_argument("--predictor", default=None, help="predictor name in the registry")
    p.add_argument("--selector-version", default=None,
                   help="version id, 'latest' or 'production' (default: "
                   "production, falling back to latest)")
    p.add_argument("--predictor-version", default=None)
    p.add_argument("--mode", default=None, choices=("direct", "indirect", "hybrid"),
                   help="selection strategy (default: what the models allow)")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="hybrid-mode slack on the predicted best time")
    p.add_argument("--daemon", action="store_true",
                   help="serve JSON-lines requests from stdin")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve the JSON-lines protocol on a TCP socket to "
                   "many concurrent clients, micro-batching predict "
                   "requests across connections (PORT 0 picks a free port; "
                   "the bound address is printed on startup)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="socket mode: flush a micro-batch at this size")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="socket mode: flush an incomplete micro-batch this "
                   "many ms after its first request")
    p.add_argument("--queue-size", type=int, default=256,
                   help="socket mode: bounded request queue; full queue "
                   "returns busy responses (backpressure)")
    p.add_argument("--stats", action="store_true",
                   help="print the telemetry snapshot when done")
    p.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                   help="daemon mode: emit a full observability snapshot to "
                   "the obs event sink every N served requests")
    p.add_argument("--adaptive", action="store_true",
                   help="attach the online-learning loop (requires "
                   "--selector): accumulate feedback into training rows, "
                   "retrain candidates, shadow-evaluate them against "
                   "production and auto-promote behind the regret gate; "
                   "adds daemon ops adaptive/promote/rollback")
    p.add_argument("--adapt-min-samples", type=int, default=50, metavar="N",
                   help="adaptive: paired feedback events required before "
                   "the promotion gate opens")
    p.add_argument("--adapt-min-improvement", type=float, default=0.05,
                   metavar="FRAC",
                   help="adaptive: required relative mean-regret improvement "
                   "of the candidate over production")
    p.add_argument("--adapt-cooldown", type=float, default=0.0, metavar="SEC",
                   help="adaptive: minimum seconds between promotions")
    p.add_argument("--adapt-train-every", type=int, default=64, metavar="N",
                   help="adaptive: train a fresh candidate every N new "
                   "experience rows")
    p.add_argument("files", nargs="*", type=Path, help=".mtx files (one-shot mode)")

    p = sub.add_parser(
        "adapt",
        help="inspect and drive adaptive promotions offline",
        description="Operate the adaptive-promotion machinery against a "
        "registry on disk: show the production alias and version stack "
        "(status), print the PROMOTIONS.jsonl audit trail (history), "
        "move the alias with an audited reason (promote), or revert it "
        "to the previous version from the trail (rollback).  A live "
        "daemon exposes the same operations as adaptive/promote/"
        "rollback protocol ops.",
    )
    asub = p.add_subparsers(dest="adapt_command", required=True)

    ap = asub.add_parser("status", help="production alias + version stack")
    ap.add_argument("--registry", type=Path, required=True)
    ap.add_argument("--name", required=True)

    ap = asub.add_parser("history", help="print the promotion audit trail")
    ap.add_argument("--registry", type=Path, required=True)
    ap.add_argument("--name", required=True)
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit raw JSON-lines instead of a table")

    ap = asub.add_parser("promote", help="promote a version with an audit reason")
    ap.add_argument("--registry", type=Path, required=True)
    ap.add_argument("--name", required=True)
    ap.add_argument("--version", required=True)
    ap.add_argument("--reason", default="manual")

    ap = asub.add_parser("rollback",
                         help="revert production to the previous version")
    ap.add_argument("--registry", type=Path, required=True)
    ap.add_argument("--name", required=True)
    ap.add_argument("--reason", default="manual")

    p = sub.add_parser(
        "perf",
        help="run the tracked performance benchmarks",
        description="Time the one-pass matrix analyzer, labeling, and "
        "presorted tree/boosting fits against their historical "
        "implementations and write BENCH_<date>.json.",
    )
    p.add_argument("--quick", action="store_true",
                   help="seconds-long smoke run (same code paths, small samples)")
    p.add_argument("--out", type=Path, default=None,
                   help="output JSON path (default: ./BENCH_<date>.json)")

    p = sub.add_parser(
        "obs",
        help="inspect observability snapshot files",
        description="Pretty-print snapshots written by --metrics-out (a "
        "single JSON object) or by a daemon's snapshot_every flight "
        "recorder (JSON-lines; the last snapshot event is used).  With "
        "--check, validate the structural invariants instead and exit "
        "non-zero on any violation.",
    )
    p.add_argument("files", nargs="+", type=Path, help="snapshot .json/.jsonl files")
    p.add_argument("--check", action="store_true",
                   help="validate invariants (parent span time >= sum of "
                   "children, histogram counts consistent) and report")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="re-emit the parsed snapshot as canonical JSON "
                   "instead of tables")
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def _cmd_corpus(args) -> int:
    from .matrices import SyntheticCorpus, write_matrix_market

    corpus = SyntheticCorpus(scale=args.scale, seed=args.seed, max_nnz=args.max_nnz)
    args.out.mkdir(parents=True, exist_ok=True)
    manifest = []
    for entry in corpus:
        matrix = entry.build()
        path = args.out / f"{entry.name}.mtx"
        write_matrix_market(
            matrix, path, comment=f"family={entry.family} seed={entry.seed}"
        )
        manifest.append(f"{entry.name},{entry.family},{matrix.n_rows},"
                        f"{matrix.n_cols},{matrix.nnz}")
    (args.out / "manifest.csv").write_text(
        "name,family,rows,cols,nnz\n" + "\n".join(manifest) + "\n"
    )
    print(f"wrote {len(corpus)} matrices to {args.out}")
    return 0


def _cmd_features(args) -> int:
    from .features import ALL_FEATURES, extract_features
    from .matrices import read_matrix_market

    header = "matrix," + ",".join(ALL_FEATURES)
    print(header)
    for path in args.files:
        feats = extract_features(read_matrix_market(path))
        print(f"{path.name}," + ",".join(f"{feats[f]:.6g}" for f in ALL_FEATURES))
    return 0


def _cmd_label(args) -> int:
    from .core import build_dataset
    from .gpu import DEVICES
    from .matrices import SyntheticCorpus

    corpus = SyntheticCorpus(scale=args.scale, seed=args.seed, max_nnz=args.max_nnz)
    ds = build_dataset(
        corpus,
        DEVICES[args.device],
        args.precision,
        reps=args.reps,
        seed=args.seed,
        workers=args.workers,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    ds.save(args.out)
    from collections import Counter

    dist = Counter(ds.label_names.tolist())
    print(f"labeled {len(ds)} matrices on {ds.device} ({ds.precision})")
    print("best-format distribution: "
          + ", ".join(f"{k}={v}" for k, v in dist.most_common()))
    print(f"saved {args.out}")
    return 0


def _per_device_path(path: Optional[Path], device: str, fleet: bool) -> Optional[Path]:
    """Insert the device key before ``path``'s suffix for fleet sweeps.

    Single-device runs keep the user's path untouched so existing scripts
    (and the shard directories they already populated) stay valid.
    """
    if path is None or not fleet:
        return path
    return path.with_name(f"{path.stem}.{device}{path.suffix}")


def _cmd_campaign(args) -> int:
    from collections import Counter

    from .bench.campaign import run_campaign
    from .gpu import DEVICES
    from .matrices import SyntheticCorpus

    devices = list(dict.fromkeys(args.devices or ["k40c"]))
    fleet = len(devices) > 1
    scale, reps = args.scale, args.reps
    if getattr(args, "quick", False):
        scale, reps = min(scale, 0.01), min(reps, 5)
    corpus = SyntheticCorpus(scale=scale, seed=args.seed, max_nnz=args.max_nnz)

    def _progress(ev) -> None:
        if args.quiet:
            return
        width = max(1, ev.total // 20)
        if ev.done % width and ev.done != ev.total:
            return
        cached = f" cached={ev.cached}" if ev.cached else ""
        print(
            f"[{ev.done}/{ev.total}] ok={ev.ok} failed={ev.failed}{cached} "
            f"elapsed={ev.elapsed_s:.1f}s eta={ev.eta_s:.1f}s ({ev.name})",
            flush=True,
        )

    summaries = []
    for device in devices:
        out = _per_device_path(args.out, device, fleet)
        shard_dir = None
        if not args.no_resume:
            shard_dir = (_per_device_path(args.shard_dir, device, fleet)
                         or out.with_suffix(out.suffix + ".shards"))
        if fleet and not args.quiet:
            print(f"=== device {device} -> {out} ===", flush=True)
        result = run_campaign(
            corpus,
            DEVICES[device],
            args.precision,
            tuned=getattr(args, "tuned", False),
            reps=reps,
            seed=args.seed,
            workers=args.workers,
            shard_dir=shard_dir,
            progress=_progress,
            timeout_s=args.timeout,
        )
        failures_path = _per_device_path(args.failures, device, fleet)
        if failures_path is not None:
            failures_path.parent.mkdir(parents=True, exist_ok=True)
            result.write_failure_log(failures_path)
            print(f"failure log: {failures_path} ({len(result.failures)} matrices)")
        elif result.failures:
            for name, reason in result.failures.items():
                print(f"dropped {name}: {reason}")
        try:
            ds = result.to_dataset()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        out.parent.mkdir(parents=True, exist_ok=True)
        ds.save(out)
        dist = Counter(ds.label_names.tolist())
        print(f"labeled {len(ds)}/{len(corpus)} matrices on {ds.device} "
              f"({ds.precision}, reps={ds.reps}, {len(result.failures)} dropped)")
        print("best-format distribution: "
              + ", ".join(f"{k}={v}" for k, v in dist.most_common()))
        print(f"saved {out}")
        summaries.append((device, out, len(ds), dist.most_common(1)[0][0] if dist else "-"))
    if fleet:
        print("fleet summary:")
        for device, out, n, top in summaries:
            print(f"  {device}: {n} matrices, top format {top}, {out}")
    return 0


def _cmd_train(args) -> int:
    from .core import FormatSelector, SpMVDataset

    ds = SpMVDataset.load(args.dataset)
    if not args.keep_coo_best:
        ds = ds.drop_coo_best()
    selector = FormatSelector(args.model, feature_set=args.feature_set)
    selector.fit(ds)
    acc = selector.score(ds)
    with open(args.out, "wb") as fh:
        pickle.dump(selector, fh)
    print(f"trained {args.model} on {len(ds)} matrices "
          f"(training accuracy {acc:.1%}); saved {args.out}")
    return 0


def _cmd_predict(args) -> int:
    from .features import FEATURE_SETS, extract_features, feature_vector
    from .matrices import read_matrix_market

    with open(args.model, "rb") as fh:
        selector = pickle.load(fh)
    names = (
        FEATURE_SETS[selector.feature_set]
        if isinstance(selector.feature_set, str)
        else selector.feature_set
    )
    for path in args.files:
        matrix = read_matrix_market(path)
        fv = feature_vector(extract_features(matrix), names)
        fmt = selector.predict_formats(fv[None, :])[0]
        print(f"{path.name}: {fmt}")
    return 0


def _cmd_table(args) -> int:
    from .bench import (
        classification_table,
        corpus_statistics,
        feature_importance,
        format_gflops_sweep,
        imp_features_table,
        indirect_vs_direct,
        regression_rme_by_feature_set,
        render_series,
        render_table,
    )

    if args.name == "table1":
        rows = corpus_statistics()
        print(render_table(
            ["range", "count", "rows", "cols", "dens%", "mu", "sigma"],
            [(r["range"], r["count"], f"{r['avg_rows']:.0f}", f"{r['avg_cols']:.0f}",
              f"{r['avg_density_pct']:.3f}", f"{r['avg_nnz_mu']:.1f}",
              f"{r['avg_nnz_sigma']:.1f}") for r in rows],
        ))
    elif args.name == "fig3":
        sweep = format_gflops_sweep(10)
        for name, row in sweep.items():
            print(name, {k: round(v, 1) for k, v in row.items()})
    elif args.name in ("table5", "table8"):
        formats = ("ell", "csr", "hyb") if args.name == "table5" else None
        kwargs = {"formats": formats} if formats else {}
        result = classification_table(feature_set="set12", cv=3, **kwargs)
        print(render_table(
            ["machine"] + sorted(next(iter(result.values()))),
            [[f"{d}/{p}"] + [f"{accs[m]:.0%}" for m in sorted(accs)]
             for (d, p), accs in result.items()],
        ))
    elif args.name == "table10":
        result = imp_features_table(cv=3)
        print(render_table(
            ["machine"] + sorted(next(iter(result.values()))),
            [[f"{d}/{p}"] + [f"{accs[m]:.0%}" for m in sorted(accs)]
             for (d, p), accs in result.items()],
        ))
    elif args.name == "fig6":
        result = regression_rme_by_feature_set()
        for fs, row in result.items():
            print(f"{fs}: MLP={row['mlp']:.3f} ensemble={row['mlp_ensemble']:.3f}")
    elif args.name == "table14":
        result = indirect_vs_direct()
        for key, row in result.items():
            print(key, {k: f"{v:.0%}" for k, v in row.items()})
    elif args.name == "importance":
        ranking = feature_importance()
        print(render_series("XGBoost F-scores", dict(ranking)))
    return 0


def _cmd_registry(args) -> int:
    from .serve import ModelRegistry, RegistryError

    registry = ModelRegistry(args.registry)
    try:
        if args.registry_command == "save":
            from .core import SpMVDataset

            ds = SpMVDataset.load(args.dataset)
            if not args.keep_coo_best:
                ds = ds.drop_coo_best()
            if args.kind == "selector":
                from .core import FormatSelector

                model = FormatSelector(args.model, feature_set=args.feature_set)
                model.fit(ds)
                quality = f"training accuracy {model.score(ds):.1%}"
            else:
                from .core.predictor import PerformancePredictor

                model = PerformancePredictor(
                    args.model, feature_set=args.feature_set, mode=args.mode
                )
                model.fit(ds)
                quality = f"training RME {model.rme(ds):.3f}"
            record = registry.save(
                model, args.name, dataset=ds, promote=args.promote
            )
            tag = " [production]" if args.promote else ""
            print(f"trained {args.kind} '{args.model}' on {len(ds)} matrices "
                  f"({quality})")
            print(f"saved {record.name}:{record.version}{tag} under {args.registry}")
        elif args.registry_command == "list":
            records = registry.list(args.name)
            if not records:
                print("(registry is empty)")
                return 0
            for record in records:
                prod = registry.production_version(record.name)
                mark = " *" if record.version == prod else ""
                print(record.describe() + mark)
        else:  # promote
            record = registry.promote(args.name, args.version)
            print(f"promoted {record.name}:{record.version} to production")
    except (RegistryError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .serve import RegistryError, SelectionService, serve_jsonl

    if args.selector is None and args.predictor is None:
        print("error: need at least one of --selector/--predictor",
              file=sys.stderr)
        return 1
    if not args.daemon and args.listen is None and not args.files:
        print("error: give .mtx files for one-shot mode, --daemon, "
              "or --listen", file=sys.stderr)
        return 1
    if args.daemon and args.listen is not None:
        print("error: --daemon and --listen are mutually exclusive",
              file=sys.stderr)
        return 1
    kwargs = {"tolerance": args.tolerance}
    if args.mode is not None:
        kwargs["mode"] = args.mode
    try:
        service = SelectionService.from_registry(
            args.registry,
            selector=args.selector,
            predictor=args.predictor,
            selector_version=args.selector_version,
            predictor_version=args.predictor_version,
            **kwargs,
        )
    except (RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.adaptive:
        from .serve import AdaptiveController, PromotionPolicy

        if args.selector is None:
            print("error: --adaptive requires --selector (candidates are "
                  "retrained selectors)", file=sys.stderr)
            return 1
        AdaptiveController(
            service,
            args.registry,
            args.selector,
            policy=PromotionPolicy(
                min_samples=args.adapt_min_samples,
                min_improvement=args.adapt_min_improvement,
                cooldown_s=args.adapt_cooldown,
            ),
            train_every=args.adapt_train_every,
        )

    if args.listen is not None:
        from .serve import SelectionServer

        host, _, port_text = args.listen.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print(f"error: --listen wants HOST:PORT, got {args.listen!r}",
                  file=sys.stderr)
            return 1
        server = SelectionServer(
            service,
            host or "127.0.0.1",
            port,
            max_batch=args.max_batch,
            batch_window_s=args.batch_window_ms / 1e3,
            queue_size=args.queue_size,
        )
        server.start()
        bound_host, bound_port = server.address
        print(f"listening on {bound_host}:{bound_port}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.shutdown(drain=True)
        if args.stats:
            print(json.dumps(service.stats(), indent=2), file=sys.stderr)
        return 0

    if args.daemon:
        served = serve_jsonl(
            service, sys.stdin, sys.stdout,
            snapshot_every=args.snapshot_every,
        )
        if args.stats:
            print(json.dumps(service.stats(), indent=2), file=sys.stderr)
        return 0

    from .matrices import read_matrix_market

    decisions = service.predict_batch(
        [read_matrix_market(path) for path in args.files]
    )
    for path, decision in zip(args.files, decisions):
        extra = ""
        if decision.predicted_times is not None:
            t = decision.predicted_times[decision.chosen]
            extra = f" (predicted {1e6 * t:.1f} us)"
        print(f"{path.name}: {decision.chosen}{extra}")
    if args.stats:
        print(json.dumps(service.stats(), indent=2))
    return 0


def _cmd_adapt(args) -> int:
    from .serve import ModelRegistry, RegistryError

    registry = ModelRegistry(args.registry)
    try:
        if args.adapt_command == "status":
            versions = registry.versions(args.name)
            if not versions:
                print(f"error: unknown model {args.name!r} under "
                      f"{args.registry}", file=sys.stderr)
                return 1
            prod = registry.production_version(args.name)
            history = registry.promotion_history(args.name)
            print(f"model: {args.name}")
            print(f"production: {prod or '(none)'}")
            print(f"versions: {', '.join(versions)}")
            if history:
                last = history[-1]
                print(f"last move: {last.get('action')} -> "
                      f"{last.get('version')} at {last.get('ts')} "
                      f"({last.get('reason', '-')})")
        elif args.adapt_command == "history":
            history = registry.promotion_history(args.name)
            if not history:
                print("(no promotion history)")
                return 0
            if args.as_json:
                for entry in history:
                    print(json.dumps(entry, sort_keys=True))
            else:
                for entry in history:
                    stats = entry.get("stats") or {}
                    extra = ""
                    if stats:
                        extra = (f" [paired={stats.get('n_paired')} "
                                 f"improvement={stats.get('improvement', 0):+.1%}]")
                    print(f"{entry.get('ts')} {entry.get('action'):8s} "
                          f"{entry.get('previous') or '-'} -> "
                          f"{entry.get('version')} "
                          f"({entry.get('reason', '-')}){extra}")
        elif args.adapt_command == "promote":
            record = registry.promote(
                args.name, args.version, reason=args.reason
            )
            print(f"promoted {record.name}:{record.version} to production "
                  f"(reason: {args.reason})")
        else:  # rollback
            previous = None
            for entry in reversed(registry.promotion_history(args.name)):
                if entry.get("action") in ("promote", "rollback"):
                    previous = entry.get("previous")
                    break
            if previous is None:
                print(f"error: no previous production version of "
                      f"{args.name!r} to roll back to", file=sys.stderr)
                return 1
            record = registry.promote(
                args.name, previous, action="rollback", reason=args.reason
            )
            print(f"rolled back {record.name} to {record.version} "
                  f"(reason: {args.reason})")
    except (RegistryError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_perf(args) -> int:
    from .bench.perf import main as perf_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.out is not None:
        argv.extend(["--out", str(args.out)])
    return perf_main(argv)


def _load_snapshot(path: Path) -> dict:
    """Read one snapshot from a ``--metrics-out`` JSON file or a
    JSON-lines event stream (last snapshot-carrying event wins)."""
    from .obs.export import SNAPSHOT_SCHEMA

    text = path.read_text()
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict):
        if doc.get("schema") == SNAPSHOT_SCHEMA:
            return doc
        payload = doc.get("payload")
        if isinstance(payload, dict) and payload.get("schema") == SNAPSHOT_SCHEMA:
            return payload
        raise ValueError(f"{path} is JSON but not an obs snapshot")
    # JSON-lines: scan for the newest embedded snapshot.
    found = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if not isinstance(event, dict):
            continue
        for candidate in (event, event.get("payload")):
            if (isinstance(candidate, dict)
                    and candidate.get("schema") == SNAPSHOT_SCHEMA):
                found = candidate
    if found is None:
        raise ValueError(f"no obs snapshot found in {path}")
    return found


def _cmd_obs(args) -> int:
    from .obs.export import check_snapshot, render_snapshot

    status = 0
    for path in args.files:
        try:
            snap = _load_snapshot(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        if len(args.files) > 1:
            print(f"== {path}")
        if args.check:
            problems = check_snapshot(snap)
            if problems:
                status = 1
                for problem in problems:
                    print(f"{path}: {problem}")
            else:
                print(f"{path}: ok")
        elif args.as_json:
            print(json.dumps(snap, indent=2, sort_keys=True))
        else:
            print(render_snapshot(snap))
    return status


_COMMANDS = {
    "corpus": _cmd_corpus,
    "features": _cmd_features,
    "label": _cmd_label,
    "campaign": _cmd_campaign,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "table": _cmd_table,
    "registry": _cmd_registry,
    "serve": _cmd_serve,
    "adapt": _cmd_adapt,
    "perf": _cmd_perf,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    observing = args.trace or args.metrics_out is not None
    if observing:
        from . import obs

        obs.enable()
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro-spmv serve ... | head`).
        # Detach stdout so the interpreter's shutdown flush doesn't raise.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        sys.stdout = open(os.devnull, "w")
        return 0
    finally:
        if observing:
            from . import obs
            from .obs.export import render_snapshot

            snap = obs.snapshot()
            if args.metrics_out is not None:
                args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
                args.metrics_out.write_text(
                    json.dumps(snap, indent=2, sort_keys=True) + "\n"
                )
            if args.trace:
                print(render_snapshot(snap), file=sys.stderr)
            obs.disable(reset=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
