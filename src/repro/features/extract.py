"""The paper's 17 sparse-matrix features (Sec. IV, Table II).

Three nested feature sets:

* **Set 1** (O(1) given the CSR arrays): ``n_rows``, ``n_cols``,
  ``nnz_tot``, ``nnz_mu`` (mean nnz/row), ``nnz_frac`` (density %).
* **Set 2** (one O(nnz) scan): ``nnz_max``, ``nnz_sigma`` plus the mean
  and standard deviation of the *contiguous non-zero chunk* statistics —
  chunks per row (``nnzb_mu``, ``nnzb_sigma``) and chunk size
  (``snzb_mu``, ``snzb_sigma``).
* **Set 3** (same scan): ``nnz_min``, the total chunk count
  (``nnzb_tot``) and the min/max of chunks-per-row (``nnzb_min``,
  ``nnzb_max``) and chunk size (``snzb_min``, ``snzb_max``).

A *chunk* (the paper also says "block") is a maximal run of
consecutive column indices within one row — the unit that determines
how many cache lines the ``x``-gather touches, which is why the paper
introduces set 3 (and why ``nnzb_tot`` lands in the top-7 important
features).

Naming follows the paper's feature-importance figures (Figs. 4–5)
exactly, so reproduced importance plots are directly comparable.

The 7 "imp." features are the paper's Sec. V-D finding: the top-7 by
XGBoost F-score, consistent across both GPUs and precisions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from ..formats import CSRMatrix, SparseFormat

__all__ = [
    "FEATURE_SET_1",
    "FEATURE_SET_2",
    "FEATURE_SET_3",
    "ALL_FEATURES",
    "FEATURE_SETS",
    "IMP_FEATURES",
    "extract_features",
    "feature_vector",
    "feature_matrix",
]

#: Set 1 — O(1) features (paper Table II, rows marked "1").
FEATURE_SET_1: tuple = ("n_rows", "n_cols", "nnz_tot", "nnz_mu", "nnz_frac")

#: Set 2 — per-row and chunk moments (Table II rows marked "2").
FEATURE_SET_2: tuple = (
    "nnz_max",
    "nnz_sigma",
    "nnzb_mu",
    "nnzb_sigma",
    "snzb_mu",
    "snzb_sigma",
)

#: Set 3 — extremes and the global chunk count (Table II rows marked "3").
FEATURE_SET_3: tuple = (
    "nnz_min",
    "nnzb_tot",
    "nnzb_min",
    "nnzb_max",
    "snzb_min",
    "snzb_max",
)

#: All 17 features in canonical order.
ALL_FEATURES: tuple = FEATURE_SET_1 + FEATURE_SET_2 + FEATURE_SET_3

#: The paper's evaluation slices: cumulative sets plus the top-7
#: "imp." subset of Sec. V-D.
IMP_FEATURES: tuple = (
    "n_rows",
    "nnz_max",
    "nnz_tot",
    "nnz_sigma",
    "nnz_frac",
    "nnzb_tot",
    "nnz_mu",
)

FEATURE_SETS: Dict[str, tuple] = {
    "set1": FEATURE_SET_1,
    "set12": FEATURE_SET_1 + FEATURE_SET_2,
    "set123": ALL_FEATURES,
    "imp": IMP_FEATURES,
}


def extract_features(matrix: Union[SparseFormat, CSRMatrix]) -> Dict[str, float]:
    """Extract all 17 features from a matrix in one O(nnz) pass.

    Parameters
    ----------
    matrix:
        Any sparse format; converted to CSR if needed (CSR input is
        used as-is, zero copies).

    Returns
    -------
    dict
        Feature name → value for every name in :data:`ALL_FEATURES`.
        Empty matrices yield all-zero chunk statistics.

    Notes
    -----
    Thin wrapper over :func:`repro.analysis.analyze_matrix`, which
    computes these features *and* the kernel-model
    :class:`~repro.gpu.profile.MatrixProfile` from one shared scan;
    callers needing both should call ``analyze_matrix`` directly.
    Results are bit-identical to the historical standalone extraction
    (see ``tests/test_analysis_equivalence.py``).
    """
    from ..analysis import analyze_matrix

    return analyze_matrix(matrix).features


def feature_vector(
    features: Dict[str, float], names: Sequence[str] = ALL_FEATURES
) -> np.ndarray:
    """Order a feature dict into a 1-D array following ``names``."""
    return np.array([features[n] for n in names], dtype=np.float64)


def feature_matrix(
    feature_dicts: Iterable[Dict[str, float]], names: Sequence[str] = ALL_FEATURES
) -> np.ndarray:
    """Stack many feature dicts into an ``(n_samples, n_features)`` array.

    Fills one preallocated array instead of materialising a per-sample
    row vector and ``np.vstack``-ing the pile.
    """
    names = tuple(names)
    dicts: List[Dict[str, float]] = list(feature_dicts)
    out = np.empty((len(dicts), len(names)), dtype=np.float64)
    for i, d in enumerate(dicts):
        row = out[i]
        for j, name in enumerate(names):
            row[j] = d[name]
    return out
