"""The paper's 17 sparse-matrix features (Sec. IV, Table II).

Three nested feature sets:

* **Set 1** (O(1) given the CSR arrays): ``n_rows``, ``n_cols``,
  ``nnz_tot``, ``nnz_mu`` (mean nnz/row), ``nnz_frac`` (density %).
* **Set 2** (one O(nnz) scan): ``nnz_max``, ``nnz_sigma`` plus the mean
  and standard deviation of the *contiguous non-zero chunk* statistics —
  chunks per row (``nnzb_mu``, ``nnzb_sigma``) and chunk size
  (``snzb_mu``, ``snzb_sigma``).
* **Set 3** (same scan): ``nnz_min``, the total chunk count
  (``nnzb_tot``) and the min/max of chunks-per-row (``nnzb_min``,
  ``nnzb_max``) and chunk size (``snzb_min``, ``snzb_max``).

A *chunk* (the paper also says "block") is a maximal run of
consecutive column indices within one row — the unit that determines
how many cache lines the ``x``-gather touches, which is why the paper
introduces set 3 (and why ``nnzb_tot`` lands in the top-7 important
features).

Naming follows the paper's feature-importance figures (Figs. 4–5)
exactly, so reproduced importance plots are directly comparable.

The 7 "imp." features are the paper's Sec. V-D finding: the top-7 by
XGBoost F-score, consistent across both GPUs and precisions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from ..formats import CSRMatrix, SparseFormat

__all__ = [
    "FEATURE_SET_1",
    "FEATURE_SET_2",
    "FEATURE_SET_3",
    "ALL_FEATURES",
    "FEATURE_SETS",
    "IMP_FEATURES",
    "extract_features",
    "feature_vector",
    "feature_matrix",
]

#: Set 1 — O(1) features (paper Table II, rows marked "1").
FEATURE_SET_1: tuple = ("n_rows", "n_cols", "nnz_tot", "nnz_mu", "nnz_frac")

#: Set 2 — per-row and chunk moments (Table II rows marked "2").
FEATURE_SET_2: tuple = (
    "nnz_max",
    "nnz_sigma",
    "nnzb_mu",
    "nnzb_sigma",
    "snzb_mu",
    "snzb_sigma",
)

#: Set 3 — extremes and the global chunk count (Table II rows marked "3").
FEATURE_SET_3: tuple = (
    "nnz_min",
    "nnzb_tot",
    "nnzb_min",
    "nnzb_max",
    "snzb_min",
    "snzb_max",
)

#: All 17 features in canonical order.
ALL_FEATURES: tuple = FEATURE_SET_1 + FEATURE_SET_2 + FEATURE_SET_3

#: The paper's evaluation slices: cumulative sets plus the top-7
#: "imp." subset of Sec. V-D.
IMP_FEATURES: tuple = (
    "n_rows",
    "nnz_max",
    "nnz_tot",
    "nnz_sigma",
    "nnz_frac",
    "nnzb_tot",
    "nnz_mu",
)

FEATURE_SETS: Dict[str, tuple] = {
    "set1": FEATURE_SET_1,
    "set12": FEATURE_SET_1 + FEATURE_SET_2,
    "set123": ALL_FEATURES,
    "imp": IMP_FEATURES,
}


def extract_features(matrix: Union[SparseFormat, CSRMatrix]) -> Dict[str, float]:
    """Extract all 17 features from a matrix in one O(nnz) pass.

    Parameters
    ----------
    matrix:
        Any sparse format; converted to CSR if needed (CSR input is
        used as-is, zero copies).

    Returns
    -------
    dict
        Feature name → value for every name in :data:`ALL_FEATURES`.
        Empty matrices yield all-zero chunk statistics.
    """
    csr = matrix if isinstance(matrix, CSRMatrix) else CSRMatrix.from_coo(matrix.to_coo())
    n_rows, n_cols = csr.shape
    nnz = csr.nnz
    lengths = np.diff(csr.indptr)

    feats: Dict[str, float] = {
        "n_rows": float(n_rows),
        "n_cols": float(n_cols),
        "nnz_tot": float(nnz),
        "nnz_mu": float(lengths.mean()) if n_rows else 0.0,
        # Table I reports density in percent; we keep the same unit.
        "nnz_frac": 100.0 * nnz / (n_rows * n_cols) if n_rows and n_cols else 0.0,
        "nnz_max": float(lengths.max()) if n_rows else 0.0,
        "nnz_min": float(lengths.min()) if n_rows else 0.0,
        "nnz_sigma": float(lengths.std()) if n_rows else 0.0,
    }

    if nnz == 0:
        feats.update(
            nnzb_mu=0.0, nnzb_sigma=0.0, nnzb_min=0.0, nnzb_max=0.0,
            nnzb_tot=0.0, snzb_mu=0.0, snzb_sigma=0.0, snzb_min=0.0,
            snzb_max=0.0,
        )
        return feats

    # --- contiguous chunk analysis (one vectorised scan) ---------------
    # A chunk starts where a row starts or where the column index jumps
    # by more than one.  Canonical CSR guarantees sorted columns per row.
    col = csr.indices.astype(np.int64)
    chunk_start = np.empty(nnz, dtype=bool)
    chunk_start[0] = True
    np.not_equal(col[1:], col[:-1] + 1, out=chunk_start[1:])
    row_starts = csr.indptr[:-1][lengths > 0]
    chunk_start[row_starts] = True

    start_pos = np.flatnonzero(chunk_start)
    n_chunks = start_pos.size
    chunk_sizes = np.diff(np.append(start_pos, nnz))

    # Chunks per row: count chunk starts within each row slice.
    counts = np.zeros(n_rows, dtype=np.int64)
    if n_rows:
        owner = np.searchsorted(csr.indptr, start_pos, side="right") - 1
        np.add.at(counts, owner, 1)

    feats.update(
        nnzb_tot=float(n_chunks),
        nnzb_mu=float(counts.mean()) if n_rows else 0.0,
        nnzb_sigma=float(counts.std()) if n_rows else 0.0,
        nnzb_min=float(counts.min()) if n_rows else 0.0,
        nnzb_max=float(counts.max()) if n_rows else 0.0,
        snzb_mu=float(chunk_sizes.mean()),
        snzb_sigma=float(chunk_sizes.std()),
        snzb_min=float(chunk_sizes.min()),
        snzb_max=float(chunk_sizes.max()),
    )
    return feats


def feature_vector(
    features: Dict[str, float], names: Sequence[str] = ALL_FEATURES
) -> np.ndarray:
    """Order a feature dict into a 1-D array following ``names``."""
    return np.array([features[n] for n in names], dtype=np.float64)


def feature_matrix(
    feature_dicts: Iterable[Dict[str, float]], names: Sequence[str] = ALL_FEATURES
) -> np.ndarray:
    """Stack many feature dicts into an ``(n_samples, n_features)`` array."""
    rows: List[np.ndarray] = [feature_vector(d, names) for d in feature_dicts]
    if not rows:
        return np.zeros((0, len(tuple(names))))
    return np.vstack(rows)
