"""Structural feature extraction (paper Sec. IV, Table II)."""

from .extract import (  # noqa: F401
    ALL_FEATURES,
    FEATURE_SET_1,
    FEATURE_SET_2,
    FEATURE_SET_3,
    FEATURE_SETS,
    IMP_FEATURES,
    extract_features,
    feature_matrix,
    feature_vector,
)
from .image import density_image, image_dataset  # noqa: F401

__all__ = [
    "FEATURE_SET_1",
    "FEATURE_SET_2",
    "FEATURE_SET_3",
    "ALL_FEATURES",
    "FEATURE_SETS",
    "IMP_FEATURES",
    "extract_features",
    "feature_vector",
    "feature_matrix",
    "density_image",
    "image_dataset",
]
