"""Fixed-size image representation of sparse matrices (Zhao et al.).

The CNN-based selector the paper compares against (related work,
Sec. VII) feeds the network a fixed-size "image" of the sparsity
pattern: the matrix is divided into a ``size × size`` grid of cells and
each pixel encodes how many non-zeros fall into its cell.  This module
produces that representation (log-compressed and max-normalised so
images of matrices spanning six nnz decades live on a common scale),
for use with :class:`repro.ml.cnn.SimpleCNNClassifier`.
"""

from __future__ import annotations

import numpy as np

from ..formats import SparseFormat

__all__ = ["density_image", "image_dataset"]


def density_image(matrix: SparseFormat, size: int = 32) -> np.ndarray:
    """Render the sparsity pattern as a ``size × size`` float image.

    Pixel ``(i, j)`` is ``log1p(count)`` of the non-zeros mapped into
    grid cell ``(i, j)``, normalised to ``[0, 1]`` by the densest cell.
    Empty matrices give an all-zero image.

    The mapping uses integer arithmetic (``row * size // n_rows``) so a
    cell boundary never splits due to float rounding.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    coo = matrix.to_coo()
    img = np.zeros((size, size), dtype=np.float64)
    if coo.nnz == 0:
        return img
    pi = (coo.row.astype(np.int64) * size) // max(coo.n_rows, 1)
    pj = (coo.col.astype(np.int64) * size) // max(coo.n_cols, 1)
    np.add.at(img, (np.minimum(pi, size - 1), np.minimum(pj, size - 1)), 1.0)
    np.log1p(img, out=img)
    peak = img.max()
    if peak > 0:
        img /= peak
    return img


def image_dataset(matrices, size: int = 32) -> np.ndarray:
    """Stack density images of many matrices: ``(n, size, size)``."""
    images = [density_image(m, size) for m in matrices]
    if not images:
        return np.zeros((0, size, size))
    return np.stack(images)
