"""Unified single-pass matrix analysis: profile + the 17 features.

The two hottest per-matrix operations in the pipeline used to run
back-to-back but independently:

* :func:`repro.gpu.profile.profile_matrix` — the structural profile the
  kernel cost models consume, and
* :func:`repro.features.extract.extract_features` — the paper's 17
  features (Sec. IV, Table II).

Each converted the matrix to CSR, re-derived the row lengths, and
re-scanned the column indices; the profile additionally ran four
``np.unique`` full sorts (two gather-line sets, the diagonal count and
the BSR block count).  The paper itself observes (Sec. IV-A) that
feature sets 2–3 need exactly *one* O(nnz) scan — and Elafrou et al.'s
lightweight-selection argument makes the same point operationally:
structural analysis must stay a small fraction of one SpMV for format
selection to pay off.

:func:`analyze_matrix` computes both results from one shared CSR view:

* one CSR conversion, one ``np.diff(indptr)``, one non-empty-row mask;
* one ``int64`` column-index materialisation shared by the gather-line
  scans, the chunk scan and the diagonal/BSR geometry;
* every ``np.unique`` full sort replaced by a sort-free trick:
  gather-line and diagonal counts use bounded boolean occupancy arrays
  (their value ranges are O(n_cols / line) and O(n_rows + n_cols)),
  and the BSR block count first reduces the key stream to per-row
  block transitions (the same transition mask the gather scan uses)
  before a single, much smaller ``np.unique``.

The results are **bit-identical** to the historical two-pass path; the
original implementations are preserved below as
:func:`profile_matrix_two_pass` / :func:`extract_features_two_pass` so
the equivalence tests (``tests/test_analysis_equivalence.py``) and the
perf harness (:mod:`repro.bench.perf`) can assert and measure exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from .formats import CSRMatrix, SparseFormat
from .gpu.profile import (
    GatherStats,
    MatrixProfile,
    _gather_stats,
    _structure_digest,
)

__all__ = [
    "MatrixAnalysis",
    "analyze_matrix",
    "profile_matrix_two_pass",
    "extract_features_two_pass",
]


@dataclass(frozen=True)
class MatrixAnalysis:
    """Everything one structural scan of a matrix yields.

    Attributes
    ----------
    profile:
        The :class:`~repro.gpu.profile.MatrixProfile` the kernel cost
        models consume.
    features:
        The paper's 17 features (``repro.features.ALL_FEATURES`` keys).
    """

    profile: MatrixProfile
    features: Dict[str, float]


def _as_csr(matrix: Union[SparseFormat, CSRMatrix]) -> CSRMatrix:
    return matrix if isinstance(matrix, CSRMatrix) else CSRMatrix.from_coo(matrix.to_coo())


def analyze_matrix(matrix: Union[SparseFormat, CSRMatrix]) -> MatrixAnalysis:
    """Compute the profile *and* all 17 features in one shared pass.

    Bit-identical to running :func:`profile_matrix_two_pass` and
    :func:`extract_features_two_pass` back to back, at roughly the cost
    of one of them: all intermediates (CSR view, row lengths, the
    ``int64`` column array, the non-empty-row starts) are computed once
    and shared, and no full-length sort is performed.
    """
    csr = _as_csr(matrix)
    n_rows, n_cols = csr.shape
    nnz = csr.nnz
    lengths = np.diff(csr.indptr)

    # --- row-length moments (profile + feature sets 1-2) ----------------
    if n_rows:
        mu = float(lengths.mean())
        sigma = float(lengths.std())
        lmax = int(lengths.max())
        lmin = int(lengths.min())
    else:
        mu = sigma = 0.0
        lmax = lmin = 0

    nonempty = lengths > 0
    n_nonempty = int(np.count_nonzero(nonempty))
    row_starts = csr.indptr[:-1][nonempty]

    # --- warp-level factors (32-row groups, scalar/vector CSR) ----------
    if n_rows and nnz:
        pad_rows = (-n_rows) % 32
        padded = np.concatenate([lengths, np.zeros(pad_rows, dtype=lengths.dtype)])
        warp_max = padded.reshape(-1, 32).max(axis=1)
        warp_divergence = float(32.0 * warp_max.sum() / nnz)
        vector_waste = float((np.ceil(lengths / 32.0) * 32.0).sum() / nnz)
    else:
        warp_divergence = 1.0
        vector_waste = 1.0

    # --- HYB split geometry at the paper's mean-row-length threshold ----
    if nnz and n_rows:
        k = max(1, int(np.ceil(nnz / n_rows)))
        clipped = np.minimum(lengths, k)
        hyb_ell_nnz = int(clipped.sum())
        hyb_spill = nnz - hyb_ell_nnz
        hyb_spill_rows = int(np.count_nonzero(lengths > k))
    else:
        k = 0
        hyb_ell_nnz = 0
        hyb_spill = 0
        hyb_spill_rows = 0

    # --- shared int64 column view (gather, chunks, diagonals, blocks) ---
    col = csr.indices.astype(np.int64) if nnz else None

    # --- gather-line statistics, per precision --------------------------
    # Distinct-line counts use a boolean occupancy array over the
    # ceil(n_cols / elems_per_line) possible x-lines instead of the old
    # np.unique full sort: O(nnz + n_cols / epl), sort-free.
    gather: Dict[str, GatherStats] = {}
    for precision, itemsize in (("single", 4), ("double", 8)):
        epl = max(1, 128 // itemsize)
        x_lines = -(-max(n_cols, 1) // epl)
        if nnz == 0:
            gather[precision] = GatherStats(epl, 0, 0, x_lines)
            continue
        line = col // epl
        new_line = np.empty(nnz, dtype=bool)
        new_line[0] = True
        np.not_equal(line[1:], line[:-1], out=new_line[1:])
        new_line[row_starts] = True
        line_fetches = int(np.count_nonzero(new_line))
        seen = np.zeros(x_lines, dtype=bool)
        seen[line] = True
        unique_lines = int(np.count_nonzero(seen))
        gather[precision] = GatherStats(epl, unique_lines, line_fetches, x_lines)

    # --- extension-format geometry (DIA / BSR) --------------------------
    if nnz:
        rows64 = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
        # Occupied diagonals: values live in [-(n_rows-1), n_cols-1], so a
        # boolean occupancy array replaces the np.unique sort.
        seen_d = np.zeros(n_rows + n_cols - 1, dtype=bool)
        seen_d[col - rows64 + (n_rows - 1)] = True
        n_diags = int(np.count_nonzero(seen_d))
        # Occupied 4x4 blocks: block columns are non-decreasing within a
        # row (CSR sorts columns), so per-row transitions enumerate each
        # (row, block-col) pair exactly once; dedup across the <=4 rows
        # of a block-row needs only one np.unique over that much smaller
        # key stream.
        n_bcols = -(-n_cols // 4)
        bcol = col // 4
        new_block = np.empty(nnz, dtype=bool)
        new_block[0] = True
        np.not_equal(bcol[1:], bcol[:-1], out=new_block[1:])
        new_block[row_starts] = True
        block_keys = (rows64[new_block] // 4) * n_bcols + bcol[new_block]
        # Distinct count via one in-place sort of the reduced key stream
        # (np.unique's hash/sort machinery has far higher fixed overhead).
        block_keys.sort()
        bsr_blocks = int(1 + np.count_nonzero(block_keys[1:] != block_keys[:-1]))
    else:
        n_diags = 0
        bsr_blocks = 0

    profile = MatrixProfile(
        n_rows=n_rows,
        n_cols=n_cols,
        nnz=nnz,
        nnz_mu=mu,
        nnz_sigma=sigma,
        nnz_max=lmax,
        nnz_min=lmin,
        empty_rows=n_rows - n_nonempty,
        warp_divergence=max(1.0, warp_divergence),
        vector_waste=max(1.0, vector_waste),
        hyb_threshold=k,
        hyb_ell_nnz=hyb_ell_nnz,
        hyb_spill_nnz=hyb_spill,
        hyb_spill_rows=hyb_spill_rows,
        n_diags=n_diags,
        bsr_blocks=bsr_blocks,
        gather=gather,
        digest=_structure_digest(csr),
    )

    # --- the 17 features (sets 1-3) -------------------------------------
    features: Dict[str, float] = {
        "n_rows": float(n_rows),
        "n_cols": float(n_cols),
        "nnz_tot": float(nnz),
        "nnz_mu": mu if n_rows else 0.0,
        # Table I reports density in percent; we keep the same unit.
        "nnz_frac": 100.0 * nnz / (n_rows * n_cols) if n_rows and n_cols else 0.0,
        "nnz_max": float(lmax) if n_rows else 0.0,
        "nnz_min": float(lmin) if n_rows else 0.0,
        "nnz_sigma": sigma if n_rows else 0.0,
    }

    if nnz == 0:
        features.update(
            nnzb_mu=0.0, nnzb_sigma=0.0, nnzb_min=0.0, nnzb_max=0.0,
            nnzb_tot=0.0, snzb_mu=0.0, snzb_sigma=0.0, snzb_min=0.0,
            snzb_max=0.0,
        )
        return MatrixAnalysis(profile=profile, features=features)

    # Contiguous-chunk scan: a chunk starts where a row starts or where
    # the column index jumps by more than one.
    chunk_start = np.empty(nnz, dtype=bool)
    chunk_start[0] = True
    np.not_equal(col[1:], col[:-1] + 1, out=chunk_start[1:])
    chunk_start[row_starts] = True

    start_pos = np.flatnonzero(chunk_start)
    n_chunks = start_pos.size
    chunk_sizes = np.diff(np.append(start_pos, nnz))

    # Chunks per row: chunk starts are sorted, so one searchsorted of the
    # row pointers bins them without the per-chunk owner lookup.
    counts = np.diff(np.searchsorted(start_pos, csr.indptr, side="left"))

    features.update(
        nnzb_tot=float(n_chunks),
        nnzb_mu=float(counts.mean()) if n_rows else 0.0,
        nnzb_sigma=float(counts.std()) if n_rows else 0.0,
        nnzb_min=float(counts.min()) if n_rows else 0.0,
        nnzb_max=float(counts.max()) if n_rows else 0.0,
        snzb_mu=float(chunk_sizes.mean()),
        snzb_sigma=float(chunk_sizes.std()),
        snzb_min=float(chunk_sizes.min()),
        snzb_max=float(chunk_sizes.max()),
    )
    return MatrixAnalysis(profile=profile, features=features)


# ---------------------------------------------------------------------------
# Historical two-pass reference implementations
# ---------------------------------------------------------------------------
# These are the exact pre-unification implementations.  They exist so
# that (a) the equivalence tests can assert bit-identical results and
# (b) the perf harness can measure the real before/after speedup.  Do
# not "optimise" them — their value is being frozen.


def profile_matrix_two_pass(matrix: Union[SparseFormat, CSRMatrix]) -> MatrixProfile:
    """Reference: the original standalone O(nnz log nnz) profile pass."""
    csr = _as_csr(matrix)
    lengths = np.diff(csr.indptr)
    nnz = csr.nnz
    n_rows = csr.n_rows

    if n_rows:
        mu = float(lengths.mean())
        sigma = float(lengths.std())
        lmax = int(lengths.max())
        lmin = int(lengths.min())
    else:
        mu = sigma = 0.0
        lmax = lmin = 0

    if n_rows and nnz:
        pad_rows = (-n_rows) % 32
        padded = np.concatenate([lengths, np.zeros(pad_rows, dtype=lengths.dtype)])
        warp_max = padded.reshape(-1, 32).max(axis=1)
        warp_divergence = float(32.0 * warp_max.sum() / nnz)
        vector_waste = float((np.ceil(lengths / 32.0) * 32.0).sum() / nnz)
    else:
        warp_divergence = 1.0
        vector_waste = 1.0

    if nnz and n_rows:
        k = max(1, int(np.ceil(nnz / n_rows)))
        clipped = np.minimum(lengths, k)
        hyb_ell_nnz = int(clipped.sum())
        hyb_spill = nnz - hyb_ell_nnz
        hyb_spill_rows = int(np.count_nonzero(lengths > k))
    else:
        k = 0
        hyb_ell_nnz = 0
        hyb_spill = 0
        hyb_spill_rows = 0

    gather = {
        "single": _gather_stats(csr, 4),
        "double": _gather_stats(csr, 8),
    }

    if nnz:
        rows64 = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
        cols64 = csr.indices.astype(np.int64)
        n_diags = int(np.unique(cols64 - rows64).size)
        n_bcols = -(-csr.n_cols // 4)
        bsr_blocks = int(np.unique((rows64 // 4) * n_bcols + cols64 // 4).size)
    else:
        n_diags = 0
        bsr_blocks = 0

    return MatrixProfile(
        n_rows=n_rows,
        n_cols=csr.n_cols,
        nnz=nnz,
        nnz_mu=mu,
        nnz_sigma=sigma,
        nnz_max=lmax,
        nnz_min=lmin,
        empty_rows=int(np.count_nonzero(lengths == 0)),
        warp_divergence=max(1.0, warp_divergence),
        vector_waste=max(1.0, vector_waste),
        hyb_threshold=k,
        hyb_ell_nnz=hyb_ell_nnz,
        hyb_spill_nnz=hyb_spill,
        hyb_spill_rows=hyb_spill_rows,
        n_diags=n_diags,
        bsr_blocks=bsr_blocks,
        gather=gather,
        digest=_structure_digest(csr),
    )


def extract_features_two_pass(
    matrix: Union[SparseFormat, CSRMatrix],
) -> Dict[str, float]:
    """Reference: the original standalone 17-feature extraction pass."""
    csr = _as_csr(matrix)
    n_rows, n_cols = csr.shape
    nnz = csr.nnz
    lengths = np.diff(csr.indptr)

    feats: Dict[str, float] = {
        "n_rows": float(n_rows),
        "n_cols": float(n_cols),
        "nnz_tot": float(nnz),
        "nnz_mu": float(lengths.mean()) if n_rows else 0.0,
        "nnz_frac": 100.0 * nnz / (n_rows * n_cols) if n_rows and n_cols else 0.0,
        "nnz_max": float(lengths.max()) if n_rows else 0.0,
        "nnz_min": float(lengths.min()) if n_rows else 0.0,
        "nnz_sigma": float(lengths.std()) if n_rows else 0.0,
    }

    if nnz == 0:
        feats.update(
            nnzb_mu=0.0, nnzb_sigma=0.0, nnzb_min=0.0, nnzb_max=0.0,
            nnzb_tot=0.0, snzb_mu=0.0, snzb_sigma=0.0, snzb_min=0.0,
            snzb_max=0.0,
        )
        return feats

    col = csr.indices.astype(np.int64)
    chunk_start = np.empty(nnz, dtype=bool)
    chunk_start[0] = True
    np.not_equal(col[1:], col[:-1] + 1, out=chunk_start[1:])
    row_starts = csr.indptr[:-1][lengths > 0]
    chunk_start[row_starts] = True

    start_pos = np.flatnonzero(chunk_start)
    n_chunks = start_pos.size
    chunk_sizes = np.diff(np.append(start_pos, nnz))

    counts = np.zeros(n_rows, dtype=np.int64)
    if n_rows:
        owner = np.searchsorted(csr.indptr, start_pos, side="right") - 1
        np.add.at(counts, owner, 1)

    feats.update(
        nnzb_tot=float(n_chunks),
        nnzb_mu=float(counts.mean()) if n_rows else 0.0,
        nnzb_sigma=float(counts.std()) if n_rows else 0.0,
        nnzb_min=float(counts.min()) if n_rows else 0.0,
        nnzb_max=float(counts.max()) if n_rows else 0.0,
        snzb_mu=float(chunk_sizes.mean()),
        snzb_sigma=float(chunk_sizes.std()),
        snzb_min=float(chunk_sizes.min()),
        snzb_max=float(chunk_sizes.max()),
    )
    return feats
