"""Compiled flat-array inference for the tree-model stack.

The node-graph representations of :mod:`repro.ml.tree` and
:mod:`repro.ml.boosting` are ideal for *fitting* — splits mutate a
linked structure — but terrible for *serving*: a 40-round booster
answers one ``predict`` by visiting thousands of Python ``_Node`` /
``_BNode`` objects, two attribute loads and a tiny numpy op per visit.
On the serving hot path (:mod:`repro.serve`) that Python traffic is the
last un-vectorised loop in the stack.

This module lowers fitted trees into **struct-of-arrays tables** and
fuses whole ensembles into one padded 2-D table per field::

    feature   (T, M) int32    split feature, -1 at leaves
    threshold (T, M) float64  split threshold
    left      (T, M) int32    child row index (leaves self-loop)
    right     (T, M) int32
    values    (T, M, d)       leaf payload (class probs / mean / weight)

where ``T`` is the number of fused trees and ``M`` the padded node
count.  A batch of N rows then traverses *all* T trees simultaneously
in ``max_depth`` vectorised numpy steps — each step gathers the current
node's feature and threshold for every ``(tree, row)`` pair, compares,
and advances — instead of ``O(total_nodes)`` Python visits.  Leaves
self-loop (``left == right == self``), so finished rows idle harmlessly
while deeper trees keep descending and no per-step leaf masking is
needed.

**Bit-identical contract.**  Compiled predictions are exactly the node
walk's: the tables carry the same float64 thresholds and leaf payloads,
the traversal applies the same ``<=`` comparisons, and the ensemble
wrappers accumulate member outputs in the same order with the same
operations.  The node-graph walk stays in the estimators as the
reference implementation (the ``analyze_matrix`` two-pass precedent);
:func:`node_path` forces it for the perf harness and the equivalence
tests in ``tests/test_ml_compiled.py``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, List, Sequence

import numpy as np

__all__ = ["TreeTable", "compile_trees", "node_path", "compiled_enabled"]


# ---------------------------------------------------------------------------
# Reference-path override
# ---------------------------------------------------------------------------

#: When True every tree-based estimator routes predict through the
#: node-graph reference walk even if a compiled table is attached.
_FORCE_NODE_PATH = False


@contextmanager
def node_path():
    """Force the node-graph reference path inside the block.

    Used by the perf harness (``ml_inference`` before/after) and the
    compiled-vs-node equivalence tests.  Not meant for concurrent use —
    the flag is process-wide.
    """
    global _FORCE_NODE_PATH
    previous = _FORCE_NODE_PATH
    _FORCE_NODE_PATH = True
    try:
        yield
    finally:
        _FORCE_NODE_PATH = previous


def compiled_enabled() -> bool:
    """Whether compiled tables are currently used for inference."""
    return not _FORCE_NODE_PATH


# ---------------------------------------------------------------------------
# Shared index buffer (the node-walk fallback's scratch)
# ---------------------------------------------------------------------------

_arange_lock = threading.Lock()
_arange_buf = np.empty(0, dtype=np.intp)


def shared_arange(n: int) -> np.ndarray:
    """First ``n`` indices from a shared, read-only arange buffer.

    The node-walk fallbacks route every sample through the root with an
    index vector; this grows one immutable buffer instead of rebuilding
    ``np.arange(N)`` per call.  The returned view is write-protected —
    callers only ever fancy-index it, producing fresh arrays.
    """
    global _arange_buf
    buf = _arange_buf
    if buf.size < n:
        with _arange_lock:
            buf = _arange_buf
            if buf.size < n:
                buf = np.arange(max(n, 2 * buf.size), dtype=np.intp)
                buf.setflags(write=False)
                _arange_buf = buf
    return buf[:n]


# ---------------------------------------------------------------------------
# The fused table
# ---------------------------------------------------------------------------


class TreeTable:
    """Struct-of-arrays form of one or more fused binary trees.

    Construct via :func:`compile_trees`; instances are immutable and
    read-only at inference time, so one table can serve many threads
    concurrently (the serving stack relies on this).
    """

    __slots__ = ("feature", "threshold", "left", "right", "values",
                 "max_depth", "_tree_rows", "_roots", "_feature_flat",
                 "_threshold_flat", "_left_flat", "_right_flat",
                 "_values_flat")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        values: np.ndarray,
        max_depth: int,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.values = values
        self.max_depth = int(max_depth)
        self._tree_rows = np.arange(feature.shape[0], dtype=np.intp)[:, None]
        # Flat views with *absolute* node addresses (tree t's node j at
        # t*M + j): traversal then runs on 1-D ``take`` gathers with
        # intp indices, which skip the per-step index broadcasting and
        # dtype conversion of 2-D fancy indexing.
        T, M = feature.shape
        offsets = (np.arange(T, dtype=np.intp) * M)[:, None]
        self._roots = offsets                              # (T, 1)
        self._feature_flat = np.ascontiguousarray(feature.reshape(-1))
        self._threshold_flat = np.ascontiguousarray(threshold.reshape(-1))
        self._left_flat = (left.astype(np.intp) + offsets).reshape(-1)
        self._right_flat = (right.astype(np.intp) + offsets).reshape(-1)
        self._values_flat = np.ascontiguousarray(
            values.reshape(T * M, values.shape[2])
        )

    # -- introspection -----------------------------------------------------

    @property
    def n_trees(self) -> int:
        return self.feature.shape[0]

    @property
    def n_nodes(self) -> int:
        """Padded per-tree node capacity (real node counts are ≤ this)."""
        return self.feature.shape[1]

    @property
    def value_width(self) -> int:
        return self.values.shape[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeTable(n_trees={self.n_trees}, n_nodes={self.n_nodes}, "
            f"value_width={self.value_width}, max_depth={self.max_depth})"
        )

    # -- traversal ---------------------------------------------------------

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index of every (tree, row) pair; shape ``(T, N)``.

        ``X`` must already be validated float64 ``(N, F)`` — callers
        are the estimators, which check once at their public boundary.
        Every iteration advances all pairs one level: gather the
        current nodes' features/thresholds, compare, step to a child.
        Leaves self-loop so the loop needs no masking; after
        ``max_depth`` steps every pair sits on its leaf.  The returned
        positions are *absolute* flat-table addresses.
        """
        n, n_feat = X.shape
        T = self.feature.shape[0]
        Xflat = X.reshape(-1) if X.flags.c_contiguous else np.ravel(X)
        # Row base of every sample in the flattened X (1, N).
        rows = shared_arange(n)[None, :] * n_feat
        pos = np.broadcast_to(self._roots, (T, n)).copy()
        for _ in range(self.max_depth):
            feat = self._feature_flat.take(pos)  # (T, N)
            # Leaf rows carry feature == -1: the gather below reads the
            # sample's last feature (valid, if meaningless), and their
            # self-looped children make the comparison irrelevant.
            go_left = Xflat.take(rows + feat) <= self._threshold_flat.take(pos)
            pos = np.where(
                go_left, self._left_flat.take(pos), self._right_flat.take(pos)
            )
        return pos

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf payload of every (tree, row) pair; shape ``(T, N, d)``."""
        return self._values_flat[self.apply(X)]

    def leaf_scalars(self, X: np.ndarray) -> np.ndarray:
        """Leaf payload for width-1 tables; shape ``(T, N)``.

        ``take`` reads the ``(T*M, 1)`` payload as flat, so the node
        address doubles as the payload address when the width is 1.
        """
        return self._values_flat.take(self.apply(X))


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _flatten(root, value_of: Callable, width: int, feature, threshold,
             left, right, values) -> int:
    """Preorder-flatten one tree into row 0.. of the given table slices.

    Returns the realised depth.  Leaves get ``feature = -1`` and
    self-looped children; internal nodes also carry their (padded)
    value so the table row layout matches the node graph one-to-one.
    """
    depth = 0
    # (node, parent_row, is_left, depth) — iterative preorder keeps the
    # flattening independent of Python's recursion limit.
    stack = [(root, -1, False, 0)]
    n = 0
    while stack:
        node, parent, is_left, d = stack.pop()
        i = n
        n += 1
        depth = max(depth, d)
        if parent >= 0:
            (left if is_left else right)[parent] = i
        v = value_of(node)
        if v is not None:
            values[i, : len(v)] = v
        if node.is_leaf:
            feature[i] = -1
            threshold[i] = 0.0
            left[i] = i
            right[i] = i
        else:
            feature[i] = node.feature
            threshold[i] = node.threshold
            # Push right first so the left child flattens to the next
            # row (preorder), matching the serializer's layout.
            stack.append((node.right, i, False, d + 1))
            stack.append((node.left, i, True, d + 1))
    return depth


def _count_nodes(root) -> int:
    n = 0
    stack = [root]
    while stack:
        node = stack.pop()
        n += 1
        if not node.is_leaf:
            stack.append(node.left)
            stack.append(node.right)
    return n


def compile_trees(
    roots: Sequence,
    value_of: Callable,
    value_width: int,
) -> TreeTable:
    """Lower ``roots`` (CART ``_Node`` or boosting ``_BNode`` graphs)
    into one fused :class:`TreeTable`.

    ``value_of(node)`` returns the node's payload vector (or ``None``
    for payload-free internal nodes); payloads narrower than
    ``value_width`` are zero-padded — ensemble accumulation over the
    padding adds exact zeros, keeping fused sums bit-identical to the
    per-member loops.

    Shorter trees are padded to the widest member's node count; their
    unused rows are self-looped leaves, so fused traversal of a ragged
    ensemble stays a single rectangular gather per step.
    """
    if not roots:
        raise ValueError("compile_trees needs at least one tree")
    counts = [_count_nodes(r) for r in roots]
    T, M = len(roots), max(counts)
    feature = np.full((T, M), -1, dtype=np.int32)
    threshold = np.zeros((T, M), dtype=np.float64)
    # Unused padding rows self-loop in place, like real leaves.
    left = np.tile(np.arange(M, dtype=np.int32), (T, 1))
    right = left.copy()
    values = np.zeros((T, M, value_width), dtype=np.float64)
    max_depth = 0
    for k, root in enumerate(roots):
        d = _flatten(root, value_of, value_width,
                     feature[k], threshold[k], left[k], right[k], values[k])
        max_depth = max(max_depth, d)
    return TreeTable(feature, threshold, left, right, values, max_depth)


def compile_cart(root, value_width: int) -> TreeTable:
    """Lower one fitted CART node graph (``_Node``) to a 1-tree table."""
    return compile_trees([root], lambda n: np.asarray(n.value), value_width)


def compile_cart_forest(trees: Sequence, value_width: int) -> TreeTable:
    """Fuse a bagged forest's CART trees into one table.

    ``value_width`` is the forest-level class count; bootstrap members
    that saw fewer classes get zero-padded probability rows (adding
    exact zeros, see :func:`compile_trees`).
    """
    return compile_trees(
        [t.root_ for t in trees], lambda n: np.asarray(n.value), value_width
    )


def compile_boost(trees: Sequence) -> TreeTable:
    """Fuse a booster's regression trees (``_BNode`` graphs, in
    accumulation order) into one width-1 table."""
    return compile_trees(
        [t.root for t in trees], lambda n: (n.weight,), 1
    )
