"""Multi-layer perceptrons and MLP ensembles.

The paper's MLP (Sec. IV-D) has three hidden layers of 96, 48 and 16
ReLU neurons trained with mini-batches of 16; its ensemble variant —
the best regressor in Sec. VI — averages several independently seeded
MLPs.  Both are reproduced here on a compact Adam-trained numpy
implementation:

* :class:`MLPClassifier` — softmax output, cross-entropy loss;
* :class:`MLPRegressor`  — linear output, mean-squared-error loss;
* :class:`MLPEnsembleClassifier` / :class:`MLPEnsembleRegressor` —
  probability / prediction averaging over ``n_members`` seeds.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .base import BaseEstimator, check_X, check_X_y

__all__ = [
    "MLPClassifier",
    "MLPRegressor",
    "MLPEnsembleClassifier",
    "MLPEnsembleRegressor",
]

#: The paper's hidden topology (Sec. IV-D).
PAPER_HIDDEN = (96, 48, 16)


class _AdamState:
    """Per-parameter Adam moments."""

    def __init__(self, shapes: List[Tuple[int, ...]]) -> None:
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(self, params, grads, lr, beta1=0.9, beta2=0.999, eps=1e-8):
        self.t += 1
        bc1 = 1.0 - beta1**self.t
        bc2 = 1.0 - beta2**self.t
        for p, g, m, v in zip(params, grads, self.m, self.v):
            m *= beta1
            m += (1.0 - beta1) * g
            v *= beta2
            v += (1.0 - beta2) * (g * g)
            p -= lr * (m / bc1) / (np.sqrt(v / bc2) + eps)


class _BaseMLP(BaseEstimator):
    """Shared forward/backward machinery (ReLU hidden layers)."""

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = PAPER_HIDDEN,
        learning_rate: float = 1e-3,
        batch_size: int = 16,
        n_epochs: int = 200,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.l2 = l2
        self.seed = seed

    # hooks ------------------------------------------------------------

    def _output_dim(self, y: np.ndarray) -> int:
        raise NotImplementedError

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _output_grad(self, out: np.ndarray, target: np.ndarray) -> np.ndarray:
        """d loss / d pre-activation of the output layer (per sample)."""
        raise NotImplementedError

    # core -------------------------------------------------------------

    def _init_weights(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        sizes = (n_in, *self.hidden_layer_sizes, n_out)
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            # He initialisation for the ReLU stack.
            self.weights_.append(rng.standard_normal((a, b)) * np.sqrt(2.0 / a))
            self.biases_.append(np.zeros(b))

    def _forward(self, X: np.ndarray) -> List[np.ndarray]:
        """Return activations of every layer (input first, output last)."""
        acts = [X]
        h = X
        last = len(self.weights_) - 1
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ W + b
            h = z if i == last else np.maximum(z, 0.0)
            acts.append(h)
        return acts

    def _fit_core(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        warm: bool = False,
        n_epochs: Optional[int] = None,
    ) -> None:
        epochs = self.n_epochs if n_epochs is None else int(n_epochs)
        if self.batch_size < 1 or epochs < 1:
            raise ValueError("batch_size and n_epochs must be >= 1")
        n, d = X.shape
        out_dim = self._output_dim(y)
        target = self._prepare_targets(y)
        if warm:
            # Continue Adam from the current weights (online / warm-start
            # training): no re-initialisation, a fresh derived RNG per
            # warm round so repeated warm fits stay deterministic but
            # don't replay the cold fit's permutation stream.
            self._require_fitted("weights_")
            if self.weights_[0].shape[0] != d:
                raise ValueError(
                    f"warm_fit X has {d} features, model expects "
                    f"{self.weights_[0].shape[0]}"
                )
            if self.weights_[-1].shape[1] != out_dim:
                raise ValueError(
                    f"warm_fit target dimension {out_dim} does not match the "
                    f"fitted output layer ({self.weights_[-1].shape[1]})"
                )
            round_ = getattr(self, "n_warm_fits_", 0)
            rng = np.random.default_rng((self.seed, 0x5EED, round_))
            self.n_warm_fits_ = round_ + 1
        else:
            rng = np.random.default_rng(self.seed)
            self._init_weights(d, out_dim, rng)
        shapes = [w.shape for w in self.weights_] + [b.shape for b in self.biases_]
        adam = _AdamState(shapes)
        n_layers = len(self.weights_)
        # Per-iteration fit timing on the shared telemetry spine; read
        # the enabled flag once so the epoch loop stays a single branch.
        track = obs.enabled()
        fit_start = time.perf_counter() if track else 0.0
        for _ in range(epochs):
            epoch_start = time.perf_counter() if track else 0.0
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                acts = self._forward(X[idx])
                delta = self._output_grad(acts[-1], target[idx]) / idx.size
                grads_w = [None] * n_layers
                grads_b = [None] * n_layers
                for layer in range(n_layers - 1, -1, -1):
                    grads_w[layer] = acts[layer].T @ delta + self.l2 * self.weights_[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (acts[layer] > 0)
                adam.step(
                    self.weights_ + self.biases_,
                    grads_w + grads_b,
                    self.learning_rate,
                )
            if track:
                obs.incr("ml.mlp.epochs")
                obs.observe("ml.mlp.epoch_seconds",
                            time.perf_counter() - epoch_start)
        if track:
            obs.record_span("ml.mlp.fit", time.perf_counter() - fit_start)

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        """One-time boundary validation (dtype/shape/feature width)."""
        X = check_X(X)
        if X.shape[1] != self.weights_[0].shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.weights_[0].shape[0]}"
            )
        return X

    def _raw_output_trusted(self, X: np.ndarray) -> np.ndarray:
        """``_raw_output`` minus validation — for ensemble wrappers that
        validate once at their own public boundary."""
        return self._forward(X)[-1]

    def _raw_output(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("weights_")
        return self._forward(self._validate_X(X))[-1]


class MLPClassifier(_BaseMLP):
    """Softmax MLP classifier (cross-entropy loss)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self._fit_core(X, y)
        return self

    def _output_dim(self, y: np.ndarray) -> int:
        return self.n_classes_

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        onehot = np.zeros((y.size, self.n_classes_))
        onehot[np.arange(y.size), y] = 1.0
        return onehot

    def _output_grad(self, out: np.ndarray, target: np.ndarray) -> np.ndarray:
        # Softmax + cross-entropy: gradient is (p - onehot).
        z = out - out.max(axis=1, keepdims=True)
        e = np.exp(z)
        p = e / e.sum(axis=1, keepdims=True)
        return p - target

    def warm_fit(
        self, X: np.ndarray, y: np.ndarray, n_epochs: Optional[int] = None
    ) -> "MLPClassifier":
        """Continue training the fitted network on new rows (in place).

        The class vocabulary is frozen by the cold fit — labels must
        stay below ``n_classes_``.  ``n_epochs`` defaults to the
        constructor setting; online refreshes typically pass a much
        smaller count.
        """
        self._require_fitted("weights_", "n_classes_")
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0 or y.max() >= self.n_classes_:
            raise ValueError(
                f"warm_fit labels must stay within the fitted "
                f"{self.n_classes_} classes; got range "
                f"[{y.min()}, {y.max()}]"
            )
        self._fit_core(X, y, warm=True, n_epochs=n_epochs)
        return self

    def _predict_proba_trusted(self, X: np.ndarray) -> np.ndarray:
        z = self._raw_output_trusted(X)
        z -= z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("weights_")
        return self._predict_proba_trusted(self._validate_X(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._raw_output(X), axis=1)


class MLPRegressor(_BaseMLP):
    """Linear-output MLP regressor (MSE loss)."""

    _extra_state_attrs = ("_y_mean", "_y_std")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X, y = check_X_y(X, y)
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        self._fit_core(X, y.astype(np.float64))
        return self

    def _output_dim(self, y: np.ndarray) -> int:
        return 1

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        # Standardise targets so the loss surface is well-conditioned
        # regardless of the label scale (log-times span decades).
        return ((y - self._y_mean) / self._y_std)[:, None]

    def _output_grad(self, out: np.ndarray, target: np.ndarray) -> np.ndarray:
        return 2.0 * (out - target)

    def warm_fit(
        self, X: np.ndarray, y: np.ndarray, n_epochs: Optional[int] = None
    ) -> "MLPRegressor":
        """Continue training the fitted network on new rows (in place).

        The target standardisation moments are frozen by the cold fit
        so the output head stays calibrated across warm rounds.
        """
        self._require_fitted("weights_")
        X, y = check_X_y(X, y)
        self._fit_core(X, y.astype(np.float64), warm=True, n_epochs=n_epochs)
        return self

    def _predict_trusted(self, X: np.ndarray) -> np.ndarray:
        z = self._raw_output_trusted(X)[:, 0]
        return z * self._y_std + self._y_mean

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("weights_")
        return self._predict_trusted(self._validate_X(X))


class _BaseEnsemble(BaseEstimator):
    """Average of ``n_members`` independently seeded base MLPs."""

    _member_cls = None  # set by subclasses

    def __init__(
        self,
        n_members: int = 5,
        hidden_layer_sizes: Sequence[int] = PAPER_HIDDEN,
        learning_rate: float = 1e-3,
        batch_size: int = 16,
        n_epochs: int = 200,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.n_members = n_members
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.l2 = l2
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray):
        if self.n_members < 1:
            raise ValueError("n_members must be >= 1")
        self.members_ = []
        for k in range(self.n_members):
            member = self._member_cls(
                hidden_layer_sizes=self.hidden_layer_sizes,
                learning_rate=self.learning_rate,
                batch_size=self.batch_size,
                n_epochs=self.n_epochs,
                l2=self.l2,
                seed=self.seed * 1009 + k,
            )
            member.fit(X, y)
            self.members_.append(member)
        return self

    def warm_fit(self, X: np.ndarray, y: np.ndarray, n_epochs=None):
        """Warm-start every member on the new rows (in place)."""
        self._require_fitted("members_")
        for member in self.members_:
            member.warm_fit(X, y, n_epochs=n_epochs)
        return self


class MLPEnsembleClassifier(_BaseEnsemble):
    """Probability-averaging ensemble of :class:`MLPClassifier`."""

    _member_cls = MLPClassifier

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("members_")
        # Validate once here; members share the input layer width, so
        # the per-member walk runs the trusted fast path.
        X = self.members_[0]._validate_X(X)
        return np.mean(
            [m._predict_proba_trusted(X) for m in self.members_], axis=0
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)


class MLPEnsembleRegressor(_BaseEnsemble):
    """Prediction-averaging ensemble of :class:`MLPRegressor`.

    This is the paper's best performance-model (Sec. VI-A: ~3.5 %
    overall RME improvement over a single MLP).
    """

    _member_cls = MLPRegressor

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("members_")
        X = self.members_[0]._validate_X(X)
        return np.mean([m._predict_trusted(X) for m in self.members_], axis=0)
