"""Pure-numpy estimator serialization (the model-registry artifact codec).

Every estimator in the stack persists through three layers:

1. ``BaseEstimator.get_state()`` / ``set_state()`` capture the fitted
   attributes of one estimator instance (see :mod:`repro.ml.base`);
2. :func:`encode` / :func:`decode` turn an arbitrary object graph —
   scalars, numpy arrays, tuples, dicts, nested estimators (pipelines,
   MLP ensembles, forests) and the CART/boosting node structures — into
   a JSON-safe structure plus a flat dict of numpy arrays;
3. :func:`save_estimator` / :func:`load_estimator` write that pair to a
   single ``.npz`` (``allow_pickle=False`` end to end — artifacts
   contain no executable payload, unlike pickles).

Round-trips are **bit-identical**: array payloads go through ``.npz``
verbatim, scalar floats go through ``repr``-exact JSON, and tree
structures are rebuilt node-for-node (asserted by
``tests/test_ml_serialize.py`` and the registry round-trip tests).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "SerializationError",
    "STATE_SCHEMA",
    "SCHEMA_COMPAT",
    "encode",
    "decode",
    "encode_estimator",
    "decode_estimator",
    "save_estimator",
    "load_estimator",
    "save_payload",
    "load_payload",
]

#: Schema tag written into every artifact; bumped on layout changes.
#: v2 adds the ``__tree_table__`` structure tag carrying compiled
#: flat-array inference tables (:mod:`repro.ml.compiled`).
STATE_SCHEMA = "repro-ml-state/v2"

#: Older schema tags each current tag still reads.  v1 artifacts simply
#: lack compiled tables; ``set_state`` → ``_post_restore`` recompiles
#: them from the node graphs on load.
SCHEMA_COMPAT: Dict[str, Tuple[str, ...]] = {
    "repro-ml-state/v2": ("repro-ml-state/v1",),
    "repro-serve-artifact/v2": ("repro-serve-artifact/v1",),
}


class SerializationError(RuntimeError):
    """Raised on un-encodable objects or corrupt/unknown artifacts."""


# ---------------------------------------------------------------------------
# Class registry
# ---------------------------------------------------------------------------


def _estimator_classes() -> Dict[str, type]:
    """Name → class map of every serializable estimator (lazy import)."""
    from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
    from .cnn import SimpleCNNClassifier
    from .forest import RandomForestClassifier, RandomForestRegressor
    from .mlp import (
        MLPClassifier,
        MLPEnsembleClassifier,
        MLPEnsembleRegressor,
        MLPRegressor,
    )
    from .preprocessing import LabelEncoder, Log1pTransformer, Pipeline, StandardScaler
    from .svm import SVC, SVR
    from .tree import DecisionTreeClassifier, DecisionTreeRegressor

    classes = (
        DecisionTreeClassifier,
        DecisionTreeRegressor,
        GradientBoostingClassifier,
        GradientBoostingRegressor,
        RandomForestClassifier,
        RandomForestRegressor,
        MLPClassifier,
        MLPRegressor,
        MLPEnsembleClassifier,
        MLPEnsembleRegressor,
        SVC,
        SVR,
        SimpleCNNClassifier,
        StandardScaler,
        Log1pTransformer,
        LabelEncoder,
        Pipeline,
    )
    return {cls.__name__: cls for cls in classes}


# ---------------------------------------------------------------------------
# Tree-structure flattening
# ---------------------------------------------------------------------------
# CART nodes pack into two arrays (preorder):
#   meta   (n, 5)  = [feature, threshold, left, right, n_samples]
#   values (n, d)  = leaf/internal value vectors
# Boosting nodes pack into one (n, 5) array:
#   [feature, threshold, weight, left, right]
# Child indices are preorder positions; -1 marks a leaf.  Integers below
# 2**53 and float64 payloads survive the float64 packing exactly.


def _flatten_cart(root) -> Tuple[np.ndarray, np.ndarray]:
    meta: List[List[float]] = []
    values: List[np.ndarray] = []

    def visit(node) -> int:
        i = len(meta)
        meta.append([float(node.feature), float(node.threshold), -1.0, -1.0,
                     float(node.n_samples)])
        values.append(np.asarray(node.value, dtype=np.float64))
        if not node.is_leaf:
            meta[i][2] = float(visit(node.left))
            meta[i][3] = float(visit(node.right))
        return i

    visit(root)
    return np.array(meta, dtype=np.float64), np.vstack(values)


def _rebuild_cart(meta: np.ndarray, values: np.ndarray):
    from .tree import _Node

    def build(i: int):
        feature, threshold, left, right, n_samples = meta[i]
        node = _Node(
            feature=int(feature),
            threshold=float(threshold),
            value=values[i].copy(),
            n_samples=int(n_samples),
        )
        if node.feature >= 0:
            node.left = build(int(left))
            node.right = build(int(right))
        return node

    return build(0)


def _flatten_boost(root) -> np.ndarray:
    rows: List[List[float]] = []

    def visit(node) -> int:
        i = len(rows)
        rows.append([float(node.feature), float(node.threshold),
                     float(node.weight), -1.0, -1.0])
        if not node.is_leaf:
            rows[i][3] = float(visit(node.left))
            rows[i][4] = float(visit(node.right))
        return i

    visit(root)
    return np.array(rows, dtype=np.float64)


def _rebuild_boost(rows: np.ndarray):
    from .boosting import _BNode

    def build(i: int):
        feature, threshold, weight, left, right = rows[i]
        node = _BNode(feature=int(feature), threshold=float(threshold),
                      weight=float(weight))
        if node.feature >= 0:
            node.left = build(int(left))
            node.right = build(int(right))
        return node

    return build(0)


# ---------------------------------------------------------------------------
# Recursive value codec
# ---------------------------------------------------------------------------


class _Encoder:
    """Walks an object graph, spilling arrays into a flat dict."""

    def __init__(self) -> None:
        self.arrays: Dict[str, np.ndarray] = {}

    def _array_ref(self, arr: np.ndarray) -> Dict[str, str]:
        key = f"a{len(self.arrays)}"
        self.arrays[key] = np.ascontiguousarray(arr)
        return {"__nd__": key}

    def encode(self, obj: Any) -> Any:
        from .base import BaseEstimator
        from .boosting import _BoostTree
        from .compiled import TreeTable
        from .tree import _Node

        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, (np.bool_,)):
            return bool(obj)
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return self._array_ref(obj)
        if isinstance(obj, tuple):
            return {"__tuple__": [self.encode(v) for v in obj]}
        if isinstance(obj, list):
            return [self.encode(v) for v in obj]
        if isinstance(obj, dict):
            return {"__map__": [[self.encode(k), self.encode(v)]
                                for k, v in obj.items()]}
        if isinstance(obj, BaseEstimator):
            return self.encode_estimator(obj)
        if isinstance(obj, _Node):
            meta, values = _flatten_cart(obj)
            return {"__cart__": [self._array_ref(meta), self._array_ref(values)]}
        if isinstance(obj, _BoostTree):
            return {
                "__boost_tree__": {
                    "params": [obj.max_depth, obj.reg_lambda, obj.gamma,
                               obj.min_child_weight, obj.presort],
                    "n_features": int(obj.n_features),
                    "nodes": self._array_ref(_flatten_boost(obj.root)),
                    "gain": self._array_ref(obj.gain_by_feature),
                    "splits": self._array_ref(obj.splits_by_feature),
                }
            }
        if isinstance(obj, TreeTable):
            # Persisting the table lets registry loads serve straight
            # from the artifact without re-lowering the node graphs.
            return {
                "__tree_table__": {
                    "feature": self._array_ref(obj.feature),
                    "threshold": self._array_ref(obj.threshold),
                    "left": self._array_ref(obj.left),
                    "right": self._array_ref(obj.right),
                    "values": self._array_ref(obj.values),
                    "max_depth": int(obj.max_depth),
                }
            }
        raise SerializationError(
            f"cannot serialize object of type {type(obj).__name__}"
        )

    def encode_estimator(self, est) -> Dict[str, Any]:
        from .preprocessing import Pipeline

        name = type(est).__name__
        if name not in _estimator_classes():
            raise SerializationError(f"unknown estimator class {name!r}")
        if isinstance(est, Pipeline):
            # get_params() deliberately clones steps (unfitted); a
            # pipeline artifact must instead carry its *fitted* steps.
            return {
                "__est__": "Pipeline",
                "steps": [[n, self.encode_estimator(s)] for n, s in est.steps],
            }
        return {
            "__est__": name,
            "params": self.encode(dict(est.get_params())),
            "state": self.encode(est.get_state()),
        }


class _Decoder:
    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self.arrays = arrays

    def _deref(self, ref: Dict[str, str]) -> np.ndarray:
        try:
            return self.arrays[ref["__nd__"]]
        except KeyError as exc:
            raise SerializationError(f"missing array payload {exc}") from None

    def decode(self, obj: Any) -> Any:
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, list):
            return [self.decode(v) for v in obj]
        if not isinstance(obj, dict):
            raise SerializationError(f"malformed structure node: {obj!r}")
        if "__nd__" in obj:
            return self._deref(obj)
        if "__tuple__" in obj:
            return tuple(self.decode(v) for v in obj["__tuple__"])
        if "__map__" in obj:
            return {self.decode(k): self.decode(v) for k, v in obj["__map__"]}
        if "__est__" in obj:
            return self.decode_estimator(obj)
        if "__cart__" in obj:
            meta_ref, values_ref = obj["__cart__"]
            return _rebuild_cart(self._deref(meta_ref), self._deref(values_ref))
        if "__boost_tree__" in obj:
            from .boosting import _BoostTree

            spec = obj["__boost_tree__"]
            max_depth, reg_lambda, gamma, min_child_weight, presort = spec["params"]
            tree = _BoostTree(int(max_depth), float(reg_lambda), float(gamma),
                              float(min_child_weight), presort=bool(presort))
            tree.n_features = int(spec["n_features"])
            tree.root = _rebuild_boost(self._deref(spec["nodes"]))
            tree.gain_by_feature = self._deref(spec["gain"])
            tree.splits_by_feature = self._deref(spec["splits"])
            return tree
        if "__tree_table__" in obj:
            from .compiled import TreeTable

            spec = obj["__tree_table__"]
            return TreeTable(
                self._deref(spec["feature"]),
                self._deref(spec["threshold"]),
                self._deref(spec["left"]),
                self._deref(spec["right"]),
                self._deref(spec["values"]),
                int(spec["max_depth"]),
            )
        raise SerializationError(f"unrecognised structure tag: {sorted(obj)}")

    def decode_estimator(self, obj: Dict[str, Any]):
        from .preprocessing import Pipeline

        name = obj["__est__"]
        classes = _estimator_classes()
        if name not in classes:
            raise SerializationError(f"unknown estimator class {name!r}")
        if name == "Pipeline":
            return Pipeline([[n, self.decode_estimator(s)]
                             for n, s in obj["steps"]])
        cls = classes[name]
        est = cls(**self.decode(obj["params"]))
        est.set_state(self.decode(obj["state"]))
        return est


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def encode(obj: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Encode an object graph → (JSON-safe structure, array payloads)."""
    enc = _Encoder()
    structure = enc.encode(obj)
    return structure, enc.arrays


def decode(structure: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode`."""
    return _Decoder(arrays).decode(structure)


def encode_estimator(est) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Encode one fitted estimator (convenience wrapper)."""
    enc = _Encoder()
    structure = enc.encode_estimator(est)
    return structure, enc.arrays


def decode_estimator(structure: Any, arrays: Dict[str, np.ndarray]):
    """Inverse of :func:`encode_estimator`."""
    return _Decoder(arrays).decode_estimator(structure)


def _write_npz(path, structure: Any, arrays: Dict[str, np.ndarray],
               schema: str) -> None:
    header = json.dumps({"schema": schema, "root": structure})
    np.savez_compressed(path, __state__=np.array(header), **arrays)


def _read_npz(path, schema: str) -> Tuple[Any, Dict[str, np.ndarray]]:
    try:
        with np.load(path, allow_pickle=False) as z:
            header = json.loads(str(z["__state__"][()]))
            arrays = {k: z[k] for k in z.files if k != "__state__"}
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"unreadable artifact {path}: {exc}") from exc
    found = header.get("schema")
    if found != schema and found not in SCHEMA_COMPAT.get(schema, ()):
        raise SerializationError(
            f"unsupported artifact schema {found!r}; expected {schema!r}"
        )
    return header["root"], arrays


def save_estimator(est, path) -> None:
    """Serialise a fitted estimator to one ``.npz`` artifact."""
    structure, arrays = encode_estimator(est)
    _write_npz(path, structure, arrays, STATE_SCHEMA)


def load_estimator(path):
    """Load an estimator saved by :func:`save_estimator`.

    Raises :class:`SerializationError` on schema mismatches or corrupt
    payloads; never unpickles.
    """
    structure, arrays = _read_npz(path, STATE_SCHEMA)
    return decode_estimator(structure, arrays)


def save_payload(payload: Any, path, *, schema: str = STATE_SCHEMA) -> None:
    """Serialise any encodable object graph to one ``.npz`` artifact.

    The generic sibling of :func:`save_estimator`: ``payload`` may be a
    dict of metadata wrapping one or more nested estimators (what the
    model registry and the core wrappers' ``save`` methods write).  A
    distinct ``schema`` tag namespaces artifact kinds — loading demands
    the same tag back.
    """
    structure, arrays = encode(payload)
    _write_npz(path, structure, arrays, schema)


def load_payload(path, *, schema: str = STATE_SCHEMA) -> Any:
    """Load an object graph saved by :func:`save_payload`.

    Raises :class:`SerializationError` on schema mismatches or corrupt
    payloads; never unpickles.
    """
    structure, arrays = _read_npz(path, schema)
    return decode(structure, arrays)
