"""Data splitting, k-fold cross-validation and exhaustive grid search.

Implements the paper's evaluation protocol (Sec. IV-B): 80/20
train-test splits, 5-fold cross-validation, and ``GridSearchCV``-style
exhaustive hyper-parameter search (the paper tunes XGBoost and SVM this
way, Sec. IV-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, check_X_y, clone
from .metrics import accuracy_score

__all__ = ["train_test_split", "KFold", "StratifiedKFold", "cross_val_score", "GridSearchCV"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_size: float = 0.2,
    seed: int = 0,
    stratify: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test (the paper's 80-20 protocol).

    With ``stratify=True`` the class proportions of ``y`` are preserved
    in both halves (requires at least one sample per class in each).
    """
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    if stratify:
        test_idx: List[int] = []
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            k = max(1, int(round(test_size * members.size))) if members.size > 1 else 0
            test_idx.extend(members[:k])
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Shuffled k-fold splitter with disjoint, exhaustive folds."""

    def __init__(self, n_splits: int = 5, *, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = int(n_splits)
        self.seed = int(seed)

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = np.sort(folds[i])
            train = np.sort(np.concatenate([folds[j] for j in range(self.n_splits) if j != i]))
            yield train, test


class StratifiedKFold(KFold):
    """K-fold that balances class proportions across folds."""

    def split_labels(self, y: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` with per-class round-robin folds."""
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        assignment = np.zeros(y.shape[0], dtype=np.int64)
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            assignment[members] = np.arange(members.size) % self.n_splits
        for i in range(self.n_splits):
            test = np.flatnonzero(assignment == i)
            if test.size == 0:
                continue
            train = np.flatnonzero(assignment != i)
            yield train, test


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    *,
    cv: int = 5,
    seed: int = 0,
    scorer: Optional[Callable] = None,
) -> np.ndarray:
    """Per-fold test scores (default scorer: accuracy).

    The estimator is cloned per fold, so the input instance is never
    mutated.
    """
    X, y = check_X_y(X, y)
    scorer = scorer or (lambda est, Xt, yt: accuracy_score(yt, est.predict(Xt)))
    scores = []
    for train, test in KFold(cv, seed=seed).split(X.shape[0]):
        est = clone(estimator)
        est.fit(X[train], y[train])
        scores.append(scorer(est, X[test], y[test]))
    return np.array(scores)


@dataclass
class GridSearchCV:
    """Exhaustive hyper-parameter search with k-fold validation.

    Mirrors the paper's use of scikit-learn's ``GridSearchCV`` to tune
    XGBoost (n_estimators / max_depth / learning_rate) and SVM
    (C / gamma), Sec. IV-D.

    Parameters
    ----------
    estimator:
        Template estimator (cloned for every fit).
    param_grid:
        Mapping name → candidate values; the search covers the full
        Cartesian product.
    cv:
        Number of folds.
    scorer:
        ``scorer(fitted_est, X_test, y_test) -> float`` (higher is
        better).  Defaults to accuracy.
    seed:
        Fold-shuffling seed.
    """

    estimator: BaseEstimator
    param_grid: Dict[str, Sequence]
    cv: int = 5
    scorer: Optional[Callable] = None
    seed: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        X, y = check_X_y(X, y)
        if not self.param_grid:
            raise ValueError("param_grid must not be empty")
        names = list(self.param_grid)
        self.results_: List[Dict] = []
        best_score = -np.inf
        for combo in itertools.product(*(self.param_grid[n] for n in names)):
            params = dict(zip(names, combo))
            est = clone(self.estimator).set_params(**params)
            scores = cross_val_score(
                est, X, y, cv=self.cv, seed=self.seed, scorer=self.scorer
            )
            mean = float(scores.mean())
            self.results_.append({"params": params, "mean_score": mean,
                                  "fold_scores": scores})
            if mean > best_score:
                best_score = mean
                self.best_params_ = params
                self.best_score_ = mean
        # Refit on the full data with the winning configuration.
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(X)
