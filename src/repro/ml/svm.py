"""Support Vector Machines: kernel SVC (SMO) and a kernel SVR.

The paper evaluates a multiclass SVM with RBF kernel tuned over
``C ∈ {100, 1000, 10000}`` and ``gamma ∈ {.1, .01, .001}``
(Sec. IV-D, following Benatia et al.).  :class:`SVC` reproduces that
model: a binary soft-margin SVM trained with simplified SMO (Platt's
working-set heuristic with an error cache), lifted to multiclass by
one-vs-one voting.

:class:`SVR` (epsilon-insensitive regression) uses a Pegasos-style
kernelised subgradient solver — lighter than full SMO but with the
same hypothesis class — and exists for the performance-modeling
comparisons (Benatia et al. 2016 use SVR there).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .base import BaseEstimator, check_X, check_X_y

__all__ = ["SVC", "SVR", "rbf_kernel", "linear_kernel"]


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix ``exp(-gamma ||a - b||^2)``."""
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    d2 = np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * d2)


def linear_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 0.0) -> np.ndarray:
    """Plain inner-product kernel (gamma ignored)."""
    return A @ B.T


_KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


def _smo_binary(
    K: np.ndarray,
    y: np.ndarray,
    C: float,
    tol: float,
    max_passes: int,
    max_iter: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float]:
    """Simplified SMO on a precomputed kernel matrix.

    ``y`` must be ±1.  Returns ``(alpha, b)``.  The working-set choice
    is Platt's second heuristic: pick the partner maximising the error
    gap, falling back to a random index.
    """
    n = y.size
    alpha = np.zeros(n)
    b = 0.0
    # Error cache: E_i = f(x_i) - y_i, with f = K (alpha*y) + b.
    errors = -y.astype(np.float64)
    passes = 0
    it = 0
    while passes < max_passes and it < max_iter:
        changed = 0
        for i in range(n):
            Ei = errors[i]
            if not (
                (y[i] * Ei < -tol and alpha[i] < C)
                or (y[i] * Ei > tol and alpha[i] > 0)
            ):
                continue
            gaps = np.abs(errors - Ei)
            gaps[i] = -1.0
            j = int(np.argmax(gaps))
            if gaps[j] <= 0:
                j = int(rng.integers(0, n - 1))
                j += j >= i
            Ej = errors[j]
            ai_old, aj_old = alpha[i], alpha[j]
            if y[i] != y[j]:
                L, H = max(0.0, aj_old - ai_old), min(C, C + aj_old - ai_old)
            else:
                L, H = max(0.0, ai_old + aj_old - C), min(C, ai_old + aj_old)
            if H - L < 1e-12:
                continue
            eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
            if eta >= 0:
                continue
            aj = np.clip(aj_old - y[j] * (Ei - Ej) / eta, L, H)
            if abs(aj - aj_old) < 1e-7 * (aj + aj_old + 1e-7):
                continue
            ai = ai_old + y[i] * y[j] * (aj_old - aj)
            alpha[i], alpha[j] = ai, aj
            # Bias update (Platt's rules).
            b1 = b - Ei - y[i] * (ai - ai_old) * K[i, i] - y[j] * (aj - aj_old) * K[i, j]
            b2 = b - Ej - y[i] * (ai - ai_old) * K[i, j] - y[j] * (aj - aj_old) * K[j, j]
            if 0 < ai < C:
                b_new = b1
            elif 0 < aj < C:
                b_new = b2
            else:
                b_new = 0.5 * (b1 + b2)
            # Incremental error-cache refresh.
            errors += (
                y[i] * (ai - ai_old) * K[i]
                + y[j] * (aj - aj_old) * K[j]
                + (b_new - b)
            )
            b = b_new
            changed += 1
        it += 1
        passes = passes + 1 if changed == 0 else 0
    return alpha, b


class SVC(BaseEstimator):
    """Soft-margin kernel SVM classifier (one-vs-one multiclass).

    Parameters
    ----------
    C:
        Soft-margin penalty (larger = fit training data harder).
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (n_features * X.var())``.
    tol:
        KKT violation tolerance of the SMO solver.
    max_passes:
        SMO stops after this many full passes without a change.
    max_iter:
        Hard iteration cap (each iteration is one pass over samples).
    seed:
        Seed of the random working-set fallback.
    """

    _extra_state_attrs = ("_machines",)

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma="scale",
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 60,
        seed: int = 0,
    ) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed

    def _gamma_value(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}")
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("SVC needs at least two classes")
        self.gamma_ = self._gamma_value(X)
        rng = np.random.default_rng(self.seed)
        kern = _KERNELS[self.kernel]

        # One-vs-one: train a binary machine per class pair on the
        # samples of those two classes only.
        self._machines: List[Dict] = []
        for a_i in range(self.classes_.size):
            for b_i in range(a_i + 1, self.classes_.size):
                ca, cb = self.classes_[a_i], self.classes_[b_i]
                mask = (y == ca) | (y == cb)
                Xp = X[mask]
                yp = np.where(y[mask] == ca, 1.0, -1.0)
                K = kern(Xp, Xp, self.gamma_)
                alpha, bias = _smo_binary(
                    K, yp, self.C, self.tol, self.max_passes, self.max_iter, rng
                )
                sv = alpha > 1e-10
                self._machines.append(
                    {
                        "pair": (ca, cb),
                        "X": Xp[sv],
                        "coef": (alpha * yp)[sv],
                        "b": bias,
                    }
                )
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Pairwise decision values, ``(n_samples, n_pairs)``."""
        self._require_fitted("_machines")
        X = check_X(X)
        kern = _KERNELS[self.kernel]
        cols = []
        for m in self._machines:
            if m["X"].shape[0] == 0:
                cols.append(np.zeros(X.shape[0]))
                continue
            Kx = kern(X, m["X"], self.gamma_)
            cols.append(Kx @ m["coef"] + m["b"])
        return np.column_stack(cols)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """One-vs-one majority vote; ties broken by summed margins."""
        self._require_fitted("_machines")
        X = check_X(X)
        n = X.shape[0]
        K = self.classes_.size
        votes = np.zeros((n, K))
        margins = np.zeros((n, K))
        dec = self.decision_function(X)
        for col, m in enumerate(self._machines):
            ca, cb = m["pair"]
            ia = int(np.searchsorted(self.classes_, ca))
            ib = int(np.searchsorted(self.classes_, cb))
            d = dec[:, col]
            win_a = d >= 0
            votes[win_a, ia] += 1
            votes[~win_a, ib] += 1
            margins[:, ia] += d
            margins[:, ib] -= d
        # Lexicographic argmax on (votes, margins).
        score = votes + 1e-9 * np.tanh(margins)
        return self.classes_[np.argmax(score, axis=1)]


class SVR(BaseEstimator):
    """Epsilon-insensitive kernel regression (Pegasos-style solver).

    Minimises ``λ/2 ||f||² + (1/n) Σ max(0, |f(x_i) − y_i| − ε)`` over
    the RKHS via stochastic subgradient steps on the representer
    coefficients; ``C`` maps to ``λ = 1 / (C n)`` as in libsvm.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
        gamma="scale",
        n_epochs: int = 60,
        seed: int = 0,
    ) -> None:
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.n_epochs = n_epochs
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        if self.C <= 0 or self.epsilon < 0:
            raise ValueError("C must be positive and epsilon non-negative")
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        n = y.size
        if self.gamma == "scale":
            var = X.var()
            self.gamma_ = 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        else:
            self.gamma_ = float(self.gamma)
        kern = _KERNELS[self.kernel]
        K = kern(X, X, self.gamma_)
        lam = 1.0 / (self.C * n)
        beta = np.zeros(n)
        b = float(np.median(y))
        rng = np.random.default_rng(self.seed)
        t = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                resid = K[i] @ beta + b - y[i]
                beta *= 1.0 - eta * lam
                if resid > self.epsilon:
                    beta[i] -= eta / n
                    b -= eta / n
                elif resid < -self.epsilon:
                    beta[i] += eta / n
                    b += eta / n
        self.X_ = X
        self.beta_ = beta
        self.b_ = b
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("beta_")
        X = check_X(X)
        kern = _KERNELS[self.kernel]
        return kern(X, self.X_, self.gamma_) @ self.beta_ + self.b_
