"""Feature preprocessing: scaling, log-compression, label encoding.

The paper's features span ten decades (``nnz_tot`` from 3 to 96M), so
both the SVM and the MLP need the standard pipeline: log-compress the
heavy-tailed counts, then standardise.  XGBoost-style trees are
scale-invariant and can consume the raw features.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .base import BaseEstimator, check_X

__all__ = ["StandardScaler", "Log1pTransformer", "LabelEncoder", "Pipeline"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features get unit scale so transforming them is a no-op
    rather than a division by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("mean_", "scale_")
        X = check_X(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("mean_", "scale_")
        return np.asarray(X) * self.scale_ + self.mean_

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class Log1pTransformer(BaseEstimator):
    """Apply ``log1p`` to (selected) non-negative heavy-tailed columns.

    Parameters
    ----------
    columns:
        Indices to transform; ``None`` transforms every column.
        Negative inputs are clipped to 0 first (the paper's features
        are all non-negative).
    """

    def __init__(self, columns: Optional[Sequence[int]] = None) -> None:
        self.columns = columns

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "Log1pTransformer":
        X = check_X(X)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("n_features_")
        X = check_X(X).copy()
        cols = range(X.shape[1]) if self.columns is None else self.columns
        for c in cols:
            X[:, c] = np.log1p(np.maximum(X[:, c], 0.0))
        return X

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class LabelEncoder(BaseEstimator):
    """Map arbitrary hashable labels to contiguous integers 0..K-1."""

    def _post_restore(self) -> None:
        # The label→index dict is derived from classes_; rebuild it
        # rather than persisting a non-array mapping.
        if hasattr(self, "classes_"):
            self._index = {c: i for i, c in enumerate(self.classes_)}

    def fit(self, y: Sequence) -> "LabelEncoder":
        self.classes_ = np.array(sorted(set(y)))
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, y: Sequence) -> np.ndarray:
        self._require_fitted("classes_")
        try:
            return np.array([self._index[v] for v in y], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, y: Sequence) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, idx: np.ndarray) -> np.ndarray:
        self._require_fitted("classes_")
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.classes_.size):
            raise ValueError("encoded label out of range")
        return self.classes_[idx]


class Pipeline(BaseEstimator):
    """Chain transformers with a final estimator.

    ``steps`` is a list of ``(name, estimator)`` pairs; every step but
    the last must provide ``fit_transform``/``transform``, the last must
    provide ``fit``/``predict``.
    """

    def __init__(self, steps) -> None:
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        self.steps = steps

    def get_params(self):
        # Cloning a pipeline must not share (possibly fitted) step
        # instances between the clone and the original.
        from .base import clone as _clone

        return {"steps": [(name, _clone(est)) for name, est in self.steps]}

    @property
    def _final(self):
        return self.steps[-1][1]

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "Pipeline":
        for _, step in self.steps[:-1]:
            X = step.fit_transform(X, y)
        self._final.fit(X, y)
        return self

    def warm_fit(self, X: np.ndarray, y: Optional[np.ndarray] = None, **kw) -> "Pipeline":
        """Warm-start the final estimator on new rows (in place).

        The transformer steps are **not** refitted: the scaling the
        final estimator's weights were trained against must stay fixed
        across warm rounds, so new rows are pushed through the already
        fitted transforms.
        """
        final = self._final
        if not hasattr(final, "warm_fit"):
            raise AttributeError(
                f"final step {type(final).__name__} does not support warm_fit"
            )
        final.warm_fit(self._transform(X), y, **kw)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        for _, step in self.steps[:-1]:
            X = step.transform(X)
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._final.predict(self._transform(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._final.predict_proba(self._transform(X))
