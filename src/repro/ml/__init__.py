"""Pure-numpy machine-learning stack (paper Sec. II-B).

Implements, from scratch, every model class the paper evaluates:

* :class:`~repro.ml.tree.DecisionTreeClassifier` /
  :class:`~repro.ml.tree.DecisionTreeRegressor` — CART (Sec. II-B.1),
* :class:`~repro.ml.svm.SVC` / :class:`~repro.ml.svm.SVR` — kernel SVM
  via SMO (Sec. II-B.2),
* :class:`~repro.ml.mlp.MLPClassifier` /
  :class:`~repro.ml.mlp.MLPRegressor` and their ensembles
  (Sec. II-B.3 / Sec. VI),
* :class:`~repro.ml.boosting.GradientBoostingClassifier` /
  :class:`~repro.ml.boosting.GradientBoostingRegressor` — XGBoost-style
  second-order boosting (Sec. II-B.4),

plus preprocessing, metrics (accuracy, the paper's RME, slowdown
histograms) and model selection (k-fold CV, 80/20 splits, GridSearchCV).
"""

from .base import BaseEstimator, NotFittedError, check_X, check_X_y, clone  # noqa: F401
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor  # noqa: F401
from .cnn import SimpleCNNClassifier  # noqa: F401
from .forest import RandomForestClassifier, RandomForestRegressor  # noqa: F401
from .metrics import (  # noqa: F401
    SLOWDOWN_THRESHOLDS,
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    relative_mean_error,
    slowdown_factors,
    slowdown_histogram,
)
from .mlp import (  # noqa: F401
    MLPClassifier,
    MLPEnsembleClassifier,
    MLPEnsembleRegressor,
    MLPRegressor,
)
from .model_selection import (  # noqa: F401
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from .preprocessing import LabelEncoder, Log1pTransformer, Pipeline, StandardScaler  # noqa: F401
from .serialize import (  # noqa: F401
    STATE_SCHEMA,
    SerializationError,
    decode_estimator,
    encode_estimator,
    load_estimator,
    save_estimator,
)
from .svm import SVC, SVR, linear_kernel, rbf_kernel  # noqa: F401
from .tree import DecisionTreeClassifier, DecisionTreeRegressor  # noqa: F401

__all__ = [
    "BaseEstimator",
    "NotFittedError",
    "clone",
    "check_X",
    "check_X_y",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "SimpleCNNClassifier",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "SVC",
    "SVR",
    "rbf_kernel",
    "linear_kernel",
    "MLPClassifier",
    "MLPRegressor",
    "MLPEnsembleClassifier",
    "MLPEnsembleRegressor",
    "StandardScaler",
    "Log1pTransformer",
    "LabelEncoder",
    "Pipeline",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_val_score",
    "GridSearchCV",
    "accuracy_score",
    "confusion_matrix",
    "relative_mean_error",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "slowdown_factors",
    "slowdown_histogram",
    "SLOWDOWN_THRESHOLDS",
    "STATE_SCHEMA",
    "SerializationError",
    "encode_estimator",
    "decode_estimator",
    "save_estimator",
    "load_estimator",
]
