"""CART decision trees (classifier + regressor), pure numpy.

The paper uses decision trees both directly (the "decs. tree" column of
Tables IV–X, following Sedaghati et al.) and as the weak learner inside
the XGBoost-style booster (:mod:`repro.ml.boosting`).

The implementation is exact greedy CART with **presorted features**
(the classic scikit-learn/LightGBM presort trick): every feature is
``argsort``-ed once at the root, and the per-feature sorted index
partitions are maintained down the tree with a stable O(n) boolean
partition per node.  Candidate thresholds at a node are then scored in
a single vectorised pass over the already-sorted values (prefix class
counts for Gini, prefix moments for variance reduction), so a node
costs O(n_features · n) instead of the O(n_features · n log n) of
re-sorting at every node.

Because both the root argsort and the partition are stable, the value
/ target sequences seen at every node are *identical* to the historical
per-node ``np.argsort(kind="stable")`` implementation, so splits,
thresholds and predictions are bit-for-bit unchanged (asserted by
``tests/test_ml_presort_equivalence.py``).  ``presort=False`` keeps the
historical per-node sorting path selectable — the perf harness uses it
as its before/after baseline.  Fits smaller than
:data:`PRESORT_MIN_SAMPLES` dispatch to the per-node path even under
``presort=True``: there the root argsort and index bookkeeping cost
more than they save.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import compiled as _compiled
from .base import BaseEstimator, check_X, check_X_y

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor", "PRESORT_MIN_SAMPLES"]

#: Sample count below which ``presort=True`` fits dispatch to the
#: per-node sorting path anyway.  Measured crossover on the labeling
#: feature matrices: presort is ~0.94x at n=36 and only breaks even
#: around n≈128, gaining 1.1–1.15x from n≈256 up.  Both paths build
#: bit-identical trees, so the threshold affects speed only.
PRESORT_MIN_SAMPLES = 128


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None  # class probs (clf) or [mean] (reg)
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_split_gini_sorted(
    xs: np.ndarray, ys: np.ndarray, n_classes: int, min_leaf: int
):
    """Best (threshold, impurity decrease) for Gini on presorted values.

    ``xs`` must be ascending with ties in stable (original-index) order
    and ``ys`` aligned to it.  Returns ``(None, 0)`` when no admissible
    split exists.
    """
    n = xs.size
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), ys] = 1.0
    left_counts = np.cumsum(onehot, axis=0)            # counts after i+1 items
    total = left_counts[-1]
    # Candidate split after position i (1-based count i+1); admissible when
    # the value actually changes and both sides satisfy min_leaf.
    i = np.arange(1, n)
    valid = xs[1:] != xs[:-1]
    valid &= (i >= min_leaf) & (n - i >= min_leaf)
    if not valid.any():
        return None, 0.0
    nl = i.astype(np.float64)
    nr = n - nl
    lc = left_counts[:-1]
    rc = total - lc
    gini_l = 1.0 - np.sum((lc / nl[:, None]) ** 2, axis=1)
    gini_r = 1.0 - np.sum((rc / nr[:, None]) ** 2, axis=1)
    parent = 1.0 - np.sum((total / n) ** 2)
    decrease = parent - (nl * gini_l + nr * gini_r) / n
    decrease[~valid] = -np.inf
    best = int(np.argmax(decrease))
    if decrease[best] <= 1e-12:
        return None, 0.0
    thr = 0.5 * (xs[best] + xs[best + 1])
    return float(thr), float(decrease[best])


def _best_split_gini(Xf: np.ndarray, y: np.ndarray, n_classes: int, min_leaf: int):
    """Best Gini split of one unsorted feature (sorts, then scores)."""
    order = np.argsort(Xf, kind="stable")
    return _best_split_gini_sorted(Xf[order], y[order], n_classes, min_leaf)


def _best_split_mse_sorted(xs: np.ndarray, ys: np.ndarray, min_leaf: int):
    """Best (threshold, SSE decrease / n) on presorted values."""
    n = xs.size
    csum = np.cumsum(ys)
    csq = np.cumsum(ys * ys)
    i = np.arange(1, n)
    valid = xs[1:] != xs[:-1]
    valid &= (i >= min_leaf) & (n - i >= min_leaf)
    if not valid.any():
        return None, 0.0
    nl = i.astype(np.float64)
    nr = n - nl
    sl, sq_l = csum[:-1], csq[:-1]
    sr, sq_r = csum[-1] - sl, csq[-1] - sq_l
    sse = (sq_l - sl * sl / nl) + (sq_r - sr * sr / nr)
    parent = csq[-1] - csum[-1] ** 2 / n
    decrease = (parent - sse) / n
    decrease[~valid] = -np.inf
    best = int(np.argmax(decrease))
    if decrease[best] <= 1e-12:
        return None, 0.0
    thr = 0.5 * (xs[best] + xs[best + 1])
    return float(thr), float(decrease[best])


def _best_split_mse(Xf: np.ndarray, y: np.ndarray, min_leaf: int):
    """Best regression split of one unsorted feature (sorts, then scores)."""
    order = np.argsort(Xf, kind="stable")
    return _best_split_mse_sorted(Xf[order], y[order], min_leaf)


class _BaseTree(BaseEstimator):
    """Shared CART machinery; subclasses define leaf values and splits."""

    def __init__(
        self,
        max_depth: int = 16,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
        presort: bool = True,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.presort = presort

    # subclass hooks ------------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _split(self, Xf: np.ndarray, y: np.ndarray):
        raise NotImplementedError

    def _split_sorted(self, xs: np.ndarray, ys: np.ndarray):
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError

    # fitting ---------------------------------------------------------------

    def _fit_arrays(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.n_features_ = X.shape[1]
        self.feature_importances_ = np.zeros(self.n_features_)
        self.split_counts_ = np.zeros(self.n_features_, dtype=np.int64)
        self._rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        idx = np.arange(n)
        if self.presort and n >= PRESORT_MIN_SAMPLES:
            # One stable argsort per feature for the whole fit; nodes
            # below only partition these index lists, never re-sort.
            sorted_idx = np.ascontiguousarray(np.argsort(X, axis=0, kind="stable").T)
            self._left_buf = np.empty(n, dtype=bool)
        else:
            # Below the crossover the root argsort plus per-node index
            # bookkeeping costs more than re-sorting tiny nodes, so fall
            # back to the per-node splitter.  Both paths produce
            # bit-identical trees, so this is purely a dispatch choice.
            sorted_idx = None
        self.root_ = self._build(X, y, idx, sorted_idx, depth=0)
        if sorted_idx is not None:
            del self._left_buf
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        # Lower the fresh node graph to its flat-array serving form.
        self.compiled_ = _compiled.compile_cart(self.root_, self.root_.value.size)

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        sorted_idx: Optional[np.ndarray],
        depth: int,
    ) -> _Node:
        n = idx.size
        node_y = y[idx]
        node = _Node(value=self._leaf_value(node_y), n_samples=n)
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or self._is_pure(node_y)
        ):
            return node

        features = np.arange(self.n_features_)
        if self.max_features is not None and self.max_features < self.n_features_:
            features = self._rng.choice(
                self.n_features_, size=self.max_features, replace=False
            )
        best_gain, best_feat, best_thr = 0.0, -1, 0.0
        if sorted_idx is None:
            node_X = X[idx]
            for f in features:
                thr, gain = self._split(node_X[:, f], node_y)
                if thr is not None and gain > best_gain:
                    best_gain, best_feat, best_thr = gain, int(f), thr
        else:
            for f in features:
                sf = sorted_idx[f]
                thr, gain = self._split_sorted(X[sf, f], y[sf])
                if thr is not None and gain > best_gain:
                    best_gain, best_feat, best_thr = gain, int(f), thr
        if best_feat < 0:
            return node

        left = X[idx, best_feat] <= best_thr
        node.feature = best_feat
        node.threshold = best_thr
        self.feature_importances_[best_feat] += best_gain * n
        self.split_counts_[best_feat] += 1
        idx_l, idx_r = idx[left], idx[~left]
        if sorted_idx is None:
            sl = sr = None
        else:
            # Stable partition of every feature's sorted index list: mark
            # the node's left samples in a shared boolean scratch, then
            # filter each sorted list — order (hence tie order) survives.
            buf = self._left_buf
            buf[idx] = left
            take = buf[sorted_idx]
            sl = sorted_idx[take].reshape(self.n_features_, idx_l.size)
            sr = sorted_idx[~take].reshape(self.n_features_, idx_r.size)
        node.left = self._build(X, y, idx_l, sl, depth + 1)
        node.right = self._build(X, y, idx_r, sr, depth + 1)
        return node

    # prediction --------------------------------------------------------------

    def _post_restore(self) -> None:
        # v1 artifacts carry only the node graph; recompile so restored
        # models serve from flat arrays too (v2 artifacts skip this).
        if getattr(self, "compiled_", None) is None and hasattr(self, "root_"):
            self.compiled_ = _compiled.compile_cart(
                self.root_, self.root_.value.size
            )

    def _predict_values(self, X: np.ndarray) -> np.ndarray:
        """Route all samples through the tree, returning leaf values."""
        self._require_fitted("root_")
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit with {self.n_features_}"
            )
        return self._predict_values_trusted(X)

    def _predict_values_trusted(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for already-validated float64 input.

        Dispatches to the compiled flat-array table when one is
        attached; the node-graph walk below stays as the bit-identical
        reference path (and the fallback for ``node_path()`` runs).
        """
        table = getattr(self, "compiled_", None)
        if table is not None and _compiled.compiled_enabled():
            return table.leaf_values(X)[0]
        return self._predict_values_nodes(X)

    def _predict_values_nodes(self, X: np.ndarray) -> np.ndarray:
        """Reference node-graph walk (trusted input)."""
        n = X.shape[0]
        out = np.empty((n, self.root_.value.size))
        # One shared root index vector and one boolean scratch reused
        # down the stack: idx[mask] copies immediately, so the scratch
        # can be overwritten by the next node.
        mask_buf = np.empty(n, dtype=bool)
        stack = [(self.root_, _compiled.shared_arange(n))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = np.less_equal(
                X[idx, node.feature], node.threshold, out=mask_buf[: idx.size]
            )
            idx_left = idx[mask]
            np.logical_not(mask, out=mask)
            stack.append((node.left, idx_left))
            stack.append((node.right, idx[mask]))
        return out

    @property
    def depth_(self) -> int:
        """Realised tree depth (0 for a stump that never split)."""
        def walk(node, d):
            if node.is_leaf:
                return d
            return max(walk(node.left, d + 1), walk(node.right, d + 1))
        self._require_fitted("root_")
        return walk(self.root_, 0)


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity CART classifier.

    Predicts the majority class of the reached leaf;
    ``predict_proba`` exposes the leaf class distribution.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self._fit_arrays(X, y)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        return counts / counts.sum()

    def _split(self, Xf: np.ndarray, y: np.ndarray):
        return _best_split_gini(Xf, y, self.n_classes_, self.min_samples_leaf)

    def _split_sorted(self, xs: np.ndarray, ys: np.ndarray):
        return _best_split_gini_sorted(xs, ys, self.n_classes_, self.min_samples_leaf)

    def _is_pure(self, y: np.ndarray) -> bool:
        return np.all(y == y[0])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities from the leaf distributions."""
        return self._predict_values(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._predict_values(X), axis=1)


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction CART regressor (leaf = mean target)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        self._fit_arrays(X, y)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _split(self, Xf: np.ndarray, y: np.ndarray):
        return _best_split_mse(Xf, y, self.min_samples_leaf)

    def _split_sorted(self, xs: np.ndarray, ys: np.ndarray):
        return _best_split_mse_sorted(xs, ys, self.min_samples_leaf)

    def _is_pure(self, y: np.ndarray) -> bool:
        return np.all(y == y[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._predict_values(X)[:, 0]
