"""XGBoost-style gradient-boosted trees (classifier + regressor).

A faithful second-order implementation of the algorithm the paper's
best model uses (Sec. II-B.4): each round fits regression trees to the
gradient/hessian statistics of the current predictions, with the
XGBoost gain

    gain = 1/2 [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ

exact greedy splits, shrinkage (``learning_rate``), L2 leaf
regularisation (``reg_lambda``), minimum split gain (``gamma``), and
optional row subsampling.  Multiclass classification trains one tree
per class per round on softmax gradients.

Training uses **presorted features** throughout: the feature matrix
``X`` never changes across boosting rounds (or across the per-class
trees of one round), so the per-feature stable ``argsort`` is computed
exactly once per ``fit`` and shared by every tree; inside a tree the
sorted index lists are partitioned stably down the nodes (see
:mod:`repro.ml.tree` for the same trick on standalone CART).  With row
subsampling (``subsample < 1``) each tree sees a different sample set,
so the root sort is per-tree — still hoisted out of the per-node loop.
Splits and predictions are bit-identical to the historical per-node
sorting implementation (``presort=False`` keeps it selectable; the
perf harness uses it as the before/after baseline).

Feature importance is reported both ways XGBoost does:

* ``feature_importances_`` — total split gain per feature (normalised),
* ``f_scores_`` — raw split counts, the "F score" plotted in the
  paper's Figs. 4–5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import obs

from . import compiled as _compiled
from .base import BaseEstimator, check_X, check_X_y

__all__ = ["GradientBoostingClassifier", "GradientBoostingRegressor"]


@dataclass
class _BNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_BNode"] = None
    right: Optional["_BNode"] = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _BoostTree:
    """One regression tree on (gradient, hessian) statistics."""

    def __init__(self, max_depth: int, reg_lambda: float, gamma: float,
                 min_child_weight: float, presort: bool = True) -> None:
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.presort = presort
        self.gain_by_feature: Optional[np.ndarray] = None
        self.splits_by_feature: Optional[np.ndarray] = None

    def fit(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        sorted_idx: Optional[np.ndarray] = None,
    ) -> "_BoostTree":
        """Fit to gradients; ``sorted_idx`` is the optional (n_features,
        n) per-feature stable argsort of ``X``, shared across trees by
        the booster so it is computed once per boosting fit."""
        self.n_features = X.shape[1]
        self.gain_by_feature = np.zeros(self.n_features)
        self.splits_by_feature = np.zeros(self.n_features, dtype=np.int64)
        n = X.shape[0]
        if sorted_idx is None and self.presort:
            sorted_idx = np.ascontiguousarray(np.argsort(X, axis=0, kind="stable").T)
        if sorted_idx is not None:
            self._left_buf = np.empty(n, dtype=bool)
            self._XT = np.ascontiguousarray(X.T)
        else:
            self._left_buf = None
            self._XT = None
        self.root = self._build(X, g, h, np.arange(n), sorted_idx, depth=0)
        self._left_buf = None
        self._XT = None
        return self

    def _leaf_weight(self, G: float, H: float) -> float:
        return -G / (H + self.reg_lambda)

    def _build(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        idx: np.ndarray,
        sorted_idx: Optional[np.ndarray],
        depth: int,
    ) -> _BNode:
        gs, hs = g[idx], h[idx]
        G, H = float(gs.sum()), float(hs.sum())
        node = _BNode(weight=self._leaf_weight(G, H))
        if depth >= self.max_depth or idx.size < 2 or H < 2 * self.min_child_weight:
            return node

        lam = self.reg_lambda
        parent_score = G * G / (H + lam)
        best_gain, best_feat, best_thr = 0.0, -1, 0.0
        if sorted_idx is not None:
            # Presorted path: score every feature in one vectorised sweep.
            # Each row of the (F, n) arrays is the node's samples in that
            # feature's sorted order, so one axis-1 cumsum replaces the
            # per-feature Python loop (row-wise cumsum accumulates in the
            # same sequence as the 1-D version, and the in-place updates
            # below apply the exact operation sequence of the loop, so
            # results stay bitwise identical to the historical per-node
            # sorting code).
            xo = np.take_along_axis(self._XT, sorted_idx, axis=1)
            go = np.take(g, sorted_idx)
            ho = np.take(h, sorted_idx)
            GL = np.cumsum(go, axis=1)[:, :-1]
            HL = np.cumsum(ho, axis=1)[:, :-1]
            valid = xo[:, 1:] != xo[:, :-1]
            valid &= HL >= self.min_child_weight
            HR = H - HL
            valid &= HR >= self.min_child_weight
            if not valid.any():
                return node
            gain = G - GL            # becomes GR, then the full gain in place
            gain *= gain             # GR²
            HR += lam
            gain /= HR               # GR²/(HR+λ)
            GL *= GL                 # GL²
            HL += lam
            GL /= HL                 # GL²/(HL+λ)
            gain += GL
            gain -= parent_score
            gain *= 0.5
            gain -= self.gamma
            np.logical_not(valid, out=valid)
            np.copyto(gain, -np.inf, where=valid)
            # C-order argmax ties break on (first feature, first position),
            # exactly like the sequential strictly-greater loop below.
            flat = int(np.argmax(gain))
            f, i = divmod(flat, idx.size - 1)
            if gain[f, i] > best_gain:
                best_gain = float(gain[f, i])
                best_feat = f
                best_thr = 0.5 * float(xo[f, i] + xo[f, i + 1])
        else:
            for f in range(self.n_features):
                xs = X[idx, f]
                order = np.argsort(xs, kind="stable")
                xo, go, ho = xs[order], gs[order], hs[order]
                GL = np.cumsum(go)[:-1]
                HL = np.cumsum(ho)[:-1]
                valid = xo[1:] != xo[:-1]
                valid &= (HL >= self.min_child_weight) & (H - HL >= self.min_child_weight)
                if not valid.any():
                    continue
                GR, HR = G - GL, H - HL
                gain = 0.5 * (GL * GL / (HL + lam) + GR * GR / (HR + lam) - parent_score) - self.gamma
                gain[~valid] = -np.inf
                i = int(np.argmax(gain))
                if gain[i] > best_gain:
                    best_gain = float(gain[i])
                    best_feat = f
                    best_thr = 0.5 * float(xo[i] + xo[i + 1])
        if best_feat < 0:
            return node

        node.feature = best_feat
        node.threshold = best_thr
        self.gain_by_feature[best_feat] += best_gain
        self.splits_by_feature[best_feat] += 1
        left = X[idx, best_feat] <= best_thr
        idx_l, idx_r = idx[left], idx[~left]
        if sorted_idx is None:
            sl = sr = None
        else:
            # Stable partition of the per-feature sorted index lists via
            # a shared boolean scratch (same trick as repro.ml.tree).
            buf = self._left_buf
            buf[idx] = left
            take = buf[sorted_idx]
            sl = sorted_idx[take].reshape(self.n_features, idx_l.size)
            sr = sorted_idx[~take].reshape(self.n_features, idx_r.size)
        node.left = self._build(X, g, h, idx_l, sl, depth + 1)
        node.right = self._build(X, g, h, idx_r, sr, depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        out = np.empty(n)
        # Shared root index vector + one reused boolean scratch (the
        # fancy-index copies detach from it immediately).
        mask_buf = np.empty(n, dtype=bool)
        stack = [(self.root, _compiled.shared_arange(n))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.weight
                continue
            mask = np.less_equal(
                X[idx, node.feature], node.threshold, out=mask_buf[: idx.size]
            )
            idx_left = idx[mask]
            np.logical_not(mask, out=mask)
            stack.append((node.left, idx_left))
            stack.append((node.right, idx[mask]))
        return out


class _BaseBooster(BaseEstimator):
    """Shared boosting loop; subclasses supply gradients."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        seed: int = 0,
        presort: bool = True,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.seed = seed
        self.presort = presort

    def _check_hyper(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")

    def _new_tree(self) -> _BoostTree:
        return _BoostTree(self.max_depth, self.reg_lambda, self.gamma,
                          self.min_child_weight, presort=self.presort)

    def _root_sort(self, X: np.ndarray) -> Optional[np.ndarray]:
        """The fit-wide presort, when every tree sees all of ``X``.

        X never changes across boosting rounds (or per-class trees), so
        without row subsampling one stable argsort per feature serves
        every tree of the whole fit.
        """
        if self.presort and self.subsample >= 1.0:
            return np.ascontiguousarray(np.argsort(X, axis=0, kind="stable").T)
        return None

    def _accumulate_importance(self, tree: _BoostTree) -> None:
        self._gain_acc += tree.gain_by_feature
        self._fscore_acc += tree.splits_by_feature

    def _finalise_importance(self) -> None:
        total = self._gain_acc.sum()
        self.feature_importances_ = (
            self._gain_acc / total if total > 0 else self._gain_acc
        )
        self.f_scores_ = self._fscore_acc.copy()

    def _subsample_idx(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.subsample >= 1.0:
            return np.arange(n)
        k = max(1, int(round(self.subsample * n)))
        return rng.choice(n, size=k, replace=False)

    def _warm_setup(self, X: np.ndarray, n_rounds) -> tuple:
        """Shared warm-start plumbing: round count, derived RNG,
        importance accumulators (absent after a registry round-trip)."""
        rounds = self.n_estimators if n_rounds is None else int(n_rounds)
        if rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        # A fresh derived RNG per warm round keeps repeated warm fits
        # deterministic without replaying the cold fit's stream.
        rng = np.random.default_rng((self.seed, 0x5EED, len(self.trees_)))
        if not hasattr(self, "_gain_acc"):
            self._gain_acc = np.zeros(X.shape[1])
            self._fscore_acc = np.zeros(X.shape[1], dtype=np.int64)
        return rounds, rng

    def _flat_trees(self) -> List[_BoostTree]:
        """Member trees in accumulation order; overridden by the
        classifier whose ensemble is nested per round."""
        return self.trees_

    def _compile(self) -> None:
        """Fuse the whole ensemble into one flat-array table.

        Called at the end of ``fit``/``warm_fit`` — the boosting loop
        itself keeps using the per-tree node walk (each tree predicts
        right after being built, before the ensemble is final).
        """
        self.compiled_ = _compiled.compile_boost(self._flat_trees())

    def _post_restore(self) -> None:
        if getattr(self, "compiled_", None) is None and hasattr(self, "trees_"):
            self._compile()


class GradientBoostingRegressor(_BaseBooster):
    """Squared-error gradient boosting (g = residual, h = 1)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        self._check_hyper()
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        self.base_score_ = float(y.mean())
        self.trees_: List[_BoostTree] = []
        self._gain_acc = np.zeros(X.shape[1])
        self._fscore_acc = np.zeros(X.shape[1], dtype=np.int64)
        pred = np.full(y.shape, self.base_score_)
        root_sorted = self._root_sort(X)
        track = obs.enabled()
        fit_start = time.perf_counter() if track else 0.0
        for _ in range(self.n_estimators):
            round_start = time.perf_counter() if track else 0.0
            idx = self._subsample_idx(y.size, rng)
            g = pred[idx] - y[idx]
            h = np.ones_like(g)
            if root_sorted is not None:
                tree = self._new_tree().fit(X, g, h, sorted_idx=root_sorted)
            else:
                tree = self._new_tree().fit(X[idx], g, h)
            self.trees_.append(tree)
            self._accumulate_importance(tree)
            pred += self.learning_rate * tree.predict(X)
            if track:
                obs.incr("ml.boosting.rounds")
                obs.observe("ml.boosting.round_seconds",
                            time.perf_counter() - round_start)
        if track:
            obs.record_span("ml.boosting.fit", time.perf_counter() - fit_start)
        self._finalise_importance()
        self._compile()
        return self

    def warm_fit(
        self, X: np.ndarray, y: np.ndarray, n_rounds=None
    ) -> "GradientBoostingRegressor":
        """Append boosting rounds fitted on new rows (in place).

        The existing ensemble's predictions on ``X`` seed the gradient,
        so new trees correct the old model on the new data — the
        XGBoost continuation scheme.  ``n_rounds`` defaults to
        ``n_estimators``; online refreshes typically pass fewer.
        """
        self._require_fitted("trees_", "base_score_")
        self._check_hyper()
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        rounds, rng = self._warm_setup(X, n_rounds)
        pred = self.predict(X)
        root_sorted = self._root_sort(X)
        for _ in range(rounds):
            idx = self._subsample_idx(y.size, rng)
            g = pred[idx] - y[idx]
            h = np.ones_like(g)
            if root_sorted is not None:
                tree = self._new_tree().fit(X, g, h, sorted_idx=root_sorted)
            else:
                tree = self._new_tree().fit(X[idx], g, h)
            self.trees_.append(tree)
            self._accumulate_importance(tree)
            pred += self.learning_rate * tree.predict(X)
        self._finalise_importance()
        self._compile()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        X = check_X(X)
        pred = np.full(X.shape[0], self.base_score_)
        table = getattr(self, "compiled_", None)
        if table is not None and _compiled.compiled_enabled():
            # One fused traversal yields every tree's leaf weight; the
            # shrinkage accumulation below applies the identical op
            # sequence as the per-tree node loop, tree by tree.
            w = table.leaf_scalars(X)
            for t in range(w.shape[0]):
                pred += self.learning_rate * w[t]
        else:
            for tree in self.trees_:
                pred += self.learning_rate * tree.predict(X)
        return pred


class GradientBoostingClassifier(_BaseBooster):
    """Softmax multiclass gradient boosting (one tree per class/round)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        self._check_hyper()
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        K = self.n_classes_
        n = y.size
        rng = np.random.default_rng(self.seed)
        onehot = np.zeros((n, K))
        onehot[np.arange(n), y] = 1.0
        margins = np.zeros((n, K))
        self.trees_: List[List[_BoostTree]] = []
        self._gain_acc = np.zeros(X.shape[1])
        self._fscore_acc = np.zeros(X.shape[1], dtype=np.int64)
        root_sorted = self._root_sort(X)
        track = obs.enabled()
        fit_start = time.perf_counter() if track else 0.0
        for _ in range(self.n_estimators):
            round_start = time.perf_counter() if track else 0.0
            # Softmax probabilities of the current margins.
            m = margins - margins.max(axis=1, keepdims=True)
            e = np.exp(m)
            p = e / e.sum(axis=1, keepdims=True)
            idx = self._subsample_idx(n, rng)
            round_trees: List[_BoostTree] = []
            for k in range(K):
                g = (p[idx, k] - onehot[idx, k])
                h = np.maximum(p[idx, k] * (1.0 - p[idx, k]), 1e-6)
                if root_sorted is not None:
                    tree = self._new_tree().fit(X, g, h, sorted_idx=root_sorted)
                else:
                    tree = self._new_tree().fit(X[idx], g, h)
                round_trees.append(tree)
                self._accumulate_importance(tree)
                margins[:, k] += self.learning_rate * tree.predict(X)
            self.trees_.append(round_trees)
            if track:
                obs.incr("ml.boosting.rounds")
                obs.observe("ml.boosting.round_seconds",
                            time.perf_counter() - round_start)
        if track:
            obs.record_span("ml.boosting.fit", time.perf_counter() - fit_start)
        self._finalise_importance()
        self._compile()
        return self

    def warm_fit(
        self, X: np.ndarray, y: np.ndarray, n_rounds=None
    ) -> "GradientBoostingClassifier":
        """Append boosting rounds fitted on new rows (in place).

        Continues the softmax boosting from the current ensemble's
        margins on ``X``; the class vocabulary is frozen by the cold
        fit, so labels must stay below ``n_classes_``.
        """
        self._require_fitted("trees_", "n_classes_")
        self._check_hyper()
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0 or y.max() >= self.n_classes_:
            raise ValueError(
                f"warm_fit labels must stay within the fitted "
                f"{self.n_classes_} classes; got range [{y.min()}, {y.max()}]"
            )
        rounds, rng = self._warm_setup(X, n_rounds)
        K = self.n_classes_
        n = y.size
        onehot = np.zeros((n, K))
        onehot[np.arange(n), y] = 1.0
        margins = self.decision_function(X)
        root_sorted = self._root_sort(X)
        for _ in range(rounds):
            m = margins - margins.max(axis=1, keepdims=True)
            e = np.exp(m)
            p = e / e.sum(axis=1, keepdims=True)
            idx = self._subsample_idx(n, rng)
            round_trees: List[_BoostTree] = []
            for k in range(K):
                g = p[idx, k] - onehot[idx, k]
                h = np.maximum(p[idx, k] * (1.0 - p[idx, k]), 1e-6)
                if root_sorted is not None:
                    tree = self._new_tree().fit(X, g, h, sorted_idx=root_sorted)
                else:
                    tree = self._new_tree().fit(X[idx], g, h)
                round_trees.append(tree)
                self._accumulate_importance(tree)
                margins[:, k] += self.learning_rate * tree.predict(X)
            self.trees_.append(round_trees)
        self._finalise_importance()
        self._compile()
        return self

    def _flat_trees(self) -> List[_BoostTree]:
        # Flatten the nested per-round lists in (round, class) order —
        # the same order decision_function accumulates margins in.
        return [tree for round_trees in self.trees_ for tree in round_trees]

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class margins (pre-softmax)."""
        self._require_fitted("trees_")
        X = check_X(X)
        margins = np.zeros((X.shape[0], self.n_classes_))
        table = getattr(self, "compiled_", None)
        if table is not None and _compiled.compiled_enabled():
            # Fused table rows are the (round, class)-ordered trees.
            # Accumulating round-by-round keeps every margin element's
            # addition sequence identical to the nested node-walk loop
            # (classes are independent columns), in K× fewer numpy ops.
            K = self.n_classes_
            w = table.leaf_scalars(X).reshape(-1, K, X.shape[0])
            for r in range(w.shape[0]):
                margins += self.learning_rate * w[r].T
        else:
            for round_trees in self.trees_:
                for k, tree in enumerate(round_trees):
                    margins[:, k] += self.learning_rate * tree.predict(X)
        return margins

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        m = self.decision_function(X)
        m -= m.max(axis=1, keepdims=True)
        e = np.exp(m)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(X), axis=1)
