"""Random forests (bagged CART trees with feature subsampling).

The paper evaluates single decision trees and boosted ensembles
(XGBoost); random forests are the third classic tree ensemble and a
natural ablation point between them — variance reduction by bagging
instead of bias reduction by boosting.  Included for the model-family
ablation bench and as a library feature.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import compiled as _compiled
from .base import BaseEstimator, check_X, check_X_y
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    """Shared bagging machinery."""

    _tree_cls = None  # set by subclasses

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 16,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def _n_features_per_split(self, d: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "log2":
            return max(1, int(np.log2(d)))
        if isinstance(self.max_features, (int, np.integer)):
            return max(1, min(int(self.max_features), d))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        k = self._n_features_per_split(d)
        self.trees_: List = []
        importances = np.zeros(d)
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, n) if self.bootstrap else np.arange(n)
            tree = self._tree_cls(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=k,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        # Fuse all member trees into one flat-array table so a predict
        # traverses the whole forest in O(max_depth) vectorised steps.
        self.compiled_ = _compiled.compile_cart_forest(
            self.trees_, self._value_width()
        )

    def _value_width(self) -> int:
        raise NotImplementedError

    def _post_restore(self) -> None:
        if getattr(self, "compiled_", None) is None and hasattr(self, "trees_"):
            self.compiled_ = _compiled.compile_cart_forest(
                self.trees_, self._value_width()
            )


class RandomForestClassifier(_BaseForest):
    """Probability-averaging bagged CART classifier."""

    _tree_cls = DecisionTreeClassifier

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self._fit_forest(X, y)
        return self

    def _value_width(self) -> int:
        return self.n_classes_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        X = check_X(X)
        out = np.zeros((X.shape[0], self.n_classes_))
        table = getattr(self, "compiled_", None)
        if table is not None and _compiled.compiled_enabled():
            # One fused traversal of every member; the table zero-pads
            # members that saw fewer classes, so accumulating the full
            # width adds exact zeros — bit-identical to the node loop.
            probs = table.leaf_values(X)
            for t in range(probs.shape[0]):
                out += probs[t]
        else:
            # Trees trained on bootstrap samples may not have seen every
            # class; pad their probability vectors to the forest's
            # width.  X is validated once here, so the member walk uses
            # the trusted node path.
            for tree in self.trees_:
                p = tree._predict_values_nodes(X)
                out[:, : p.shape[1]] += p
        return out / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)


class RandomForestRegressor(_BaseForest):
    """Prediction-averaging bagged CART regressor."""

    _tree_cls = DecisionTreeRegressor

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        self._fit_forest(X, y.astype(np.float64))
        return self

    def _value_width(self) -> int:
        return 1

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        X = check_X(X)
        table = getattr(self, "compiled_", None)
        if table is not None and _compiled.compiled_enabled():
            # Fused traversal gives the same (n_trees, n) prediction
            # rows the member loop stacks, so the mean is bit-identical.
            return np.mean(table.leaf_scalars(X), axis=0)
        return np.mean(
            [t._predict_values_nodes(X)[:, 0] for t in self.trees_], axis=0
        )
