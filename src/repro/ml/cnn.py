"""A compact convolutional network for sparsity-image classification.

Reproduces the *comparator* from the paper's related work (Zhao et al.,
PPoPP 2018): matrices are rendered as fixed-size density images
(:func:`repro.features.image.density_image`) and classified by a CNN.
The paper's conclusion contrasts its cheap feature-based models with
this approach — similar accuracy, much higher inference cost — and the
``benchmarks/test_ablation_cnn_selector.py`` bench measures exactly
that trade-off on this reproduction.

Architecture (for a ``size × size`` single-channel input):

    conv 3x3 (f1 filters) → ReLU → 2x2 max-pool
    conv 3x3 (f2 filters) → ReLU → 2x2 max-pool
    flatten → dense (hidden) → ReLU → dense (classes) → softmax

Implemented in pure numpy: convolutions run via im2col +
matrix-multiply (the standard vectorisation), Adam optimiser,
cross-entropy loss.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import BaseEstimator
from .mlp import _AdamState

__all__ = ["SimpleCNNClassifier"]


def _im2col(x: np.ndarray, k: int) -> np.ndarray:
    """Extract all k×k patches: (n, h, w, c) → (n, h-k+1, w-k+1, k*k*c).

    Uses stride tricks, so no data is copied until the final reshape.
    """
    n, h, w, c = x.shape
    oh, ow = h - k + 1, w - k + 1
    s = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, k, k, c),
        strides=(s[0], s[1], s[2], s[1], s[2], s[3]),
        writeable=False,
    )
    return patches.reshape(n, oh, ow, k * k * c)


def _maxpool2(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """2×2 max pooling; returns (pooled, argmax mask) for backprop."""
    n, h, w, c = x.shape
    h2, w2 = h // 2, w // 2
    x = x[:, : h2 * 2, : w2 * 2, :]
    windows = x.reshape(n, h2, 2, w2, 2, c)
    pooled = windows.max(axis=(2, 4))
    mask = windows == pooled[:, :, None, :, None, :]
    return pooled, mask


def _unpool2(grad: np.ndarray, mask: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Scatter pooled gradients back through the argmax mask."""
    n, h2, _, w2, _, c = mask.shape
    up = mask * grad[:, :, None, :, None, :]
    out = np.zeros(shape)
    out[:, : h2 * 2, : w2 * 2, :] = up.reshape(n, h2 * 2, w2 * 2, c)
    return out


class SimpleCNNClassifier(BaseEstimator):
    """Two-block CNN classifier over single-channel square images.

    Parameters
    ----------
    filters:
        Channel counts of the two conv blocks.
    hidden:
        Width of the dense layer before the softmax.
    learning_rate, batch_size, n_epochs, l2, seed:
        The usual Adam/SGD knobs.
    """

    _extra_state_attrs = ("_flat",)

    def __init__(
        self,
        filters: Tuple[int, int] = (8, 16),
        hidden: int = 64,
        learning_rate: float = 1e-3,
        batch_size: int = 16,
        n_epochs: int = 30,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.filters = tuple(filters)
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.l2 = l2
        self.seed = seed

    # -- core ------------------------------------------------------------

    def _init(self, size: int, n_classes: int, rng: np.random.Generator) -> None:
        f1, f2 = self.filters
        k = 3
        self.W1_ = rng.standard_normal((k * k * 1, f1)) * np.sqrt(2.0 / (k * k))
        self.b1_ = np.zeros(f1)
        self.W2_ = rng.standard_normal((k * k * f1, f2)) * np.sqrt(2.0 / (k * k * f1))
        self.b2_ = np.zeros(f2)
        # Spatial dimensions after two (conv3 valid + pool2) blocks.
        s1 = (size - 2) // 2
        s2 = (s1 - 2) // 2
        if s2 < 1:
            raise ValueError(f"image size {size} too small for two conv blocks")
        self._flat = s2 * s2 * f2
        self.W3_ = rng.standard_normal((self._flat, self.hidden)) * np.sqrt(
            2.0 / self._flat
        )
        self.b3_ = np.zeros(self.hidden)
        self.W4_ = rng.standard_normal((self.hidden, n_classes)) * np.sqrt(
            2.0 / self.hidden
        )
        self.b4_ = np.zeros(n_classes)

    def _forward(self, x: np.ndarray, train: bool = False):
        """x: (n, size, size) → logits; caches intermediates when training."""
        x = x[..., None]  # channel dim
        col1 = _im2col(x, 3)
        z1 = col1 @ self.W1_ + self.b1_
        a1 = np.maximum(z1, 0.0)
        p1, m1 = _maxpool2(a1)
        col2 = _im2col(p1, 3)
        z2 = col2 @ self.W2_ + self.b2_
        a2 = np.maximum(z2, 0.0)
        p2, m2 = _maxpool2(a2)
        flat = p2.reshape(p2.shape[0], -1)
        z3 = flat @ self.W3_ + self.b3_
        a3 = np.maximum(z3, 0.0)
        logits = a3 @ self.W4_ + self.b4_
        if train:
            self._cache = (x, col1, z1, a1, p1, m1, col2, z2, a2, p2, m2, flat, z3, a3)
        return logits

    def _backward(self, dlogits: np.ndarray) -> List[np.ndarray]:
        (x, col1, z1, a1, p1, m1, col2, z2, a2, p2, m2, flat, z3, a3) = self._cache
        gW4 = a3.T @ dlogits + self.l2 * self.W4_
        gb4 = dlogits.sum(axis=0)
        da3 = (dlogits @ self.W4_.T) * (z3 > 0)
        gW3 = flat.T @ da3 + self.l2 * self.W3_
        gb3 = da3.sum(axis=0)
        dflat = da3 @ self.W3_.T
        dp2 = dflat.reshape(p2.shape)
        da2 = _unpool2(dp2, m2, a2.shape) * (z2 > 0)
        n, oh, ow, _ = da2.shape
        da2_2d = da2.reshape(-1, da2.shape[-1])
        gW2 = col2.reshape(-1, col2.shape[-1]).T @ da2_2d + self.l2 * self.W2_
        gb2 = da2_2d.sum(axis=0)
        # Gradient into p1 via transposed im2col (scatter-add of patches).
        dcol2 = (da2_2d @ self.W2_.T).reshape(n, oh, ow, 3, 3, p1.shape[-1])
        dp1 = np.zeros_like(p1)
        for di in range(3):
            for dj in range(3):
                dp1[:, di : di + oh, dj : dj + ow, :] += dcol2[:, :, :, di, dj, :]
        da1 = _unpool2(dp1, m1, a1.shape) * (z1 > 0)
        da1_2d = da1.reshape(-1, da1.shape[-1])
        gW1 = col1.reshape(-1, col1.shape[-1]).T @ da1_2d + self.l2 * self.W1_
        gb1 = da1_2d.sum(axis=0)
        return [gW1, gW2, gW3, gW4, gb1, gb2, gb3, gb4]

    # -- API -----------------------------------------------------------------

    def fit(self, images: np.ndarray, y: np.ndarray) -> "SimpleCNNClassifier":
        images = np.asarray(images, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if images.ndim != 3 or images.shape[1] != images.shape[2]:
            raise ValueError("images must be (n, size, size)")
        if images.shape[0] != y.shape[0]:
            raise ValueError("images and labels disagree on sample count")
        if y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.size_ = images.shape[1]
        rng = np.random.default_rng(self.seed)
        self._init(self.size_, self.n_classes_, rng)
        params = [self.W1_, self.W2_, self.W3_, self.W4_,
                  self.b1_, self.b2_, self.b3_, self.b4_]
        adam = _AdamState([p.shape for p in params])
        onehot = np.zeros((y.size, self.n_classes_))
        onehot[np.arange(y.size), y] = 1.0
        n = y.size
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                logits = self._forward(images[idx], train=True)
                z = logits - logits.max(axis=1, keepdims=True)
                p = np.exp(z)
                p /= p.sum(axis=1, keepdims=True)
                dlogits = (p - onehot[idx]) / idx.size
                grads = self._backward(dlogits)
                adam.step(params, grads, self.learning_rate)
        return self

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        self._require_fitted("W1_")
        images = np.asarray(images, dtype=np.float64)
        if images.shape[1:] != (self.size_, self.size_):
            raise ValueError(
                f"images must be (n, {self.size_}, {self.size_}), got {images.shape}"
            )
        logits = self._forward(images)
        z = logits - logits.max(axis=1, keepdims=True)
        p = np.exp(z)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(images), axis=1)
