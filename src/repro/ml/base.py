"""Estimator base machinery for the pure-numpy ML stack.

A deliberately small re-implementation of the scikit-learn estimator
protocol — ``get_params`` / ``set_params`` / ``clone`` — sufficient for
the cross-validation and grid-search drivers in
:mod:`repro.ml.model_selection`.  Hyper-parameters are, by convention,
exactly the keyword arguments of ``__init__``; fitted state lives in
attributes with a trailing underscore.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["BaseEstimator", "clone", "check_X", "check_X_y", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when predict/transform is called before fit."""


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate a 2-D, finite feature matrix and return it as float64."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D (n_samples, n_features), got ndim={X.ndim}")
    if X.size and not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinity")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an (X, y) training pair with matching first dimension."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


class BaseEstimator:
    """Minimal estimator protocol: introspectable hyper-parameters."""

    #: Non-``trailing_underscore_`` instance attributes that carry fitted
    #: state and must survive :meth:`get_state` round-trips (e.g. the
    #: private target-scaling moments of the MLP regressor).
    _extra_state_attrs: Tuple[str, ...] = ()

    @classmethod
    def _param_names(cls) -> Tuple[str, ...]:
        sig = inspect.signature(cls.__init__)
        return tuple(
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        )

    def get_params(self) -> Dict[str, Any]:
        """Hyper-parameters as a dict (constructor keyword arguments)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters in place; unknown names raise ValueError."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- fitted-state protocol (serving/model-registry support) -----------

    def get_state(self) -> Dict[str, Any]:
        """Fitted state as a plain dict (hyper-parameters excluded).

        Captures every instance attribute following the scikit-learn
        trailing-underscore convention (``weights_``, ``root_``, …) plus
        any class-declared :attr:`_extra_state_attrs`.  Values are
        returned by reference — the pure-numpy on-disk encoding lives in
        :mod:`repro.ml.serialize`.
        """
        state: Dict[str, Any] = {
            name: value
            for name, value in self.__dict__.items()
            if name.endswith("_") and not name.startswith("_")
        }
        for name in self._extra_state_attrs:
            if name in self.__dict__:
                state[name] = self.__dict__[name]
        return state

    def set_state(self, state: Dict[str, Any]) -> "BaseEstimator":
        """Restore fitted state captured by :meth:`get_state`."""
        for name, value in state.items():
            setattr(self, name, value)
        self._post_restore()
        return self

    def _post_restore(self) -> None:
        """Hook for rebuilding derived attributes after :meth:`set_state`."""

    def _require_fitted(self, *attrs: str) -> None:
        for attr in attrs:
            if not hasattr(self, attr):
                raise NotFittedError(
                    f"{type(self).__name__} is not fitted (missing {attr!r}); "
                    "call fit() first"
                )

    # -- persistence (the stable estimator surface) ------------------------

    def save(self, path) -> None:
        """Serialise this estimator to one ``.npz`` artifact.

        Pure-numpy persistence via :mod:`repro.ml.serialize` — no
        pickling, bit-identical round-trips.
        """
        from .serialize import save_estimator

        save_estimator(self, path)

    @classmethod
    def load(cls, path) -> "BaseEstimator":
        """Load an estimator saved by :meth:`save`.

        Called on a concrete class, the artifact must contain exactly
        that class; called on :class:`BaseEstimator`, any estimator
        artifact loads.
        """
        from .serialize import SerializationError, load_estimator

        est = load_estimator(path)
        if cls is not BaseEstimator and not isinstance(est, cls):
            raise SerializationError(
                f"artifact {path} holds a {type(est).__name__}, "
                f"not a {cls.__name__}"
            )
        return est


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """A fresh, unfitted estimator with identical hyper-parameters."""
    return type(estimator)(**estimator.get_params())
