"""Evaluation metrics used throughout the paper.

Classification: accuracy and confusion matrices (Tables IV–X).
Regression: the paper's relative mean error

    RME = (1/n) Σ |pred_i − measured_i| / measured_i

(Sec. VI) plus standard MSE/MAE/R².  Slowdown analysis — the
performance penalty of a mispredicted format (Tables XI–XIII) — lives
here too.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "relative_mean_error",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "slowdown_factors",
    "slowdown_histogram",
    "SLOWDOWN_THRESHOLDS",
]


def _check_pair(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"inputs must be equal-length 1-D arrays, got {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("metrics need at least one sample")
    return a, b


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: int) -> np.ndarray:
    """``C[i, j]`` = samples with true class ``i`` predicted as ``j``."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    c = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(c, (y_true.astype(np.int64), y_pred.astype(np.int64)), 1)
    return c


def relative_mean_error(measured, predicted) -> float:
    """The paper's RME: mean of ``|pred − measured| / measured``.

    Expressed as a fraction (0.10 = the paper's "10 %").  ``measured``
    must be strictly positive (execution times are).
    """
    measured, predicted = _check_pair(measured, predicted)
    if np.any(measured <= 0):
        raise ValueError("measured values must be strictly positive for RME")
    return float(np.mean(np.abs(predicted - measured) / measured))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 − SSE/SST)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    sst = float(np.sum((y_true - y_true.mean()) ** 2))
    sse = float(np.sum((y_true - y_pred) ** 2))
    if sst == 0.0:
        return 1.0 if sse == 0.0 else 0.0
    return 1.0 - sse / sst


# ---------------------------------------------------------------------------
# Misprediction slowdown analysis (Tables XI–XIII)
# ---------------------------------------------------------------------------

#: The paper's slowdown histogram thresholds.
SLOWDOWN_THRESHOLDS = (1.0, 1.2, 1.5, 2.0)


def slowdown_factors(times: np.ndarray, best_idx, pred_idx) -> np.ndarray:
    """Per-sample slowdown ``t[predicted] / t[best]`` (≥ 1).

    Parameters
    ----------
    times:
        ``(n_samples, n_formats)`` measured execution times.
    best_idx, pred_idx:
        True-best and predicted format indices per sample.
    """
    times = np.asarray(times, dtype=np.float64)
    best_idx = np.asarray(best_idx, dtype=np.int64)
    pred_idx = np.asarray(pred_idx, dtype=np.int64)
    if times.ndim != 2:
        raise ValueError("times must be (n_samples, n_formats)")
    if not (times.shape[0] == best_idx.size == pred_idx.size):
        raise ValueError("sample-count mismatch")
    rows = np.arange(times.shape[0])
    t_best = times[rows, best_idx]
    t_pred = times[rows, pred_idx]
    if np.any(t_best <= 0):
        raise ValueError("best-format times must be positive")
    return t_pred / t_best


def slowdown_histogram(slowdowns: np.ndarray, *, tol: float = 1e-9) -> Dict[str, int]:
    """Bucket slowdowns the way Tables XI–XIII report them.

    Returns counts for: ``no_slowdown`` (== 1 within tolerance),
    ``gt_1x`` (> 1, cumulative), ``ge_1.2x``, ``ge_1.5x``, ``ge_2.0x``.
    """
    s = np.asarray(slowdowns, dtype=np.float64)
    if s.size and s.min() < 1.0 - 1e-6:
        raise ValueError("slowdowns must be >= 1")
    return {
        "no_slowdown": int(np.sum(s <= 1.0 + tol)),
        "gt_1x": int(np.sum(s > 1.0 + tol)),
        "ge_1.2x": int(np.sum(s >= 1.2)),
        "ge_1.5x": int(np.sum(s >= 1.5)),
        "ge_2.0x": int(np.sum(s >= 2.0)),
    }
