"""repro — ML-based sparse-format selection and SpMV performance modeling.

This package is a from-scratch, self-contained reproduction of

    Nisa, Siegel, Sukumaran-Rajam, Vishnu, Sadayappan,
    "Effective Machine Learning Based Format Selection and Performance
    Modeling for SpMV on GPUs", 2018 (EasyChair preprint 388).

It provides:

* ``repro.formats``  — six GPU sparse-matrix storage formats (COO, CSR,
  ELL, HYB, CSR5, merge-based CSR) implemented on numpy arrays, each with
  a functional SpMV kernel, conversions and memory accounting.
* ``repro.gpu``      — an analytical GPU execution simulator (Kepler- and
  Pascal-class device models) that stands in for the paper's K40c/K80c and
  P100 testbeds: it executes SpMV numerically while producing realistic,
  structure-sensitive timing samples.
* ``repro.matrices`` — a synthetic sparse-matrix corpus shaped like the
  SuiteSparse collection (the paper's dataset), plus Matrix Market I/O.
* ``repro.features`` — the paper's 17 structural features (sets 1/2/3).
* ``repro.ml``       — pure-numpy ML: decision trees, kernel SVM, MLPs and
  MLP ensembles, XGBoost-style gradient boosting, preprocessing,
  cross-validation and grid search.
* ``repro.core``     — the paper's contribution: ground-truth labeling,
  dataset assembly, direct format selection (classification), per-format
  performance prediction (regression), and indirect classification via
  predicted performance with a tolerance band.
* ``repro.bench``    — the experiment harness that regenerates every table
  and figure of the paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro.matrices import banded
>>> from repro.formats import CSRMatrix
>>> A = banded(1000, 1000, bandwidth=9, seed=0)
>>> x = np.ones(A.shape[1])
>>> y = CSRMatrix.from_coo(A).spmv(x)
>>> y.shape
(1000,)
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-export the most commonly used entry points at the package root so the
# quickstart path is short.  Heavier subsystems (ml, core, bench) are
# intentionally *not* imported here to keep ``import repro`` cheap.
from .formats import (  # noqa: F401
    COOMatrix,
    CSRMatrix,
    CSR5Matrix,
    ELLMatrix,
    HYBMatrix,
    MergeCSRMatrix,
    FORMAT_NAMES,
    as_format,
)
from .gpu import (  # noqa: F401
    DEVICES,
    KEPLER_K40C,
    KNL_7250,
    PASCAL_P100,
    VOLTA_V100,
    SpMVExecutor,
    estimate_batch,
)
from .analysis import MatrixAnalysis, analyze_matrix  # noqa: F401

#: Heavyweight entry points resolved lazily by :func:`__getattr__` —
#: ``from repro import FormatSelector`` works without ``import repro``
#: paying for the ML stack.  Maps exported name -> defining submodule.
_LAZY_EXPORTS = {
    "FormatSelector": "repro.core.selector",
    "PerformancePredictor": "repro.core.predictor",
    "ReproConfig": "repro.config",
    "SpMVDataset": "repro.core.dataset",
    "SelectionService": "repro.serve.service",
    "ModelRegistry": "repro.serve.registry",
}

__all__ = [
    "__version__",
    "MatrixAnalysis",
    "analyze_matrix",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "CSR5Matrix",
    "MergeCSRMatrix",
    "FORMAT_NAMES",
    "as_format",
    "SpMVExecutor",
    "estimate_batch",
    "DEVICES",
    "KEPLER_K40C",
    "PASCAL_P100",
    "VOLTA_V100",
    "KNL_7250",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    """Resolve :data:`_LAZY_EXPORTS` on first access (PEP 562)."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
