"""Cross-client micro-batching in front of :class:`SelectionService`.

The serving argument of the paper (lightweight selection, Sec. V/VII)
only survives concurrency if the per-request model cost is amortised:
one decision tree walk per request is cheap, but one *Python call* into
the model per request is not.  :class:`MicroBatcher` is the funnel that
makes many concurrent producers share one vectorised
:meth:`~repro.serve.service.SelectionService.predict_batch` call:

* producers (server connection threads) call :meth:`submit` and get a
  :class:`concurrent.futures.Future` back;
* a single worker thread drains the bounded queue, gathering requests
  into a batch until either ``max_batch`` items are waiting or
  ``window_s`` has elapsed since the batch opened;
* the whole batch runs through ``predict_batch`` **once** (which also
  dedupes identical decision keys), and each future resolves to its
  :class:`~repro.serve.service.Decision`.

Backpressure is explicit: the queue is bounded, and :meth:`submit`
raises :class:`QueueFull` instead of blocking when it is at capacity —
the server maps that to a ``busy`` error response so overload is
visible to clients instead of silently inflating latency.

If a batch call fails as a whole (one malformed item poisons the stacked
call), the batcher retries the items **individually**, so one bad
request fails alone and its co-batched neighbours still resolve.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional

from .. import obs

__all__ = ["MicroBatcher", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the request queue is
    at capacity (the explicit backpressure signal)."""


class _Pending:
    __slots__ = ("item", "request_id", "future")

    def __init__(self, item, request_id: Optional[str]) -> None:
        self.item = item
        self.request_id = request_id
        self.future: "Future" = Future()


_STOP = object()


class MicroBatcher:
    """Funnel concurrent requests into shared ``predict_batch`` calls.

    Parameters
    ----------
    service:
        Anything with a ``predict_batch(items, request_ids=...)``
        returning one decision per item (normally a
        :class:`~repro.serve.service.SelectionService`).
    max_batch:
        Flush a batch as soon as this many requests are waiting.
    window_s:
        Flush an incomplete batch this long after its first request
        arrived (the latency cost a request may pay to share a model
        call with its neighbours).
    queue_size:
        Bound on requests admitted but not yet batched; beyond it
        :meth:`submit` raises :class:`QueueFull`.
    """

    def __init__(
        self,
        service,
        *,
        max_batch: int = 32,
        window_s: float = 0.002,
        queue_size: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.service = service
        self.max_batch = max_batch
        self.window_s = window_s
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._closed = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # -- producer side -----------------------------------------------------

    def submit(self, item, request_id: Optional[str] = None) -> "Future":
        """Enqueue one request; resolve its future to a ``Decision``.

        Raises :class:`QueueFull` when the bounded queue is at capacity
        and :class:`RuntimeError` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            pending = _Pending(item, request_id)
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                raise QueueFull(
                    f"request queue full ({self._queue.maxsize} waiting)"
                ) from None
        return pending.future

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the worker; with ``drain`` every admitted request still
        resolves, without it undrained futures get a ``RuntimeError``."""
        with self._lock:
            if self._closed:
                self._worker.join(timeout)
                return
            self._closed = True
            if not drain:
                # Fail whatever is still queued, then stop the worker.
                while True:
                    try:
                        pending = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if not pending.future.cancelled():
                        pending.future.set_exception(
                            RuntimeError("batcher closed before serving")
                        )
            # The sentinel lands behind every admitted request (FIFO),
            # so drained shutdown serves them all before stopping.
            self._queue.put(_STOP)
        self._worker.join(timeout)

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is _STOP:
                return
            batch = [pending]
            deadline = time.monotonic() + self.window_s
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Window closed: take whatever is already queued but
                    # don't wait for stragglers.
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    try:
                        extra = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if extra is _STOP:
                    stop = True
                    break
                batch.append(extra)
            self._flush(batch)
            if stop:
                return

    def _flush(self, batch) -> None:
        live = [p for p in batch if not p.future.cancelled()]
        if not live:
            return
        try:
            decisions = self.service.predict_batch(
                [p.item for p in live],
                request_ids=[p.request_id for p in live],
            )
        except Exception:
            # One poisoned item fails the stacked call; retry items
            # individually so only the bad one surfaces its error.
            for p in live:
                try:
                    decision = self.service.predict_batch(
                        [p.item], request_ids=[p.request_id]
                    )[0]
                except Exception as exc:
                    self._resolve(p.future, error=exc)
                else:
                    self._resolve(p.future, result=decision)
            return
        obs.incr("serve.batcher.flushes")
        for p, decision in zip(live, decisions):
            self._resolve(p.future, result=decision)

    @staticmethod
    def _resolve(future: "Future", result=None, error=None) -> None:
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except Exception:  # future cancelled between check and resolve
            pass
