"""Model registry + online format-selection inference service.

The deployment layer of the reproduction: persist trained selection
models as versioned, checksummed, pure-numpy artifacts
(:class:`ModelRegistry`), serve them behind a cached, micro-batched
request/response API (:class:`SelectionService`), run that service for
many concurrent network clients with cross-client micro-batching,
backpressure and graceful drain (:class:`SelectionServer`,
:class:`MicroBatcher`), and close the loop with observed-execution
feedback, regret tracking and latency/cache telemetry
(:class:`FeedbackLog`, :class:`ServiceTelemetry`, :func:`serve_jsonl`).
:class:`AdaptiveController` closes the loop end to end: feedback-driven
warm-restart retraining, shadow evaluation of candidates, regret-gated
auto-promotion with an audited registry trail, and drift detection.
"""

from .adaptive import (
    AdaptiveController,
    AdaptiveError,
    DriftMonitor,
    ExperienceBuffer,
    PageHinkley,
    PromotionPolicy,
    ShadowScoreboard,
)
from .batcher import MicroBatcher, QueueFull
from .daemon import handle_request, resolve_predict_item, serve_jsonl
from .feedback import FeedbackEvent, FeedbackLog
from .registry import ARTIFACT_SCHEMA, ModelRecord, ModelRegistry, RegistryError
from .server import SelectionServer
from .service import Decision, SelectionService
from .telemetry import ServiceTelemetry

__all__ = [
    "ARTIFACT_SCHEMA",
    "AdaptiveController",
    "AdaptiveError",
    "Decision",
    "DriftMonitor",
    "ExperienceBuffer",
    "FeedbackEvent",
    "FeedbackLog",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "PageHinkley",
    "PromotionPolicy",
    "QueueFull",
    "RegistryError",
    "ShadowScoreboard",
    "SelectionServer",
    "SelectionService",
    "ServiceTelemetry",
    "handle_request",
    "resolve_predict_item",
    "serve_jsonl",
]
