"""Model registry + online format-selection inference service.

The deployment layer of the reproduction: persist trained selection
models as versioned, checksummed, pure-numpy artifacts
(:class:`ModelRegistry`), serve them behind a cached, micro-batched
request/response API (:class:`SelectionService`), and close the loop
with observed-execution feedback, regret tracking and latency/cache
telemetry (:class:`FeedbackLog`, :class:`ServiceTelemetry`,
:func:`serve_jsonl`).
"""

from .daemon import handle_request, serve_jsonl
from .feedback import FeedbackEvent, FeedbackLog
from .registry import ARTIFACT_SCHEMA, ModelRecord, ModelRegistry, RegistryError
from .service import Decision, SelectionService
from .telemetry import ServiceTelemetry

__all__ = [
    "ARTIFACT_SCHEMA",
    "Decision",
    "FeedbackEvent",
    "FeedbackLog",
    "ModelRecord",
    "ModelRegistry",
    "RegistryError",
    "SelectionService",
    "ServiceTelemetry",
    "handle_request",
    "serve_jsonl",
]
