"""Online format-selection inference: :class:`SelectionService`.

The paper trains and evaluates its models offline; this module is the
deployment half of the lightweight-selection argument — the trained
models behind one request/response surface:

* **inputs** — a raw sparse matrix (features extracted via the one-pass
  :func:`repro.analysis.analyze_matrix`), a feature *dict*, or an
  already-ordered feature *vector*;
* **selection modes** — ``direct`` (the paper's Sec. V classifier),
  ``indirect`` (Sec. VII: argmin of predicted per-format times) and
  ``hybrid`` (keep the classifier's pick unless the regressor says it
  costs more than ``(1 + tolerance) ×`` the predicted best);
* **micro-batching** — :meth:`predict_batch` featurises and caches per
  item but runs each model **once** over the stacked miss rows;
* **caching** — bounded LRU feature and decision caches keyed on the
  matrix structure digest / vector bytes, so a resubmitted matrix skips
  both the O(nnz) scan and the model;
* **online loop** — :meth:`record_feedback` ties observed execution
  times back to served decisions, updating regret telemetry.

All public methods are thread-safe: the LRU caches carry their own
internal locks, a service-wide lock guards id allocation, and model
predictions are pure numpy and reentrant — so one service instance can
back many concurrent server connections (see :mod:`repro.serve.server`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs, tuning
from ..analysis import analyze_matrix
from ..features import ALL_FEATURES, FEATURE_SETS
from ..formats import CSRMatrix, FORMAT_NAMES, SparseFormat
from ..gpu.batch import ProfileBatch
from ..gpu.cache import LRUCache
from .feedback import FeedbackLog
from .telemetry import ServiceTelemetry

__all__ = ["Decision", "SelectionService"]

#: Selection strategies accepted by :class:`SelectionService`.
MODES = ("direct", "indirect", "hybrid")


@dataclass(frozen=True)
class Decision:
    """One served configuration decision.

    ``chosen`` is the configuration *key* from the serving vocabulary
    (a bare format name for all-default configurations, ``"fmt?..."``
    otherwise); ``config`` is the same decision as a full
    :class:`~repro.tuning.Configuration` (``None`` only when the vocab
    entry is not a parseable configuration, e.g. a custom format name).
    """

    request_id: str
    chosen: str                             #: recommended configuration key
    chosen_index: int                       #: index into ``formats``
    formats: Tuple[str, ...]                #: configuration-key vocabulary
    mode: str                               #: strategy that produced it
    predicted_times: Optional[Dict[str, float]] = None  #: regressor output
    direct_choice: Optional[str] = None     #: classifier pick (hybrid only)
    cached: bool = False                    #: served from the decision cache
    latency_ms: float = 0.0                 #: this request's share of batch
                                            #: time (cache hits pay only the
                                            #: overhead share, not model time)
    config: Optional[tuning.Configuration] = None  #: full configuration
    meta: Dict = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict:
        """JSON-able view (what the daemon returns on the wire).

        Carries both keys for the deprecation cycle: ``format`` stays
        the *base* format name legacy clients expect, ``config`` is the
        full configuration (format + resolved params + key).
        """
        out = {
            "id": self.request_id,
            "format": self.config.format if self.config is not None else self.chosen,
            "format_index": self.chosen_index,
            "mode": self.mode,
            "cached": self.cached,
            "latency_ms": self.latency_ms,
        }
        if self.config is not None:
            out["config"] = self.config.as_dict()
        if self.predicted_times is not None:
            out["predicted_times"] = self.predicted_times
        if self.direct_choice is not None:
            out["direct_choice"] = self.direct_choice
        return out


def _names_of(feature_set) -> Tuple[str, ...]:
    if isinstance(feature_set, str):
        return tuple(FEATURE_SETS[feature_set])
    return tuple(feature_set)


def _parse_config(key: str) -> Optional[tuning.Configuration]:
    try:
        return tuning.Configuration.from_key(key)
    except tuning.ConfigError:
        return None


class SelectionService:
    """Serve format decisions from fitted selection/prediction models.

    Parameters
    ----------
    selector:
        Fitted :class:`~repro.core.selector.FormatSelector` (required
        for ``direct`` and ``hybrid`` modes).
    predictor:
        Fitted :class:`~repro.core.predictor.PerformancePredictor`
        (required for ``indirect`` and ``hybrid`` modes).
    mode:
        ``"direct"``, ``"indirect"`` or ``"hybrid"``.
    simulator:
        Optional :class:`~repro.gpu.SpMVExecutor` backend.  When set,
        the per-format times of ``indirect``/``hybrid`` decisions for
        *matrix* inputs come from one vectorised
        :meth:`~repro.gpu.SpMVExecutor.estimate_batch` sweep over the
        whole miss batch (infeasible formats masked to ``inf``) instead
        of the regressor; dict/vector inputs — which carry no structural
        profile — still require a ``predictor``.  A simulator alone can
        back ``indirect`` mode.
    tolerance:
        Hybrid-mode slack: the classifier's pick survives while its
        predicted time is ≤ ``(1 + tolerance) ×`` the predicted best.
    energy_weight:
        Multi-objective scalarisation weight ``w ∈ [0, 1]`` applied to
        simulator-backed decisions: candidates are ranked by
        ``seconds^(1-w) · joules^w`` (see :func:`repro.tuning.scalarize`
        and :func:`repro.tuning.energy_joules`).  ``0`` (default) ranks
        purely by time — bit-identical to the pre-energy behaviour;
        ``1`` ranks purely by the energy proxy.  With ``w > 0`` the
        ``predicted_times`` on simulator decisions are the scalarised
        scores, not raw seconds.
    feature_cache_size / decision_cache_size:
        LRU bounds (``None`` = unbounded, ``0`` disables the cache).
    history:
        Bound on the recent-decision window :meth:`record_feedback`
        resolves request ids against, and on the feedback log.
    """

    def __init__(
        self,
        selector=None,
        predictor=None,
        *,
        simulator=None,
        mode: str = "direct",
        tolerance: float = 0.1,
        energy_weight: float = 0.0,
        feature_cache_size: Optional[int] = 512,
        decision_cache_size: Optional[int] = 512,
        history: int = 4096,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode in ("direct", "hybrid") and selector is None:
            raise ValueError(f"{mode!r} mode requires a selector")
        if mode in ("indirect", "hybrid") and predictor is None and simulator is None:
            raise ValueError(f"{mode!r} mode requires a predictor or a simulator")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if not 0.0 <= float(energy_weight) <= 1.0:
            raise ValueError(
                f"energy_weight must be in [0, 1], got {energy_weight}"
            )
        self.selector = selector
        self.predictor = predictor
        self.simulator = simulator
        self.mode = mode
        self.tolerance = float(tolerance)
        self.energy_weight = float(energy_weight)

        self.formats = self._resolve_formats()
        # Parsed view of the vocabulary: the Configuration carried on
        # each Decision (None for vocab entries that are not parseable
        # configuration keys, e.g. custom format names).
        self._format_configs = tuple(
            _parse_config(key) for key in self.formats
        )
        self._sel_names = _names_of(selector.feature_set) if selector else None
        self._pred_names = _names_of(predictor.feature_set) if predictor else None

        self.telemetry = telemetry if telemetry is not None else ServiceTelemetry()
        self.feedback = FeedbackLog(maxlen=history)
        #: Registry provenance (``{"selector": ModelRecord, ...}``) —
        #: filled by :meth:`from_registry`, empty for in-process models.
        self.records: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._feature_cache = (
            LRUCache(feature_cache_size) if feature_cache_size != 0 else None
        )
        self._decision_cache = (
            LRUCache(decision_cache_size) if decision_cache_size != 0 else None
        )
        self._recent = LRUCache(history)
        self._next_id = 0
        #: Attached :class:`~repro.serve.adaptive.AdaptiveController`
        #: (``None`` until :meth:`attach_adaptive`).
        self._adaptive = None

    # -- construction ------------------------------------------------------

    def _resolve_formats(self) -> Tuple[str, ...]:
        fmts = []
        for model in (self.selector, self.predictor):
            if model is None:
                continue
            f = getattr(model, "formats_", None)
            if f is None:
                raise ValueError(
                    f"{type(model).__name__} must be dataset-fitted "
                    "(format vocabulary unknown)"
                )
            fmts.append(tuple(f))
        if len(fmts) == 2 and fmts[0] != fmts[1]:
            raise ValueError(
                f"selector formats {fmts[0]} != predictor formats {fmts[1]}"
            )
        if not fmts:
            # Simulator-only service: the kernel models cover the
            # paper's full format vocabulary.
            return tuple(FORMAT_NAMES)
        return fmts[0]

    @classmethod
    def from_registry(
        cls,
        registry,
        selector: Optional[str] = None,
        predictor: Optional[str] = None,
        *,
        selector_version: Optional[str] = None,
        predictor_version: Optional[str] = None,
        **kwargs,
    ) -> "SelectionService":
        """Build a service from registry model names.

        ``registry`` is a :class:`~repro.serve.registry.ModelRegistry`
        or a path to one.  Versions default to each model's production
        alias (falling back to latest).  Extra ``kwargs`` go to the
        constructor; ``mode`` defaults to what the loaded models allow
        (``hybrid`` if both, else ``direct``/``indirect``).
        """
        from .registry import ModelRegistry

        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        if selector is None and predictor is None:
            raise ValueError("need at least one of selector/predictor")
        sel = pred = None
        records = {}
        if selector is not None:
            sel, records["selector"] = registry.load(selector, selector_version)
        if predictor is not None:
            pred, records["predictor"] = registry.load(predictor, predictor_version)
        if "mode" not in kwargs:
            kwargs["mode"] = (
                "hybrid" if sel is not None and pred is not None
                else "direct" if sel is not None else "indirect"
            )
        service = cls(sel, pred, **kwargs)
        service.records = records
        return service

    # -- adaptive loop -----------------------------------------------------

    @property
    def adaptive(self):
        """The attached adaptive controller, or ``None``."""
        return self._adaptive

    def attach_adaptive(self, controller) -> None:
        """Attach an :class:`~repro.serve.adaptive.AdaptiveController`.

        Once attached, every served decision and feedback event flows
        into the controller's ``observe_batch`` / ``observe_feedback``
        hooks (off the response path; hook errors are counted, never
        raised).  Normally called by the controller's own constructor.
        """
        self._adaptive = controller

    def detach_adaptive(self) -> None:
        self._adaptive = None

    def adopt_selector(self, selector, record=None) -> None:
        """Hot-swap the serving selector (the promotion fast path).

        The new selector must be dataset-fitted on the same format
        vocabulary the service resolved at construction.  Cached
        decisions belong to the old model and are dropped; feature
        caches and telemetry survive the swap.
        """
        fmts = getattr(selector, "formats_", None)
        if fmts is None:
            raise ValueError("adopted selector must be dataset-fitted")
        if tuple(fmts) != tuple(self.formats):
            raise ValueError(
                f"adopted selector formats {tuple(fmts)} != serving "
                f"vocabulary {tuple(self.formats)}"
            )
        with self._lock:
            self.selector = selector
            self._sel_names = _names_of(selector.feature_set)
            if record is not None:
                self.records["selector"] = record
        if self._decision_cache is not None:
            self._decision_cache.clear()

    # -- featurisation -----------------------------------------------------

    def _featurize(self, item):
        """Normalise one request item.

        Returns ``(names, vector, cache_key, hit, profile)`` — the
        structural :class:`~repro.gpu.MatrixProfile` is only available
        for matrix inputs (``None`` otherwise); the simulator backend
        needs it, and :func:`repro.analysis.analyze_matrix` produces it
        from the same shared scan as the features.

        Accepted items: a sparse matrix (any :class:`SparseFormat` /
        :class:`CSRMatrix`), a feature dict, or a 1-D vector ordered
        either as the full 17 canonical features or as the active
        models' (shared) feature set.
        """
        if isinstance(item, (SparseFormat, CSRMatrix)):
            from ..gpu.profile import _structure_digest

            csr = item if isinstance(item, CSRMatrix) else CSRMatrix.from_coo(item.to_coo())
            # The digest is a cheap O(nnz) hash of the structure — much
            # cheaper than the full analysis it lets repeats skip.
            key = _structure_digest(csr)
            if self._feature_cache is not None:
                cached = self._feature_cache.get(key)
                if cached is not None:
                    return cached[0], cached[1], key, True, cached[2]
            analysis = analyze_matrix(csr)
            vec = np.array(
                [analysis.features[n] for n in ALL_FEATURES], dtype=np.float64
            )
            if self._feature_cache is not None:
                self._feature_cache.put(key, (tuple(ALL_FEATURES), vec, analysis.profile))
            return tuple(ALL_FEATURES), vec, key, False, analysis.profile

        if isinstance(item, Mapping):
            missing = [n for n in ALL_FEATURES if n not in item]
            if missing:
                raise ValueError(f"feature dict is missing {missing}")
            vec = np.array([float(item[n]) for n in ALL_FEATURES], dtype=np.float64)
            return tuple(ALL_FEATURES), vec, ("d", vec.tobytes()), False, None

        vec = np.asarray(item, dtype=np.float64)
        if vec.ndim != 1:
            raise ValueError(
                f"expected a matrix, feature dict or 1-D vector; "
                f"got array of shape {vec.shape}"
            )
        names = self._vector_names(vec.size)
        return names, vec, ("v", names, vec.tobytes()), False, None

    def _vector_names(self, size: int) -> Tuple[str, ...]:
        """Feature-name order implied by a raw vector's length."""
        if size == len(ALL_FEATURES):
            return tuple(ALL_FEATURES)
        active = [n for n in (self._sel_names, self._pred_names) if n is not None]
        shared = active[0] if all(a == active[0] for a in active) else None
        if shared is not None and size == len(shared):
            return shared
        expect = sorted({len(ALL_FEATURES)} | ({len(shared)} if shared else set()))
        raise ValueError(
            f"cannot interpret a {size}-feature vector; expected one of "
            f"{expect} features (canonical 17-feature order, or the active "
            "models' shared feature set)"
        )

    @staticmethod
    def _project(X: np.ndarray, names: Tuple[str, ...], want: Tuple[str, ...]) -> np.ndarray:
        if names == want:
            return X
        try:
            idx = [names.index(n) for n in want]
        except ValueError as exc:
            raise ValueError(
                f"request features {names} do not cover model features {want}"
            ) from exc
        return X[:, idx]

    # -- selection ---------------------------------------------------------

    def _simulate_times(self, profiles: Sequence) -> np.ndarray:
        """Per-configuration scores from one batched simulator sweep.

        All N profiles × F configurations are estimated in a single
        vectorised :meth:`~repro.gpu.SpMVExecutor.estimate_batch` call;
        configurations the device cannot run (OOM, padding blow-up,
        width-cap violations, degenerate kernels) are masked to ``inf``
        so argmin/hybrid logic avoids them.  With ``energy_weight > 0``
        the returned scores blend time with the energy proxy via
        :func:`repro.tuning.scalarize` (still ``inf`` where infeasible).
        """
        ex = self.simulator
        batch = ProfileBatch.from_profiles(profiles)
        cost = ex.estimate_batch(batch, self.formats)
        seconds = cost.seconds.copy()
        if self.energy_weight > 0.0:
            energy = tuning.energy_joules(cost, ex.device)
            scores = tuning.scalarize(seconds, energy, self.energy_weight)
        else:
            scores = seconds
        for i, failed in enumerate(ex.feasibility_batch(batch, self.formats)):
            for fmt in failed:
                scores[i, cost.column(fmt)] = np.inf
        scores[~np.isfinite(seconds)] = np.inf
        scores[~np.isfinite(scores)] = np.inf
        return scores

    def _decide_batch(
        self,
        X: np.ndarray,
        names: Tuple[str, ...],
        profiles: Optional[Sequence] = None,
    ) -> List[Tuple[int, Optional[np.ndarray], Optional[int]]]:
        """Run the configured strategy over a stacked miss batch.

        ``profiles`` (parallel to the rows of ``X``) routes the
        indirect/hybrid time estimates through the simulator backend;
        ``None`` uses the regressor.  Returns per row:
        ``(chosen_index, predicted_times|None, direct_index|None)``.
        """
        n = X.shape[0]
        direct = None
        times = None
        if self.mode in ("direct", "hybrid"):
            # Read the selector once: adopt_selector may hot-swap it
            # between (never during) batch decisions.
            sel = self.selector
            direct = sel.predict(
                self._project(X, names, _names_of(sel.feature_set))
            )
        if self.mode in ("indirect", "hybrid"):
            if profiles is not None:
                times = self._simulate_times(profiles)
            else:
                times = self.predictor.predict(
                    self._project(X, names, self._pred_names)
                )
        out = []
        for i in range(n):
            t_i = times[i] if times is not None else None
            if self.mode == "direct":
                out.append((int(direct[i]), None, None))
            elif self.mode == "indirect":
                out.append((int(np.argmin(t_i)), t_i, None))
            else:
                d = int(direct[i])
                best = int(np.argmin(t_i))
                keep = t_i[d] <= (1.0 + self.tolerance) * t_i[best]
                out.append((d if keep else best, t_i, d))
        return out

    # -- public API --------------------------------------------------------

    def predict(self, item, *, request_id: Optional[str] = None) -> Decision:
        """Serve one decision (see :meth:`predict_batch` for inputs)."""
        return self.predict_batch([item], request_ids=[request_id])[0]

    def predict_batch(
        self,
        items: Sequence,
        *,
        request_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Decision]:
        """Serve one decision per item, batching model work.

        Items may mix matrices, feature dicts and 1-D vectors.  Feature
        extraction is cached per matrix structure; decisions are cached
        per (features, vocabulary, mode, tolerance, energy weight) so
        configurations sharing a base format (e.g. ``csr`` and
        ``csr?lanes=8`` vocabularies) never alias; all cache misses of compatible
        feature order run through each model in **one** vectorised call,
        with duplicate decision keys collapsed to a single model row (a
        cross-client micro-batch often carries the same hot matrix more
        than once).
        """
        t0 = time.perf_counter()
        if request_ids is None:
            request_ids = [None] * len(items)
        if len(request_ids) != len(items):
            raise ValueError("request_ids length mismatch")

        needs_times = self.mode in ("indirect", "hybrid")
        f_hits = f_misses = d_hits = d_misses = 0
        prepared = []  # (names, vec, decision_key, cached_payload|None, profile)
        for item in items:
            names, vec, fkey, f_hit, prof = self._featurize(item)
            f_hits += f_hit
            f_misses += not f_hit
            use_sim = needs_times and self.simulator is not None and prof is not None
            if needs_times and not use_sim and self.predictor is None:
                raise ValueError(
                    f"{self.mode!r} mode with only a simulator backend "
                    "requires matrix inputs (dict/vector items carry no "
                    "structural profile)"
                )
            if use_sim:
                # Simulator decisions depend on the full structural
                # profile (not just the 17 features) and on the backend
                # device/precision — key them by structure digest.
                # The vocabulary is part of the key: two configurations
                # of one base format (e.g. "csr" vs "csr?lanes=8") must
                # never alias a cached decision, and neither may two
                # services whose vocabularies differ only in parameters.
                dkey = (
                    "dec-sim",
                    prof.digest,
                    self.formats,
                    self.mode,
                    self.tolerance,
                    self.energy_weight,
                    self.simulator.device.name,
                    self.simulator.precision,
                )
            else:
                prof = None  # regressor path: profile is irrelevant
                dkey = (
                    "dec",
                    names,
                    vec.tobytes(),
                    self.formats,
                    self.mode,
                    self.tolerance,
                    self.energy_weight,
                )
            payload = (
                self._decision_cache.get(dkey)
                if self._decision_cache is not None
                else None
            )
            d_hits += payload is not None
            d_misses += payload is None
            prepared.append((names, vec, dkey, payload, prof))

        # One vectorised model call per distinct (feature order, backend)
        # group, over the *unique* decision keys only — duplicates share
        # one model row.
        miss_items: Dict[Tuple, List[int]] = {}   # dkey -> item indices
        miss_keys: Dict[Tuple, List[Tuple]] = {}  # (order, sim?) -> keys
        for i, (names, _, dkey, payload, prof) in enumerate(prepared):
            if payload is None:
                rows = miss_items.setdefault(dkey, [])
                if not rows:
                    miss_keys.setdefault((names, prof is not None), []).append(dkey)
                rows.append(i)
        t_model0 = time.perf_counter()
        results: Dict[int, Tuple[int, Optional[np.ndarray], Optional[int]]] = {}
        for (names, use_sim), keys in miss_keys.items():
            first_rows = [prepared[miss_items[k][0]] for k in keys]
            X = np.stack([row[1] for row in first_rows])
            profiles = [row[4] for row in first_rows] if use_sim else None
            for dkey, res in zip(keys, self._decide_batch(X, names, profiles)):
                for i in miss_items[dkey]:
                    results[i] = res
                if self._decision_cache is not None:
                    self._decision_cache.put(dkey, res)
        t_model = time.perf_counter() - t_model0

        latency = time.perf_counter() - t0
        # Latency attribution: every request pays its share of the batch
        # overhead (featurisation, cache probes); only cache-miss rows
        # carry the model time.
        n_miss_items = sum(len(rows) for rows in miss_items.values())
        overhead_ms = 1e3 * (latency - t_model) / max(1, len(items))
        model_ms = 1e3 * t_model / max(1, n_miss_items)
        decisions = []
        with self._lock:
            ids = []
            for rid in request_ids:
                if rid is None:
                    rid = f"r{self._next_id:06d}"
                    self._next_id += 1
                ids.append(str(rid))
        for i, ((names, vec, dkey, payload, _prof), rid) in enumerate(zip(prepared, ids)):
            cached = payload is not None
            chosen_idx, times, direct_idx = payload if cached else results[i]
            decision = Decision(
                request_id=rid,
                chosen=self.formats[chosen_idx],
                chosen_index=chosen_idx,
                formats=self.formats,
                mode=self.mode,
                predicted_times=(
                    None if times is None
                    else {f: float(t) for f, t in zip(self.formats, times)}
                ),
                direct_choice=(
                    None if direct_idx is None else self.formats[direct_idx]
                ),
                cached=cached,
                latency_ms=overhead_ms if cached else overhead_ms + model_ms,
                config=self._format_configs[chosen_idx],
            )
            decisions.append(decision)
            self._recent.put(rid, decision)
        if obs.enabled():
            # Per-decision latency histogram on the shared telemetry
            # spine (disabled by default — the flag read is the only
            # cost on the hot path).
            for d in decisions:
                obs.observe("serve.predict_ms", d.latency_ms)
        self.telemetry.record_batch(
            len(items),
            latency,
            feature_hits=f_hits,
            feature_misses=f_misses,
            decision_hits=d_hits,
            decision_misses=d_misses,
        )
        adaptive = self._adaptive
        if adaptive is not None:
            # Off the response path: shadow scoring + feature retention
            # happen after latencies are stamped; hook errors are
            # counted by the controller, never raised here.
            adaptive.observe_batch(
                [
                    (d.request_id, row[0], row[1], d.chosen)
                    for row, d in zip(prepared, decisions)
                ]
            )
        return decisions

    def record_feedback(
        self,
        request_id: str,
        observed: Mapping[str, float],
        *,
        chosen: Optional[Union[str, Mapping, tuning.Configuration]] = None,
    ):
        """Report observed per-configuration execution times for a decision.

        ``request_id`` normally names a recent decision (the service
        looks up what it chose); pass ``chosen`` explicitly for
        decisions that aged out of the window.  ``chosen`` accepts a
        :class:`~repro.tuning.Configuration`, a configuration mapping
        (``{"format": ..., "params": ...}``), or a configuration key;
        bare format strings keep working for one deprecation cycle with
        a one-time :class:`DeprecationWarning`.  Returns the
        :class:`~repro.serve.feedback.FeedbackEvent`.
        """
        if chosen is None:
            decision = self._recent.get(request_id)
            if decision is None:
                raise KeyError(
                    f"unknown request id {request_id!r}; pass chosen= for "
                    "decisions outside the recent window"
                )
            chosen = decision.chosen
        else:
            try:
                chosen = tuning.coerce(
                    chosen, context="SelectionService.record_feedback(chosen=...)"
                ).key
            except tuning.ConfigError:
                # Custom vocabulary name outside the tuning grids: keep
                # the legacy pass-through behaviour.
                if not isinstance(chosen, str):
                    raise
        event = self.feedback.record(str(request_id), chosen, observed)
        self.telemetry.record_regret(event.regret)
        adaptive = self._adaptive
        if adaptive is not None:
            adaptive.observe_feedback(event)
        return event

    def stats(self) -> Dict:
        """Telemetry snapshot plus model/config description."""
        snap = self.telemetry.snapshot()
        snap["service"] = {
            "mode": self.mode,
            "tolerance": self.tolerance,
            "energy_weight": self.energy_weight,
            "formats": list(self.formats),
            "selector": getattr(self.selector, "model_name", None),
            "predictor": getattr(self.predictor, "model_name", None),
            "simulator": (
                None if self.simulator is None
                else {
                    "device": self.simulator.device.name,
                    "precision": self.simulator.precision,
                }
            ),
            # Registry provenance, so network clients can see which
            # model build served them (empty for in-process models).
            "models": {
                kind: {"name": rec.name, "version": rec.version}
                for kind, rec in self.records.items()
            },
            "feedback": {
                "optimal_distribution": self.feedback.optimal_distribution(),
                "chosen_distribution": self.feedback.chosen_distribution(),
                "mean_regret": self.feedback.mean_regret(),
            },
        }
        if self._adaptive is not None:
            snap["service"]["adaptive"] = self._adaptive.status()
        return snap

    def clear_caches(self) -> None:
        """Drop cached features and decisions (telemetry is kept)."""
        if self._feature_cache is not None:
            self._feature_cache.clear()
        if self._decision_cache is not None:
            self._decision_cache.clear()
