"""Online feedback: observed execution times of served decisions.

The paper's pipeline is offline — train once, evaluate once.  A served
selector instead sees its decisions *executed*: after running SpMV with
the recommended format, a client can report the observed (here:
simulated) execution times back.  :class:`FeedbackLog` turns those
observations into the online quality signals the paper's metrics imply:

* **regret** per decision — ``t_chosen / t_best_observed − 1`` (the
  slowdown metric of Sec. V-C applied to live traffic),
* the empirical best-format distribution of the served workload (drift
  in this distribution versus the training labels is the classic
  retraining trigger),
* a bounded event history for inspection and tests.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Mapping, Optional

__all__ = ["FeedbackEvent", "FeedbackLog"]


@dataclass(frozen=True)
class FeedbackEvent:
    """One observed outcome of a served decision."""

    request_id: str
    chosen: str                  #: format the service recommended
    observed: Dict[str, float]   #: format → observed execution seconds
    regret: float                #: t_chosen / min(observed) − 1
    optimal: str                 #: observed-fastest format


class FeedbackLog:
    """Bounded, thread-safe log of served-decision outcomes."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._lock = threading.Lock()
        self._events: Deque[FeedbackEvent] = deque(maxlen=maxlen)
        self._optimal_counts: Counter = Counter()
        self._chosen_counts: Counter = Counter()

    def record(
        self,
        request_id: str,
        chosen: str,
        observed: Mapping[str, float],
    ) -> FeedbackEvent:
        """Record observed per-format times for one served decision.

        ``observed`` must contain the chosen format; the more formats it
        covers, the tighter the regret bound (with only the chosen
        format reported, regret is 0 by construction).
        """
        times = {str(k): float(v) for k, v in observed.items()}
        if chosen not in times:
            raise ValueError(
                f"observed times must include the chosen format {chosen!r}; "
                f"got {sorted(times)}"
            )
        bad = [k for k, v in times.items() if not v > 0.0]
        if bad:
            raise ValueError(f"observed times must be positive; bad: {bad}")
        optimal = min(times, key=times.get)
        regret = times[chosen] / times[optimal] - 1.0
        event = FeedbackEvent(
            request_id=request_id,
            chosen=chosen,
            observed=times,
            regret=regret,
            optimal=optimal,
        )
        with self._lock:
            self._events.append(event)
            self._optimal_counts[optimal] += 1
            self._chosen_counts[chosen] += 1
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list:
        """Snapshot of the retained events (most recent last)."""
        with self._lock:
            return list(self._events)

    def optimal_distribution(self) -> Dict[str, int]:
        """Observed-best format counts over the live workload."""
        with self._lock:
            return dict(self._optimal_counts)

    def chosen_distribution(self) -> Dict[str, int]:
        """Served-decision format counts."""
        with self._lock:
            return dict(self._chosen_counts)

    def mean_regret(self, last: Optional[int] = None) -> float:
        """Mean regret over the retained (or last ``n``) events."""
        with self._lock:
            events = list(self._events)
        if last is not None:
            events = events[-last:]
        if not events:
            return 0.0
        return sum(e.regret for e in events) / len(events)
