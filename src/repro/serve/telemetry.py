"""Serving telemetry: latency, throughput, cache hit rates, regret.

One :class:`ServiceTelemetry` instance aggregates everything a
:class:`~repro.serve.service.SelectionService` observes:

* per-request latency (bounded reservoir → mean / p50 / p95 / p99),
* request and batch counts → throughput over the service lifetime,
* batch-size distribution (cross-client micro-batching shows up here:
  a concurrent server funneling many connections through one
  ``predict_batch`` produces batch sizes > 1),
* protocol errors (malformed request lines — counted apart from served
  requests so error floods never distort throughput/latency stats),
* connection lifecycle (opened / active / disconnected mid-request),
* feature- and decision-cache hit rates,
* a rolling **regret** estimate versus the oracle, fed by the online
  feedback loop: for each served decision whose observed per-format
  times come back, ``regret = t_chosen / t_best - 1`` (0 = the service
  picked the measured-fastest format).

All mutators are thread-safe; :meth:`snapshot` returns a plain dict so
the numbers drop straight into JSON responses and bench reports.

ServiceTelemetry is also a **façade over the shared telemetry spine**
(:mod:`repro.obs`): every recording call mirrors into process-wide
``serve.*`` metrics, so a ``repro-spmv obs`` snapshot of a serving
process shows the same counts this class reports.  The mirror metrics
are held directly (always live, independent of ``obs.enabled()``),
because serving telemetry must stay exact whether or not tracing is on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from .. import obs

__all__ = ["ServiceTelemetry"]


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class ServiceTelemetry:
    """Thread-safe rolling counters for one serving process.

    Parameters
    ----------
    window:
        Bound on the latency / regret reservoirs (the most recent
        ``window`` observations define the rolling statistics).
    ewma_alpha:
        Smoothing factor of the exponentially weighted regret estimate.
    """

    def __init__(self, window: int = 1024, ewma_alpha: float = 0.1) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.window = window
        self.ewma_alpha = ewma_alpha
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self.n_requests = 0
        self.n_batches = 0
        self.n_protocol_errors = 0
        self.n_connections = 0
        self.n_active_connections = 0
        self.n_disconnects = 0
        self.batch_size_max = 0
        self.feature_cache_hits = 0
        self.feature_cache_misses = 0
        self.decision_cache_hits = 0
        self.decision_cache_misses = 0
        self.n_feedback = 0
        self._latencies_s: Deque[float] = deque(maxlen=window)
        self._batch_sizes: Deque[int] = deque(maxlen=window)
        self._regrets: Deque[float] = deque(maxlen=window)
        self._regret_ewma: Optional[float] = None
        # Shared-registry mirrors (see module docstring).  Metric objects
        # are resolved once here, so the recording hot path pays one
        # method call per mirror, not a registry lookup.
        self._m_requests = obs.counter("serve.requests")
        self._m_batches = obs.counter("serve.batches")
        self._m_errors = obs.counter("serve.errors")
        self._m_connections = obs.counter("serve.connections")
        self._m_disconnects = obs.counter("serve.disconnects")
        self._m_active = obs.gauge("serve.active_connections")
        self._m_batch_size = obs.histogram(
            "serve.batch_size", boundaries=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        self._m_feedback = obs.counter("serve.feedback")
        self._m_latency = obs.histogram("serve.request_seconds")
        self._m_regret_ewma = obs.gauge("serve.regret_ewma")
        self._m_cache = {
            ("feature", True): obs.counter("serve.feature_cache_hits"),
            ("feature", False): obs.counter("serve.feature_cache_misses"),
            ("decision", True): obs.counter("serve.decision_cache_hits"),
            ("decision", False): obs.counter("serve.decision_cache_misses"),
        }

    # -- recording ---------------------------------------------------------

    def record_batch(
        self,
        n_requests: int,
        latency_s: float,
        *,
        feature_hits: int = 0,
        feature_misses: int = 0,
        decision_hits: int = 0,
        decision_misses: int = 0,
    ) -> None:
        """Account one (possibly single-request) prediction batch."""
        per_request = latency_s / max(1, n_requests)
        with self._lock:
            self.n_requests += n_requests
            self.n_batches += 1
            self._batch_sizes.append(n_requests)
            self.batch_size_max = max(self.batch_size_max, n_requests)
            self.feature_cache_hits += feature_hits
            self.feature_cache_misses += feature_misses
            self.decision_cache_hits += decision_hits
            self.decision_cache_misses += decision_misses
            for _ in range(n_requests):
                self._latencies_s.append(per_request)
        self._m_requests.inc(n_requests)
        self._m_batches.inc()
        self._m_batch_size.observe(n_requests)
        for kind, hits in (("feature", feature_hits), ("decision", decision_hits)):
            if hits:
                self._m_cache[(kind, True)].inc(hits)
        for kind, misses in (("feature", feature_misses),
                             ("decision", decision_misses)):
            if misses:
                self._m_cache[(kind, False)].inc(misses)
        for _ in range(n_requests):
            self._m_latency.observe(per_request)

    def record_protocol_error(self) -> None:
        """Account one malformed request line (not a served request)."""
        with self._lock:
            self.n_protocol_errors += 1
        self._m_errors.inc()

    def record_connection_open(self) -> None:
        """Account one accepted client connection."""
        with self._lock:
            self.n_connections += 1
            self.n_active_connections += 1
            active = self.n_active_connections
        self._m_connections.inc()
        self._m_active.set(active)

    def record_connection_close(self, *, disconnected: bool = False) -> None:
        """Account one finished connection (``disconnected`` = the peer
        vanished mid-request or a write to it failed)."""
        with self._lock:
            self.n_active_connections = max(0, self.n_active_connections - 1)
            if disconnected:
                self.n_disconnects += 1
            active = self.n_active_connections
        self._m_active.set(active)
        if disconnected:
            self._m_disconnects.inc()

    def record_regret(self, regret: float) -> None:
        """Account one feedback observation (regret ≥ 0 vs the oracle)."""
        regret = float(max(0.0, regret))
        with self._lock:
            self.n_feedback += 1
            self._regrets.append(regret)
            if self._regret_ewma is None:
                self._regret_ewma = regret
            else:
                a = self.ewma_alpha
                self._regret_ewma = a * regret + (1.0 - a) * self._regret_ewma
            ewma = self._regret_ewma
        self._m_feedback.inc()
        self._m_regret_ewma.set(ewma)

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> Dict:
        """Current counters as a JSON-able dict."""
        with self._lock:
            lat = list(self._latencies_s)
            sizes = list(self._batch_sizes)
            regrets = list(self._regrets)
            uptime = time.perf_counter() - self._start
            return {
                "uptime_s": uptime,
                "requests": self.n_requests,
                "batches": self.n_batches,
                "protocol_errors": self.n_protocol_errors,
                "throughput_rps": self.n_requests / uptime if uptime > 0 else 0.0,
                "batch_size": {
                    "max": self.batch_size_max,
                    "mean": float(np.mean(sizes)) if sizes else 0.0,
                    "gt1": int(sum(s > 1 for s in sizes)),
                },
                "connections": {
                    "total": self.n_connections,
                    "active": self.n_active_connections,
                    "disconnects": self.n_disconnects,
                },
                "latency_ms": {
                    "mean": 1e3 * float(np.mean(lat)) if lat else 0.0,
                    "p50": 1e3 * _percentile(lat, 50),
                    "p95": 1e3 * _percentile(lat, 95),
                    "p99": 1e3 * _percentile(lat, 99),
                },
                "feature_cache": {
                    "hits": self.feature_cache_hits,
                    "misses": self.feature_cache_misses,
                    "hit_rate": self._rate(self.feature_cache_hits,
                                           self.feature_cache_misses),
                },
                "decision_cache": {
                    "hits": self.decision_cache_hits,
                    "misses": self.decision_cache_misses,
                    "hit_rate": self._rate(self.decision_cache_hits,
                                           self.decision_cache_misses),
                },
                "feedback": {
                    "count": self.n_feedback,
                    "regret_mean": float(np.mean(regrets)) if regrets else 0.0,
                    "regret_p95": _percentile(regrets, 95),
                    "regret_ewma": self._regret_ewma,
                    "oracle_hit_rate": (
                        float(np.mean([r <= 1e-12 for r in regrets]))
                        if regrets else 0.0
                    ),
                },
            }
