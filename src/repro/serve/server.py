"""Concurrent JSON-lines socket serving: :class:`SelectionServer`.

The stdio daemon (:func:`repro.serve.daemon.serve_jsonl`) serves one
client; this module is the network half of the ROADMAP's "service for
millions of users" goal.  A :class:`SelectionServer` accepts many
concurrent TCP connections, each speaking the **same JSON-lines
protocol** as the daemon (``predict`` / ``feedback`` / ``stats`` /
``metrics`` / ``shutdown``), and funnels every ``predict`` through one
shared :class:`~repro.serve.batcher.MicroBatcher` — so requests that
arrive together, from *different* clients, share a single vectorised
:meth:`~repro.serve.service.SelectionService.predict_batch` call.
Batch sizes > 1 in ``service.stats()["batch_size"]`` are that sharing,
observed.

Design points (all load-bearing under concurrency):

* **threaded, not asyncio** — the service's model calls are pure-numpy
  and release nothing; a thread per connection keeps the blocking
  protocol code identical to the stdio daemon while the micro-batcher
  provides the actual cross-client coupling.  Connection threads spend
  their time blocked on ``recv`` or on a batch future, so the thread
  count is not a throughput ceiling.
* **bounded queues + explicit backpressure** — when the batcher's
  queue is full, the client gets ``{"ok": false, "busy": true, ...}``
  immediately instead of unbounded buffering.
* **graceful drain** — :meth:`shutdown` stops accepting new
  connections, lets every in-flight request complete and its response
  flush, then closes.  Zero admitted requests are dropped.
* **per-connection observability** — every connection runs inside a
  ``serve.connection`` span and is counted (opened / active /
  disconnected) in :class:`~repro.serve.telemetry.ServiceTelemetry`,
  so ``stats`` responses and ``repro-spmv obs`` agree about traffic.

Protocol additions over the stdio daemon: a ``busy`` error response
under overload, and ``{"op": "shutdown"}`` initiating a *server-wide*
graceful drain (the acknowledging client gets its response first).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Optional, Tuple

from .. import obs
from .batcher import MicroBatcher, QueueFull
from .daemon import handle_request, resolve_predict_item
from .service import SelectionService

__all__ = ["SelectionServer"]

#: Response sent when the request queue is at capacity.
BUSY_RESPONSE = {
    "ok": False,
    "busy": True,
    "error": "server overloaded: request queue full, retry later",
}


class _LineReader:
    """Blocking line reader over a socket with periodic wakeups.

    ``readline`` returns one decoded line (without the newline), ``""``
    on a cleanly closed peer, and ``None`` on a poll timeout — the
    caller uses those wakeups to notice server shutdown between lines.
    """

    def __init__(self, sock: socket.socket, poll_s: float = 0.1) -> None:
        self._sock = sock
        self._sock.settimeout(poll_s)
        self._buf = b""
        self._eof = False

    def readline(self) -> Optional[str]:
        while b"\n" not in self._buf:
            if self._eof:
                return ""
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except OSError:
                chunk = b""
            if not chunk:
                self._eof = True
                if not self._buf:
                    return ""
                # Trailing line without a newline still gets served.
                self._buf, line = b"", self._buf
                return line.decode("utf-8", errors="replace")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return line.decode("utf-8", errors="replace")

    def pending_lines(self):
        """Yield complete lines the peer already sent, without blocking.

        Used by the graceful-drain path: requests that reached this
        socket before the drain began are served, not dropped.
        """
        self._sock.settimeout(0.0)
        try:
            while not self._eof:
                chunk = self._sock.recv(65536)
                if not chunk:
                    self._eof = True
                    break
                self._buf += chunk
        except (BlockingIOError, socket.timeout, OSError):
            pass
        while b"\n" in self._buf:
            line, self._buf = self._buf.split(b"\n", 1)
            yield line.decode("utf-8", errors="replace")


class SelectionServer:
    """Serve a :class:`SelectionService` over TCP to many clients.

    Parameters
    ----------
    service:
        The (thread-safe) selection service every connection shares.
    host / port:
        Bind address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_batch / batch_window_s / queue_size:
        Micro-batcher tuning — see :class:`MicroBatcher`.
    backlog:
        Listen backlog for the accept socket.
    """

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 32,
        batch_window_s: float = 0.002,
        queue_size: int = 256,
        backlog: int = 128,
    ) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._backlog = backlog
        self._batcher_opts = dict(
            max_batch=max_batch, window_s=batch_window_s, queue_size=queue_size
        )
        self._batcher: Optional[MicroBatcher] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._started = False
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_requested = threading.Event()
        self._shutdown_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "SelectionServer":
        """Bind, listen and start accepting connections; returns self."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._batcher = MicroBatcher(self.service, **self._batcher_opts)
        self._listener = socket.create_server(
            (self._host, self._port), backlog=self._backlog, reuse_port=False
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self, poll_s: float = 0.2) -> None:
        """Block until :meth:`shutdown` is called (or a client sends
        ``{"op": "shutdown"}``, which triggers a graceful drain)."""
        if not self._started:
            raise RuntimeError("server is not started")
        while not self._stopped.wait(timeout=poll_s):
            pass

    def shutdown(self, *, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop the server.

        With ``drain`` (the default): stop accepting connections, let
        every request already read off a socket finish through the
        batcher, flush its response, then close.  Without it, pending
        work is failed fast.  Idempotent and safe to call concurrently
        (a network ``shutdown`` op and ``serve_forever`` may race here).
        """
        with self._shutdown_lock:
            if not self._started or self._stopped.is_set():
                self._stopped.set()
                return
            self._do_shutdown(drain=drain, timeout=timeout)

    def _do_shutdown(self, *, drain: bool, timeout: Optional[float]) -> None:
        self._draining.set()
        # Refuse new connections: closing the listener makes further
        # connects fail at the TCP level.
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        # Connection threads notice _draining at their next poll wakeup,
        # serve every request their peer had already sent, and exit.
        with self._conn_lock:
            threads = list(self._connections)
        for thread in threads:
            thread.join(timeout)
        if self._batcher is not None:
            self._batcher.close(drain=drain, timeout=timeout)
        self._stopped.set()

    # -- accept / connection handling --------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        try:
            listener.settimeout(0.1)
        except OSError:
            return  # shutdown() closed the listener before we started
        while not self._draining.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            with self._conn_lock:
                self._connections.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        telemetry = self.service.telemetry
        telemetry.record_connection_open()
        disconnected = False
        try:
            with obs.span("serve.connection"):
                reader = _LineReader(conn)
                draining_exit = False
                while True:
                    if self._draining.is_set():
                        draining_exit = True
                        break
                    line = reader.readline()
                    if line is None:
                        continue  # poll wakeup; re-check drain flag
                    if line == "":
                        break  # peer closed
                    line = line.strip()
                    if not line:
                        continue
                    response = self._handle_line(line)
                    try:
                        conn.sendall((json.dumps(response) + "\n").encode("utf-8"))
                    except OSError:
                        # Peer vanished before reading its response; the
                        # request itself completed — nothing to unwind.
                        disconnected = True
                        break
                    if response.get("shutdown"):
                        self._shutdown_requested.set()
                        # Drain from a helper thread so the server stops
                        # even when nobody is blocked in serve_forever().
                        threading.Thread(
                            target=self.shutdown, name="repro-serve-drain",
                            daemon=True,
                        ).start()
                        break
                if draining_exit:
                    # Final pass: requests the client sent before the
                    # drain began are in flight — serve them all, so a
                    # graceful shutdown drops zero admitted requests.
                    for line in reader.pending_lines():
                        line = line.strip()
                        if not line:
                            continue
                        response = self._handle_line(line)
                        try:
                            conn.sendall(
                                (json.dumps(response) + "\n").encode("utf-8")
                            )
                        except OSError:
                            disconnected = True
                            break
        finally:
            telemetry.record_connection_close(disconnected=disconnected)
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.discard(threading.current_thread())

    # -- request handling ---------------------------------------------------

    def _handle_line(self, line: str) -> Dict:
        with obs.span("serve.request"):
            try:
                request = json.loads(line)
            except ValueError as exc:
                self.service.telemetry.record_protocol_error()
                return {"ok": False, "error": f"invalid JSON: {exc}"}
            if isinstance(request, dict) and request.get("op", "predict") == "predict":
                return self._handle_predict(request)
            # Everything else is cheap and lock-protected — handled
            # inline by the same code path as the stdio daemon.
            return handle_request(self.service, request)

    def _handle_predict(self, request: Dict) -> Dict:
        try:
            item = resolve_predict_item(request)
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            future = self._batcher.submit(item, request.get("id"))
        except QueueFull as exc:
            response = dict(BUSY_RESPONSE)
            response["error"] = f"server overloaded: {exc}"
            return response
        except RuntimeError as exc:  # batcher closed mid-drain
            return {"ok": False, "error": f"RuntimeError: {exc}"}
        try:
            decision = future.result()
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        response = decision.to_dict()
        response["ok"] = True
        return response
