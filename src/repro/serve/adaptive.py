"""Adaptive serving: the closed online-learning loop.

The serving stack records observed timings and rolling regret
(:mod:`repro.serve.feedback`), but until this module the models it
serves never improved.  :class:`AdaptiveController` turns the existing
feedback / registry / observability plumbing into a closed loop:

1. **Experience accumulation** — every feedback event whose decision
   carried the canonical 17-feature vector becomes a training row in a
   bounded :class:`ExperienceBuffer` (features + observed per-format
   seconds), convertible to an :class:`~repro.core.dataset.SpMVDataset`.
2. **Incremental / warm-restart training** — once enough rows
   accumulate, a **candidate** selector is trained: warm-started from
   the PRODUCTION artifact for model families that support it (MLP,
   boosting — see ``warm_fit`` on :class:`~repro.core.FormatSelector`),
   refit from scratch otherwise — and saved as a new version in the
   :class:`~repro.serve.registry.ModelRegistry`.
3. **Shadow evaluation** — every predict is answered by PRODUCTION
   while the candidate scores the same batch off the hot path; when
   observed times come back, both models' regret on the *same* events
   is tracked in a :class:`ShadowScoreboard`.
4. **Regret-gated auto-promotion** — a :class:`PromotionPolicy`
   (minimum paired samples, minimum relative regret improvement,
   cooldown) decides when the candidate replaces PRODUCTION: the
   registry alias moves, the live service hot-swaps the model, and an
   auditable promotion record lands in ``PROMOTIONS.jsonl``.
   ``promote`` / ``rollback`` daemon+server ops and the
   ``repro-spmv adapt`` CLI provide the manual override.
5. **Drift detection** — a Page–Hinkley test over the regret stream
   plus a windowed mean-shift statistic over the served feature
   distribution (:class:`DriftMonitor`), surfaced as ``repro.obs``
   gauges/counters and a ``drift`` section in ``stats``; an alarm
   fast-tracks the next training round.

Everything here is defensive at the serving boundary: the controller's
hooks never raise into :meth:`SelectionService.predict_batch` /
:meth:`record_feedback` — failures are counted on the
``serve.adaptive.errors`` counter instead.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.dataset import SpMVDataset
from ..core.selector import MODEL_REGISTRY, FormatSelector
from ..features import ALL_FEATURES
from ..gpu.cache import LRUCache
from ..ml import clone as ml_clone
from .feedback import FeedbackEvent
from .registry import ModelRegistry, ModelRecord

__all__ = [
    "AdaptiveController",
    "AdaptiveError",
    "DriftMonitor",
    "ExperienceBuffer",
    "PageHinkley",
    "PromotionPolicy",
    "ShadowScoreboard",
]

_CANONICAL = tuple(ALL_FEATURES)


class AdaptiveError(RuntimeError):
    """Raised on invalid adaptive-loop operations (no candidate, gate
    not met without ``force``, nothing to roll back to, ...)."""


# ---------------------------------------------------------------------------
# Experience buffer
# ---------------------------------------------------------------------------


class ExperienceBuffer:
    """Bounded, thread-safe store of (features, observed-times) rows.

    Feedback events arrive one at a time from serving threads; the
    trainer drains a consistent snapshot.  Rows are kept regardless of
    how many formats their observation covered — coverage filtering
    happens in :meth:`to_dataset`, where the label (argmin) is formed.
    """

    def __init__(self, maxlen: int = 4096, *, min_coverage: int = 2) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        if min_coverage < 1:
            raise ValueError("min_coverage must be >= 1")
        self.maxlen = maxlen
        self.min_coverage = min_coverage
        self._lock = threading.Lock()
        self._rows: Deque[Tuple[str, np.ndarray, Dict[str, float]]] = deque(
            maxlen=maxlen
        )
        self._n_added = 0

    def add(
        self,
        request_id: str,
        features: np.ndarray,
        observed: Mapping[str, float],
    ) -> None:
        """Append one experience row (canonical 17-feature order)."""
        vec = np.asarray(features, dtype=np.float64)
        if vec.shape != (len(_CANONICAL),):
            raise ValueError(
                f"features must be the canonical {len(_CANONICAL)}-vector, "
                f"got shape {vec.shape}"
            )
        times = {str(k): float(v) for k, v in observed.items()}
        with self._lock:
            self._rows.append((str(request_id), vec, times))
            self._n_added += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    @property
    def n_added(self) -> int:
        """Total rows ever added (monotonic; retention is bounded)."""
        with self._lock:
            return self._n_added

    def rows(self) -> List[Tuple[str, np.ndarray, Dict[str, float]]]:
        """Snapshot of the retained rows (oldest first)."""
        with self._lock:
            return list(self._rows)

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()

    def to_dataset(
        self,
        formats: Sequence[str],
        *,
        device: str = "live",
        precision: str = "single",
    ) -> Optional[SpMVDataset]:
        """Convert retained rows into a trainable :class:`SpMVDataset`.

        Only rows whose observation covers at least ``min_coverage``
        formats of the vocabulary contribute (with a single covered
        format the argmin label would merely imitate the current
        policy).  Unobserved formats are filled with ``inf`` so the
        label — and nothing else — is defined; the result feeds
        *selector* (classification) training, not time regression.
        Returns ``None`` when no row qualifies.
        """
        formats = tuple(formats)
        names: List[str] = []
        feats: List[np.ndarray] = []
        times: List[np.ndarray] = []
        for rid, vec, observed in self.rows():
            row = np.full(len(formats), np.inf)
            covered = 0
            for j, fmt in enumerate(formats):
                if fmt in observed:
                    row[j] = observed[fmt]
                    covered += 1
            if covered < self.min_coverage:
                continue
            names.append(rid)
            feats.append(vec)
            times.append(row)
        if not names:
            return None
        return SpMVDataset(
            names=names,
            feature_array=np.stack(feats),
            times=np.stack(times),
            formats=formats,
            device=device,
            precision=precision,
        )


# ---------------------------------------------------------------------------
# Promotion policy + shadow scoreboard
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PromotionPolicy:
    """Regret gate deciding when a shadow candidate goes to production.

    Attributes
    ----------
    min_samples:
        Minimum *paired* feedback events — observations that scored
        both PRODUCTION and the candidate — before the gate opens.
    min_improvement:
        Required relative mean-regret improvement,
        ``(prod − shadow) / prod``.
    cooldown_s:
        Minimum seconds since the previous promotion (or rollback).
    """

    min_samples: int = 50
    min_improvement: float = 0.05
    cooldown_s: float = 0.0

    def evaluate(
        self,
        *,
        n_paired: int,
        shadow_regret_mean: float,
        production_regret_mean: float,
        seconds_since_promotion: Optional[float] = None,
    ) -> Tuple[bool, str]:
        """Gate decision as ``(promote?, reason)``."""
        if n_paired < self.min_samples:
            return False, (
                f"insufficient samples: {n_paired}/{self.min_samples} paired"
            )
        if (
            seconds_since_promotion is not None
            and seconds_since_promotion < self.cooldown_s
        ):
            return False, (
                f"cooldown: {seconds_since_promotion:.1f}s since last "
                f"promotion < {self.cooldown_s:.1f}s"
            )
        if production_regret_mean <= 0.0:
            return False, "production regret already zero"
        improvement = (
            production_regret_mean - shadow_regret_mean
        ) / production_regret_mean
        if improvement < self.min_improvement:
            return False, (
                f"improvement {improvement:+.1%} < "
                f"required {self.min_improvement:.1%}"
            )
        return True, (
            f"improvement {improvement:+.1%} over {n_paired} paired samples "
            f"(prod {production_regret_mean:.4f} -> "
            f"shadow {shadow_regret_mean:.4f})"
        )


class ShadowScoreboard:
    """Per-candidate-version quality ledger, paired against PRODUCTION.

    Every feedback event whose observation covers the candidate's
    choice contributes one *paired* sample: the production regret (what
    the service actually served) and the shadow regret (what the
    candidate would have suffered) on identical observed times.
    """

    def __init__(self, name: str, version: str) -> None:
        self.name = name
        self.version = version
        self._lock = threading.Lock()
        self.n_decisions = 0
        self.n_paired = 0
        self.n_uncovered = 0
        self.n_agreements = 0
        self._shadow_regret_sum = 0.0
        self._production_regret_sum = 0.0

    def record_decisions(self, n: int) -> None:
        with self._lock:
            self.n_decisions += n

    def record_pair(
        self, shadow_regret: float, production_regret: float, agreed: bool
    ) -> None:
        with self._lock:
            self.n_paired += 1
            self._shadow_regret_sum += max(0.0, shadow_regret)
            self._production_regret_sum += max(0.0, production_regret)
            if agreed:
                self.n_agreements += 1

    def record_uncovered(self) -> None:
        with self._lock:
            self.n_uncovered += 1

    def shadow_regret_mean(self) -> float:
        with self._lock:
            return self._shadow_regret_sum / self.n_paired if self.n_paired else 0.0

    def production_regret_mean(self) -> float:
        with self._lock:
            return (
                self._production_regret_sum / self.n_paired
                if self.n_paired else 0.0
            )

    def snapshot(self) -> Dict:
        with self._lock:
            paired = self.n_paired
            shadow_mean = self._shadow_regret_sum / paired if paired else 0.0
            prod_mean = self._production_regret_sum / paired if paired else 0.0
            improvement = (
                (prod_mean - shadow_mean) / prod_mean if prod_mean > 0 else 0.0
            )
            return {
                "version": self.version,
                "n_decisions": self.n_decisions,
                "n_paired": paired,
                "n_uncovered": self.n_uncovered,
                "agreement_rate": self.n_agreements / paired if paired else 0.0,
                "shadow_regret_mean": shadow_mean,
                "production_regret_mean": prod_mean,
                "improvement": improvement,
            }


# ---------------------------------------------------------------------------
# Drift detection
# ---------------------------------------------------------------------------


class PageHinkley:
    """Page–Hinkley test for an upward mean shift in a scalar stream.

    Classic sequential change detection: track the cumulative deviation
    of each observation from the running mean (minus a tolerance
    ``delta``); when the cumulative sum rises ``threshold`` above its
    historical minimum, the mean has shifted up and :meth:`update`
    returns ``True``.
    """

    def __init__(
        self,
        *,
        delta: float = 0.005,
        threshold: float = 0.5,
        min_samples: int = 30,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    @property
    def statistic(self) -> float:
        """Current test statistic (distance of the cusum above its min)."""
        return self._cum - self._cum_min

    def update(self, x: float) -> bool:
        """Feed one observation; returns ``True`` on an alarm."""
        x = float(x)
        self.n += 1
        self._mean += (x - self._mean) / self.n
        self._cum += x - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        return self.n >= self.min_samples and self.statistic > self.threshold


class DriftMonitor:
    """Workload drift over the served feature distribution and regret.

    Two detectors, surfaced side by side:

    * **feature shift** — the first ``window`` canonical feature
      vectors form a frozen *reference*; the latest ``window`` form the
      *recent* window.  The statistic is the largest per-feature
      normalised mean shift ``|mu_recent − mu_ref| / (sigma_ref + eps)``
      (a windowed mean-shift test in reference-sigma units).
    * **regret** — a :class:`PageHinkley` test over the per-event
      regret stream (the selector getting *worse* is drift even when
      the inputs look stationary).

    :meth:`update` returns ``True`` on the rising edge of either alarm.
    """

    def __init__(
        self,
        *,
        window: int = 256,
        shift_threshold: float = 3.0,
        page_hinkley: Optional[PageHinkley] = None,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.shift_threshold = float(shift_threshold)
        self.page_hinkley = page_hinkley or PageHinkley()
        self._lock = threading.Lock()
        self._reference: List[np.ndarray] = []
        self._recent: Deque[np.ndarray] = deque(maxlen=window)
        self._ref_mean: Optional[np.ndarray] = None
        self._ref_sigma: Optional[np.ndarray] = None
        self._feature_shift = 0.0
        self._alarmed = False
        self.n_alarms = 0
        self.n_observations = 0

    def _freeze_reference(self) -> None:
        ref = np.stack(self._reference)
        self._ref_mean = ref.mean(axis=0)
        self._ref_sigma = ref.std(axis=0)

    def feature_shift(self) -> float:
        """Latest normalised mean-shift statistic (0 until windows fill)."""
        with self._lock:
            return self._feature_shift

    def update(
        self,
        features: Optional[np.ndarray] = None,
        regret: Optional[float] = None,
    ) -> bool:
        """Feed one served observation; ``True`` on a rising-edge alarm."""
        ph_alarm = False
        if regret is not None and math.isfinite(regret):
            ph_alarm = self.page_hinkley.update(max(0.0, regret))
        with self._lock:
            self.n_observations += 1
            if features is not None:
                vec = np.asarray(features, dtype=np.float64)
                if len(self._reference) < self.window:
                    self._reference.append(vec)
                    if len(self._reference) == self.window:
                        self._freeze_reference()
                self._recent.append(vec)
                if self._ref_mean is not None and len(self._recent) == self.window:
                    recent_mean = np.mean(np.stack(self._recent), axis=0)
                    shifts = np.abs(recent_mean - self._ref_mean) / (
                        self._ref_sigma + 1e-12
                    )
                    self._feature_shift = float(shifts.max())
            shift_alarm = self._feature_shift > self.shift_threshold
            alarmed = ph_alarm or shift_alarm
            rising = alarmed and not self._alarmed
            self._alarmed = alarmed
            if rising:
                self.n_alarms += 1
            return rising

    def reset(self) -> None:
        """Drop the regret detector state and the alarm latch.

        The feature reference window is kept: the training data the
        production model saw does not change just because the loop
        retrained on recent rows.
        """
        with self._lock:
            self.page_hinkley.reset()
            self._alarmed = False

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "observations": self.n_observations,
                "feature_shift": self._feature_shift,
                "shift_threshold": self.shift_threshold,
                "reference_filled": self._ref_mean is not None,
                "regret_ph": self.page_hinkley.statistic,
                "regret_ph_threshold": self.page_hinkley.threshold,
                "alarmed": self._alarmed,
                "alarms": self.n_alarms,
            }


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


class _Shadow:
    """One live candidate: the model, its registry record, its ledger."""

    __slots__ = ("model", "record", "scoreboard", "feature_names")

    def __init__(self, model, record: ModelRecord, feature_names) -> None:
        self.model = model
        self.record = record
        self.scoreboard = ShadowScoreboard(record.name, record.version)
        self.feature_names = tuple(feature_names)


class AdaptiveController:
    """Close the online-learning loop around a :class:`SelectionService`.

    Parameters
    ----------
    service:
        The live service; the controller attaches itself
        (``service.attach_adaptive``) so predict/feedback hooks fire.
    registry / model_name:
        Where candidate versions are saved and promoted.  The
        production alias of ``model_name`` must resolve to the selector
        the service is serving.
    policy:
        :class:`PromotionPolicy` gating auto-promotion.
    train_every:
        Auto mode trains a fresh candidate every this many new buffer
        rows (a drift alarm fast-tracks the next round).
    min_train_rows:
        Minimum qualifying dataset rows before any training happens.
    warm_start:
        Warm-start candidates from the production artifact when the
        model family supports it (MLP / boosting); otherwise refit.
    warm_kwargs:
        Extra keyword arguments for ``warm_fit`` (e.g. ``n_epochs=20``).
    base_dataset:
        Optional offline dataset concatenated with the experience rows
        for cold refits, so tiny live buffers don't collapse the
        decision surface.
    drift:
        :class:`DriftMonitor` (a default one is built when omitted).
    auto:
        Run the train → evaluate → promote loop automatically from the
        feedback hook.  With ``auto=False`` the controller only
        accumulates and scores; call :meth:`train_candidate` /
        :meth:`promote` explicitly (the daemon ops do).
    """

    def __init__(
        self,
        service,
        registry,
        model_name: str,
        *,
        policy: Optional[PromotionPolicy] = None,
        train_every: int = 64,
        min_train_rows: int = 16,
        min_coverage: int = 2,
        buffer_size: int = 4096,
        warm_start: bool = True,
        warm_kwargs: Optional[Dict] = None,
        base_dataset: Optional[SpMVDataset] = None,
        drift: Optional[DriftMonitor] = None,
        auto: bool = True,
        clock=time.monotonic,
    ) -> None:
        if train_every < 1:
            raise ValueError("train_every must be >= 1")
        if min_train_rows < 1:
            raise ValueError("min_train_rows must be >= 1")
        self.service = service
        self.registry = (
            registry if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self.model_name = model_name
        self.policy = policy or PromotionPolicy()
        self.train_every = train_every
        self.min_train_rows = min_train_rows
        self.warm_start = warm_start
        self.warm_kwargs = dict(warm_kwargs or {})
        self.base_dataset = base_dataset
        self.drift = drift or DriftMonitor()
        self.auto = auto
        self.buffer = ExperienceBuffer(buffer_size, min_coverage=min_coverage)
        self._clock = clock
        self._lock = threading.RLock()
        self._shadow: Optional[_Shadow] = None
        self._features = LRUCache(buffer_size)        # rid -> (names, vec)
        self._shadow_choices = LRUCache(buffer_size)  # rid -> format name
        self._shadow_cache = LRUCache(512)            # (ver, vec) -> choice
        self._pending_lock = threading.Lock()
        self._pending: Deque[Tuple] = deque()         # rows awaiting scoring
        self._pending_rows = 0
        self._pending_max = buffer_size
        self._rows_at_last_train = 0
        self._last_promotion_t: Optional[float] = None
        self._drift_pending = False
        self.n_trainings = 0
        self.n_promotions = 0
        self.n_rollbacks = 0
        self.n_rows_skipped = 0
        # Live metric mirrors (always recorded, like ServiceTelemetry).
        self._m_trainings = obs.counter("serve.adaptive.trainings")
        self._m_promotions = obs.counter("serve.adaptive.promotions")
        self._m_rollbacks = obs.counter("serve.adaptive.rollbacks")
        self._m_skipped = obs.counter("serve.adaptive.promotions_skipped")
        self._m_shadow_decisions = obs.counter("serve.adaptive.shadow_decisions")
        self._m_shadow_paired = obs.counter("serve.adaptive.shadow_paired")
        self._m_errors = obs.counter("serve.adaptive.errors")
        self._m_buffer = obs.gauge("serve.adaptive.buffer_rows")
        self._m_shadow_regret = obs.gauge("serve.adaptive.shadow_regret_mean")
        self._m_prod_regret = obs.gauge("serve.adaptive.production_regret_mean")
        self._m_shift = obs.gauge("serve.adaptive.drift.feature_shift")
        self._m_ph = obs.gauge("serve.adaptive.drift.regret_ph")
        self._m_alarms = obs.counter("serve.adaptive.drift.alarms")
        self._m_shadow_seconds = obs.histogram("serve.adaptive.shadow_seconds")
        service.attach_adaptive(self)

    # -- service hooks (never raise into the serving path) ------------------

    def observe_batch(self, rows: Sequence[Tuple[str, Tuple[str, ...], np.ndarray, str]]) -> None:
        """Hook from :meth:`SelectionService.predict_batch`.

        ``rows`` carries ``(request_id, feature_names, vector,
        chosen_format)`` per served decision.  The predict path pays
        only bounded-LRU bookkeeping here: features are stashed for
        later experience rows and the batch is *queued* for shadow
        scoring, which runs lazily off the hot path (on the next
        feedback/status drain) — candidate model time never lands in
        serving latency.
        """
        try:
            for rid, names, vec, _chosen in rows:
                self._features.put(rid, (tuple(names), vec))
            if self._shadow is not None:
                with self._pending_lock:
                    self._pending.append(tuple(rows))
                    self._pending_rows += len(rows)
                    while self._pending_rows > self._pending_max and self._pending:
                        self._pending_rows -= len(self._pending.popleft())
        except Exception:
            self._m_errors.inc()

    def _drain_shadow(self) -> None:
        """Score every queued batch with the current candidate."""
        shadow = self._shadow
        with self._pending_lock:
            if not self._pending:
                return
            batches = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
        if shadow is None:
            return
        t0 = time.perf_counter()
        for rows in batches:
            self._score_shadow(shadow, rows)
        self._m_shadow_seconds.observe(time.perf_counter() - t0)

    def _score_shadow(self, shadow: _Shadow, rows) -> None:
        """Run the candidate over the batch, caching per-vector choices."""
        want = shadow.feature_names
        misses: Dict[Tuple, List[str]] = {}
        miss_vecs: Dict[Tuple, np.ndarray] = {}
        scored = 0
        for rid, names, vec, _chosen in rows:
            names = tuple(names)
            key = (shadow.record.version, names, vec.tobytes())
            cached = self._shadow_cache.get(key)
            if cached is not None:
                self._shadow_choices.put(rid, cached)
                scored += 1
                continue
            if not set(want) <= set(names):
                continue  # request features cannot feed the candidate
            misses.setdefault(key, []).append(rid)
            miss_vecs[key] = vec if names == want else vec[
                [names.index(n) for n in want]
            ]
        if misses:
            keys = list(misses)
            X = np.stack([miss_vecs[k] for k in keys])
            picks = shadow.model.predict(X)
            formats = shadow.model.formats_
            for key, pick in zip(keys, picks):
                fmt = formats[int(pick)]
                self._shadow_cache.put(key, fmt)
                for rid in misses[key]:
                    self._shadow_choices.put(rid, fmt)
                    scored += 1
        shadow.scoreboard.record_decisions(scored)
        self._m_shadow_decisions.inc(scored)

    def observe_feedback(self, event: FeedbackEvent) -> None:
        """Hook from :meth:`SelectionService.record_feedback`."""
        try:
            self._ingest_feedback(event)
            if self.auto:
                self._auto_step()
        except Exception:
            self._m_errors.inc()

    def _ingest_feedback(self, event: FeedbackEvent) -> None:
        # Pairing needs the candidate's choice for this request; catch
        # up on any shadow scoring deferred off the predict path first.
        self._drain_shadow()
        stored = self._features.get(event.request_id)
        vec17 = None
        if stored is not None and stored[0] == _CANONICAL:
            vec17 = stored[1]
            self.buffer.add(event.request_id, vec17, event.observed)
        else:
            with self._lock:
                self.n_rows_skipped += 1
        self._m_buffer.set(len(self.buffer))

        if self.drift.update(features=vec17, regret=event.regret):
            self._m_alarms.inc()
            with self._lock:
                self._drift_pending = True
        snap = self.drift.snapshot()
        self._m_shift.set(snap["feature_shift"])
        self._m_ph.set(snap["regret_ph"])

        shadow = self._shadow
        if shadow is not None:
            choice = self._shadow_choices.get(event.request_id)
            if choice is None:
                pass  # decision predates the candidate (or was uncoverable)
            elif choice in event.observed:
                best = min(event.observed.values())
                shadow_regret = (
                    event.observed[choice] / best - 1.0 if best > 0 else 0.0
                )
                shadow.scoreboard.record_pair(
                    shadow_regret, event.regret, agreed=(choice == event.chosen)
                )
                self._m_shadow_paired.inc()
                self._m_shadow_regret.set(shadow.scoreboard.shadow_regret_mean())
                self._m_prod_regret.set(
                    shadow.scoreboard.production_regret_mean()
                )
            else:
                shadow.scoreboard.record_uncovered()

    # -- the automatic loop --------------------------------------------------

    def _rows_since_train(self) -> int:
        return self.buffer.n_added - self._rows_at_last_train

    def _auto_step(self) -> None:
        with self._lock:
            due = self._rows_since_train() >= self.train_every or (
                self._drift_pending
                and self._rows_since_train() >= self.min_train_rows
            )
            shadow = self._shadow
            if shadow is None:
                if due:
                    self.train_candidate()
                return
            board = shadow.scoreboard.snapshot()
            ok, _reason = self._evaluate_gate(board)
            if ok:
                self.promote(reason="auto")
                return
            if board["n_paired"] >= self.policy.min_samples:
                self._m_skipped.inc()
                # A candidate that saw enough traffic and still fails the
                # gate is stale; let fresh experience replace it.
                if due:
                    self.train_candidate()

    def _evaluate_gate(self, board: Dict) -> Tuple[bool, str]:
        since = (
            None if self._last_promotion_t is None
            else self._clock() - self._last_promotion_t
        )
        return self.policy.evaluate(
            n_paired=board["n_paired"],
            shadow_regret_mean=board["shadow_regret_mean"],
            production_regret_mean=board["production_regret_mean"],
            seconds_since_promotion=since,
        )

    # -- training ------------------------------------------------------------

    def _production(self) -> Tuple[FormatSelector, ModelRecord]:
        return self.registry.load(self.model_name)

    def _concat(self, base: SpMVDataset, live: SpMVDataset) -> SpMVDataset:
        if tuple(base.formats) != tuple(live.formats):
            raise AdaptiveError(
                f"base dataset formats {tuple(base.formats)} do not match "
                f"the serving vocabulary {tuple(live.formats)}"
            )
        return SpMVDataset(
            names=list(base.names) + list(live.names),
            feature_array=np.vstack([base.feature_array, live.feature_array]),
            times=np.vstack([base.times, live.times]),
            formats=live.formats,
            device=live.device,
            precision=live.precision,
        )

    def train_candidate(self, *, force: bool = False) -> Optional[ModelRecord]:
        """Train a candidate from accumulated experience; install as shadow.

        Returns the new registry record, or ``None`` when fewer than
        ``min_train_rows`` qualifying rows are buffered (``force=True``
        raises :class:`AdaptiveError` instead, for the manual ops).
        """
        with self._lock:
            prod_model, prod_record = self._production()
            live = self.buffer.to_dataset(
                self.service.formats,
                device=prod_record.meta.get("device") or "live",
                precision=prod_record.meta.get("precision") or "single",
            )
            n_live = 0 if live is None else len(live)
            if live is None or n_live < self.min_train_rows:
                if force:
                    raise AdaptiveError(
                        f"not enough experience to train: {n_live} qualifying "
                        f"rows < min_train_rows={self.min_train_rows}"
                    )
                return None
            warm = (
                self.warm_start
                and prod_model.supports_warm_start
                and tuple(prod_model.formats_ or ()) == tuple(live.formats)
            )
            if warm:
                candidate = prod_model  # a fresh artifact load, not the
                candidate.warm_fit(live, **self.warm_kwargs)  # serving copy
            else:
                family = prod_record.meta.get("model_name")
                if family in MODEL_REGISTRY:
                    candidate = FormatSelector(
                        family, feature_set=prod_model.feature_set
                    )
                else:
                    candidate = FormatSelector(
                        ml_clone(prod_model.estimator),
                        feature_set=prod_model.feature_set,
                    )
                train = (
                    live if self.base_dataset is None
                    else self._concat(self.base_dataset, live)
                )
                candidate.fit(train)
            record = self.registry.save(
                candidate,
                self.model_name,
                extra_meta={
                    "trained_by": "adaptive",
                    "warm_start": bool(warm),
                    "parent_version": prod_record.version,
                    "n_experience_rows": n_live,
                },
            )
            self._shadow = _Shadow(
                candidate, record, _names_of_selector(candidate)
            )
            self._shadow_cache.clear()
            self._shadow_choices.clear()
            self._rows_at_last_train = self.buffer.n_added
            self._drift_pending = False
            self.drift.reset()
            self.n_trainings += 1
            self._m_trainings.inc()
            return record

    # -- promotion / rollback ------------------------------------------------

    def promote(self, *, force: bool = False, reason: str = "auto") -> Dict:
        """Promote the shadow candidate to production.

        Gated by the :class:`PromotionPolicy` unless ``force`` (the
        manual override path).  Moves the registry alias, appends the
        audit record, hot-swaps the serving model, and retires the
        shadow.  Returns the audit record.
        """
        with self._lock:
            shadow = self._shadow
            if shadow is None:
                raise AdaptiveError("no shadow candidate to promote")
            board = shadow.scoreboard.snapshot()
            if not force:
                ok, why = self._evaluate_gate(board)
                if not ok:
                    raise AdaptiveError(f"promotion gate not met: {why}")
                reason = f"{reason}: {why}"
            audit = self.registry.promote(
                self.model_name,
                shadow.record.version,
                reason=reason,
                stats=board,
            )
            self.service.adopt_selector(shadow.model, shadow.record)
            self._shadow = None
            self._shadow_cache.clear()
            self._shadow_choices.clear()
            self._last_promotion_t = self._clock()
            self.n_promotions += 1
            self._m_promotions.inc()
            return audit.meta["promotion"]

    def adopt_version(self, version: str, *, reason: str = "manual") -> Dict:
        """Manually promote an explicit registry version and serve it."""
        with self._lock:
            model, record = self.registry.load(self.model_name, version)
            audit = self.registry.promote(
                self.model_name, record.version, reason=reason
            )
            self.service.adopt_selector(model, record)
            if self._shadow is not None and (
                self._shadow.record.version == record.version
            ):
                self._shadow = None
            self._last_promotion_t = self._clock()
            self.n_promotions += 1
            self._m_promotions.inc()
            return audit.meta["promotion"]

    def rollback(self, *, reason: str = "manual") -> Dict:
        """Revert production to the version it pointed at before the
        latest promotion, and serve it immediately."""
        with self._lock:
            previous = None
            for entry in reversed(self.registry.promotion_history(self.model_name)):
                if entry.get("action") in ("promote", "rollback"):
                    previous = entry.get("previous")
                    break
            if previous is None:
                raise AdaptiveError(
                    f"no previous production version of {self.model_name!r} "
                    "to roll back to"
                )
            model, record = self.registry.load(self.model_name, previous)
            audit = self.registry.promote(
                self.model_name, previous, action="rollback", reason=reason
            )
            self.service.adopt_selector(model, record)
            self._last_promotion_t = self._clock()
            self.n_rollbacks += 1
            self._m_rollbacks.inc()
            return audit.meta["promotion"]

    # -- introspection -------------------------------------------------------

    def status(self) -> Dict:
        """JSON-able loop state (the daemon's ``adaptive`` op payload)."""
        self._drain_shadow()
        with self._lock:
            shadow = self._shadow
            board = None
            if shadow is not None:
                board = shadow.scoreboard.snapshot()
                ok, why = self._evaluate_gate(board)
                board["gate"] = {"ok": ok, "reason": why}
            since = (
                None if self._last_promotion_t is None
                else self._clock() - self._last_promotion_t
            )
            return {
                "model": self.model_name,
                "production": self.registry.production_version(self.model_name),
                "auto": self.auto,
                "policy": {
                    "min_samples": self.policy.min_samples,
                    "min_improvement": self.policy.min_improvement,
                    "cooldown_s": self.policy.cooldown_s,
                },
                "buffer": {
                    "rows": len(self.buffer),
                    "added": self.buffer.n_added,
                    "skipped": self.n_rows_skipped,
                    "since_last_train": self._rows_since_train(),
                    "train_every": self.train_every,
                },
                "shadow": board,
                "trainings": self.n_trainings,
                "promotions": self.n_promotions,
                "rollbacks": self.n_rollbacks,
                "seconds_since_promotion": since,
                "drift": self.drift.snapshot(),
            }


def _names_of_selector(selector: FormatSelector) -> Tuple[str, ...]:
    fs = selector.feature_set
    if isinstance(fs, str):
        from ..features import FEATURE_SETS

        return tuple(FEATURE_SETS[fs])
    return tuple(fs)
