"""JSON-lines serving protocol (the ``repro-spmv serve`` daemon body).

One request per line, one JSON response per line — trivially driven by
a pipe, a socket wrapper or a test's ``StringIO``.  Operations:

``{"op": "predict", ...}``
    One of ``"path"`` (a ``.mtx`` file), ``"features"`` (dict of the 17
    canonical features) or ``"vector"`` (ordered feature list).  An
    optional ``"id"`` names the request for later feedback.  Response:
    ``{"ok": true, "id": ..., "format": ..., "config": {...},
    "latency_ms": ...}`` — ``format`` is the base format name (legacy
    clients), ``config`` the full tuning configuration
    (``{"format": ..., "params": {...}, "key": ...}``).

``{"op": "feedback", "id": ..., "times": {key: seconds}}``
    Report observed per-configuration execution times of a served
    decision, keyed by configuration key.  Include ``"chosen"`` (or the
    ``"config"`` alias) for ids outside the recent window — either a
    configuration key/object or, for one deprecation cycle, a bare
    format string.

``{"op": "stats"}``
    Telemetry snapshot (latency percentiles, throughput, cache hit
    rates, rolling regret).

``{"op": "metrics"}``
    Process-wide observability snapshot (:func:`repro.obs.snapshot`):
    every span and metric the shared telemetry spine has collected,
    including the ``serve.*`` mirrors of the service telemetry.

``{"op": "adaptive"}``
    Adaptive-loop status (requires an attached
    :class:`~repro.serve.adaptive.AdaptiveController`): buffer fill,
    shadow scoreboard, promotion-gate verdict, drift detectors.  With
    ``"train": true`` a candidate is force-trained from the accumulated
    experience first.

``{"op": "promote"}``
    Manual promotion override.  Promotes the current shadow candidate
    (bypassing the regret gate unless ``"force": false``), or an
    explicit ``"version"``.  Optional ``"reason"`` lands in the
    registry's audit trail.

``{"op": "rollback"}``
    Revert production to the previous version from the audit trail and
    serve it immediately.

``{"op": "shutdown"}``
    Acknowledge and stop the loop.

Every error is a ``{"ok": false, "error": ...}`` response; malformed
input never kills the daemon.

With ``serve_jsonl(..., snapshot_every=N)`` the loop additionally
emits a full observability snapshot to the :mod:`repro.obs` event sink
every ``N`` served requests — a flight recorder for long-lived
daemons.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, Optional

from .. import obs
from .service import SelectionService

__all__ = ["handle_request", "resolve_predict_item", "serve_jsonl"]


def resolve_predict_item(request: Dict):
    """Extract the to-be-predicted item from a ``predict`` request.

    Shared by the stdio loop and the socket server's micro-batching
    path: exactly one of ``path`` (read as Matrix Market),
    ``features`` (dict) or ``vector`` (ordered list) must be present.
    """
    sources = [k for k in ("path", "features", "vector") if k in request]
    if len(sources) != 1:
        raise ValueError(
            "predict needs exactly one of 'path', 'features' or 'vector'"
        )
    key = sources[0]
    if key == "path":
        from ..matrices import read_matrix_market

        return read_matrix_market(request["path"])
    if key == "features":
        return dict(request["features"])
    return request["vector"]


def handle_request(service: SelectionService, request: Dict) -> Dict:
    """Execute one protocol request; always returns a response dict."""
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        op = request.get("op", "predict")
        if op == "predict":
            return _handle_predict(service, request)
        if op == "feedback":
            chosen = request.get("chosen")
            if chosen is None:
                chosen = request.get("config")
            event = service.record_feedback(
                str(request["id"]),
                request["times"],
                chosen=chosen,
            )
            return {
                "ok": True,
                "id": event.request_id,
                "regret": event.regret,
                "optimal": event.optimal,
            }
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "metrics":
            return {"ok": True, "metrics": obs.snapshot()}
        if op == "adaptive":
            controller = _adaptive_of(service)
            trained = None
            if request.get("train"):
                record = controller.train_candidate(force=True)
                trained = record.version
            response = {"ok": True, "adaptive": controller.status()}
            if trained is not None:
                response["trained"] = trained
            return response
        if op == "promote":
            controller = _adaptive_of(service)
            reason = str(request.get("reason", "manual"))
            if "version" in request:
                promotion = controller.adopt_version(
                    str(request["version"]), reason=reason
                )
            else:
                promotion = controller.promote(
                    force=bool(request.get("force", True)), reason=reason
                )
            return {"ok": True, "promotion": promotion}
        if op == "rollback":
            controller = _adaptive_of(service)
            promotion = controller.rollback(
                reason=str(request.get("reason", "manual"))
            )
            return {"ok": True, "promotion": promotion}
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        raise ValueError(f"unknown op {op!r}")
    except Exception as exc:  # protocol boundary: report, don't crash
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _adaptive_of(service: SelectionService):
    controller = service.adaptive
    if controller is None:
        raise ValueError(
            "no adaptive controller attached; start the daemon with "
            "--adaptive (or attach an AdaptiveController to the service)"
        )
    return controller


def _handle_predict(service: SelectionService, request: Dict) -> Dict:
    item = resolve_predict_item(request)
    decision = service.predict(item, request_id=request.get("id"))
    response = decision.to_dict()
    response["ok"] = True
    return response


def serve_jsonl(
    service: SelectionService,
    lines: Iterable[str],
    out: IO[str],
    *,
    max_requests: Optional[int] = None,
    snapshot_every: Optional[int] = None,
) -> int:
    """Run the request/response loop; returns the number served.

    ``lines`` is any iterable of JSON-lines input (a file object, a
    list, ``sys.stdin``); blank lines are skipped, a ``shutdown``
    request (or ``max_requests``) ends the loop.  Malformed (non-JSON)
    lines get an error response but are **not** served requests: they
    count into the service's ``protocol_errors`` telemetry (and the
    ``serve.errors`` obs counter) instead, and consume neither the
    ``max_requests`` nor the ``snapshot_every`` budget — an error flood
    can't truncate the daemon or distort its flight recorder.  With
    ``snapshot_every=N`` a full observability snapshot goes to the
    :mod:`repro.obs` event sink after every ``N`` served requests (and
    once more at loop exit) — a no-op unless obs is enabled with a
    sink attached.
    """
    if snapshot_every is not None and snapshot_every < 1:
        raise ValueError("snapshot_every must be >= 1")
    served = 0
    with obs.span("serve.session"):
        for line in lines:
            line = line.strip()
            if not line:
                continue
            # Every handled line is spanned — including protocol errors,
            # which previously escaped the serve.request span entirely.
            handled = False
            with obs.span("serve.request"):
                try:
                    request = json.loads(line)
                except ValueError as exc:
                    response = {"ok": False, "error": f"invalid JSON: {exc}"}
                    service.telemetry.record_protocol_error()
                else:
                    response = handle_request(service, request)
                    handled = True
                    served += 1
            out.write(json.dumps(response) + "\n")
            out.flush()
            if (snapshot_every is not None and handled
                    and served % snapshot_every == 0):
                obs.emit("serve.snapshot", obs.snapshot())
            if response.get("shutdown"):
                break
            if max_requests is not None and served >= max_requests:
                break
    # Final snapshot outside the session span, so it reports the closed
    # serve.session aggregate rather than a provisional open one.
    if snapshot_every is not None:
        obs.emit("serve.snapshot", obs.snapshot())
    return served
