"""Versioned on-disk model registry.

Layout (one directory per model name, one per version)::

    <root>/
      <name>/
        v0001/
          artifact.npz   # pure-numpy model state (repro.ml.serialize)
          meta.json      # metadata + sha256 checksum of artifact.npz
        v0002/
          ...
        PRODUCTION       # version id promoted to production (optional)
        PROMOTIONS.jsonl # audit trail of promote/rollback moves

Artifacts wrap either a fitted :class:`~repro.core.selector.FormatSelector`
(``kind="selector"``) or a :class:`~repro.core.predictor.PerformancePredictor`
(``kind="predictor"``).  ``meta.json`` records the feature set, format
vocabulary, device/precision provenance, the training-dataset content
digest, the artifact schema version and an integrity checksum; loading
verifies schema and checksum before decoding and raises
:class:`RegistryError` on any mismatch — a corrupt or tampered artifact
can never be served silently.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.predictor import PerformancePredictor
from ..core.selector import FormatSelector
from ..features import FEATURE_SETS
from ..ml.serialize import SerializationError, load_payload, save_payload

__all__ = ["ModelRegistry", "ModelRecord", "RegistryError", "ARTIFACT_SCHEMA"]

#: Artifact schema tag written by this build.  v2 payloads carry the
#: compiled flat-array inference tables (``repro.ml.compiled``); v1
#: artifacts are still readable — estimators recompile their tables
#: from the node graphs on restore (see ``SCHEMA_COMPAT`` in
#: :mod:`repro.ml.serialize`).
ARTIFACT_SCHEMA = "repro-serve-artifact/v2"

#: Schema tags this build accepts when loading.
_READABLE_SCHEMAS = (ARTIFACT_SCHEMA, "repro-serve-artifact/v1")

_VERSION_RE = re.compile(r"^v(\d{4,})$")


class RegistryError(RuntimeError):
    """Raised on missing models, corrupt artifacts or schema mismatches."""


@dataclass(frozen=True)
class ModelRecord:
    """One registry entry (a model version on disk)."""

    name: str
    version: str
    path: Path
    meta: Dict = field(compare=False)

    @property
    def kind(self) -> str:
        return self.meta.get("kind", "?")

    def describe(self) -> str:
        m = self.meta
        return (
            f"{self.name}:{self.version} [{self.kind}] model={m.get('model_name')} "
            f"features={m.get('feature_set')} device={m.get('device')}"
            f"/{m.get('precision')} created={m.get('created')}"
        )


def _sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def _feature_names(feature_set) -> List[str]:
    if isinstance(feature_set, str):
        return list(FEATURE_SETS[feature_set])
    return list(feature_set)


def _model_kind(model) -> str:
    if isinstance(model, FormatSelector):
        return "selector"
    if isinstance(model, PerformancePredictor):
        return "predictor"
    raise RegistryError(
        f"registry stores FormatSelector or PerformancePredictor, "
        f"got {type(model).__name__}"
    )


class ModelRegistry:
    """Save, load, list and promote versioned selection models."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
        return self.root / name

    def versions(self, name: str) -> List[str]:
        """Sorted version ids of one model (empty if unknown)."""
        mdir = self._model_dir(name)
        if not mdir.is_dir():
            return []
        found = []
        for child in mdir.iterdir():
            if child.is_dir() and _VERSION_RE.match(child.name):
                found.append(child.name)
        return sorted(found)

    # -- save --------------------------------------------------------------

    def save(
        self,
        model,
        name: str,
        *,
        dataset=None,
        extra_meta: Optional[Dict] = None,
        promote: bool = False,
    ) -> ModelRecord:
        """Persist a fitted model as the next version of ``name``.

        Parameters
        ----------
        model:
            A fitted :class:`FormatSelector` or :class:`PerformancePredictor`.
        dataset:
            Optional :class:`~repro.core.dataset.SpMVDataset` the model was
            trained on; records its content digest and device/precision.
        extra_meta:
            Extra JSON-able key/values merged into ``meta.json``.
        promote:
            Also mark the new version as the production alias.
        """
        kind = _model_kind(model)
        if not hasattr(model, "formats_"):
            raise RegistryError(
                f"cannot save an unfitted {type(model).__name__}; call .fit first"
            )
        versions = self.versions(name)
        next_id = 1 + (int(_VERSION_RE.match(versions[-1]).group(1))
                       if versions else 0)
        version = f"v{next_id:04d}"
        vdir = self._model_dir(name) / version
        vdir.mkdir(parents=True, exist_ok=False)

        payload = {"kind": kind, "wrapper": model.get_state()}
        artifact = vdir / "artifact.npz"
        try:
            save_payload(payload, artifact, schema=ARTIFACT_SCHEMA)
        except SerializationError as exc:
            raise RegistryError(f"cannot serialize model: {exc}") from exc

        formats = getattr(model, "formats_", None)
        meta = {
            "schema": ARTIFACT_SCHEMA,
            "name": name,
            "version": version,
            "kind": kind,
            "model_name": model.model_name,
            "feature_set": model.feature_set
            if isinstance(model.feature_set, str) else list(model.feature_set),
            "feature_names": _feature_names(model.feature_set),
            "n_features": len(_feature_names(model.feature_set)),
            "formats": None if formats is None else list(formats),
            "dtype": "float64",
            "device": getattr(dataset, "device", None),
            "precision": getattr(dataset, "precision", None),
            "dataset_digest": dataset.digest() if dataset is not None else None,
            "n_train": len(dataset) if dataset is not None else None,
            "created": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="seconds"),
            "checksum": _sha256(artifact),
        }
        if extra_meta:
            meta.update(extra_meta)
        (vdir / "meta.json").write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        record = ModelRecord(name=name, version=version, path=vdir, meta=meta)
        if promote:
            self.promote(name, version)
        return record

    # -- load --------------------------------------------------------------

    def resolve(self, name: str, version: Optional[str] = None) -> str:
        """Resolve ``version`` (``None`` → production alias, else latest)."""
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"unknown model {name!r} under {self.root}")
        if version is None or version in ("production", "prod"):
            prod = self.production_version(name)
            if prod is not None:
                return prod
            if version in ("production", "prod"):
                raise RegistryError(f"model {name!r} has no production version")
            return versions[-1]
        if version == "latest":
            return versions[-1]
        if version not in versions:
            raise RegistryError(
                f"model {name!r} has no version {version!r}; "
                f"available: {versions}"
            )
        return version

    def record(self, name: str, version: Optional[str] = None) -> ModelRecord:
        """Load and validate one version's metadata (no artifact decode)."""
        version = self.resolve(name, version)
        vdir = self._model_dir(name) / version
        meta_path = vdir / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise RegistryError(f"unreadable metadata {meta_path}: {exc}") from exc
        if meta.get("schema") not in _READABLE_SCHEMAS:
            raise RegistryError(
                f"{name}:{version} has artifact schema {meta.get('schema')!r}; "
                f"this build reads {_READABLE_SCHEMAS!r}"
            )
        return ModelRecord(name=name, version=version, path=vdir, meta=meta)

    def load(self, name: str, version: Optional[str] = None):
        """Load a model; returns ``(model, record)``.

        Verifies the schema version and the sha256 checksum of the
        artifact before decoding; raises :class:`RegistryError` if the
        artifact was corrupted, truncated or written by an unknown
        schema.
        """
        record = self.record(name, version)
        artifact = record.path / "artifact.npz"
        if not artifact.exists():
            raise RegistryError(f"missing artifact {artifact}")
        checksum = _sha256(artifact)
        if checksum != record.meta.get("checksum"):
            raise RegistryError(
                f"checksum mismatch for {name}:{record.version} "
                f"(artifact corrupted or tampered with)"
            )
        try:
            payload = load_payload(artifact, schema=ARTIFACT_SCHEMA)
        except SerializationError as exc:
            raise RegistryError(f"cannot load {artifact}: {exc}") from exc
        kind = payload.get("kind")
        if kind == "selector":
            model = FormatSelector.from_state(payload["wrapper"])
        elif kind == "predictor":
            model = PerformancePredictor.from_state(payload["wrapper"])
        else:
            raise RegistryError(f"unknown artifact kind {kind!r}")
        return model, record

    # -- listing / promotion ------------------------------------------------

    def list(self, name: Optional[str] = None) -> List[ModelRecord]:
        """Records of every version (of one model, or the whole registry)."""
        names = [name] if name is not None else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        ) if self.root.is_dir() else []
        records = []
        for n in names:
            for v in self.versions(n):
                records.append(self.record(n, v))
        return records

    def production_version(self, name: str) -> Optional[str]:
        """Version id promoted to production, or ``None``."""
        alias = self._model_dir(name) / "PRODUCTION"
        if not alias.exists():
            return None
        version = alias.read_text().strip()
        if version not in self.versions(name):
            raise RegistryError(
                f"production alias of {name!r} points at missing version "
                f"{version!r}"
            )
        return version

    def promote(
        self,
        name: str,
        version: str,
        *,
        action: str = "promote",
        reason: Optional[str] = None,
        stats: Optional[Dict] = None,
    ) -> ModelRecord:
        """Mark ``version`` as the production model for ``name``.

        Every call appends one audit record to the model's
        ``PROMOTIONS.jsonl`` — who moved the alias, from what to what,
        why, and (for gated auto-promotions) the shadow-evaluation
        stats that justified it.  ``action`` distinguishes forward
        promotions from ``"rollback"`` moves; the returned record
        carries the audit entry under ``meta["promotion"]``.
        """
        versions = self.versions(name)
        if version not in versions:
            raise RegistryError(
                f"cannot promote {name}:{version}; available: {versions}"
            )
        previous = self.production_version(name)
        (self._model_dir(name) / "PRODUCTION").write_text(version + "\n")
        entry = {
            "ts": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="seconds"),
            "action": action,
            "name": name,
            "version": version,
            "previous": previous,
        }
        if reason is not None:
            entry["reason"] = reason
        if stats is not None:
            entry["stats"] = stats
        with open(self._model_dir(name) / "PROMOTIONS.jsonl", "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        record = self.record(name, version)
        record.meta["promotion"] = entry
        return record

    def promotion_history(self, name: str) -> List[Dict]:
        """Audit trail of production-alias moves (oldest first).

        Parsed from ``PROMOTIONS.jsonl``; unreadable lines are skipped
        rather than poisoning the history.
        """
        path = self._model_dir(name) / "PROMOTIONS.jsonl"
        if not path.exists():
            return []
        entries = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries
