"""Measurement noise for the execution simulator.

Real GPU timings deviate from any analytical model in two ways, and the
simulator reproduces both:

* a **fixed effect** per (matrix, format, device, precision): the
  hardware interacts with each structure in ways no small model (or
  small feature set!) fully captures — TLB behaviour, partition-camping,
  replay rates.  This is a deterministic lognormal multiplier seeded
  from the matrix digest, so it is *stable across repetitions* (the
  paper averages 50 runs, which removes jitter but not structure
  effects) yet unpredictable from the extracted features.  Its spread,
  ``sigma_structural``, is the knob that keeps format-selection accuracy
  in the realistic high-80s instead of saturating.
* per-run **jitter**: clock/DVFS and scheduling noise, a lognormal
  multiplier drawn fresh every repetition from the executor's RNG.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["NoiseModel"]


class NoiseModel:
    """Multiplicative lognormal noise with a seeded structural component.

    Parameters
    ----------
    sigma_structural:
        Log-std-dev of the per-(matrix, format, device, precision)
        fixed effect.  ``0`` disables it (fully deterministic labels).
    sigma_run:
        Log-std-dev of the per-repetition jitter.
    seed:
        Base seed mixed into the fixed-effect hash, so independent
        experiments can draw independent "hardware instances".
    """

    def __init__(
        self,
        sigma_structural: float = 0.02,
        sigma_run: float = 0.03,
        seed: int = 0,
    ) -> None:
        if sigma_structural < 0 or sigma_run < 0:
            raise ValueError("noise sigmas must be non-negative")
        self.sigma_structural = float(sigma_structural)
        self.sigma_run = float(sigma_run)
        self.seed = int(seed)

    # -- fixed effect ---------------------------------------------------

    def structural_factor(
        self, digest: bytes, fmt: str, device_name: str, precision: str
    ) -> float:
        """Deterministic lognormal multiplier for one configuration.

        The same (matrix, format, device, precision) always maps to the
        same factor; the mean of the multiplier is 1 (the lognormal is
        centred by ``-sigma^2 / 2``).
        """
        if self.sigma_structural == 0.0:
            return 1.0
        h = hashlib.blake2b(digest_size=8)
        h.update(digest)
        h.update(fmt.encode())
        h.update(device_name.encode())
        h.update(precision.encode())
        h.update(self.seed.to_bytes(8, "little", signed=True))
        raw = int.from_bytes(h.digest(), "little")
        gauss = np.random.default_rng(raw).standard_normal()
        s = self.sigma_structural
        return float(np.exp(s * gauss - 0.5 * s * s))

    # -- per-run jitter ---------------------------------------------------

    def run_factors(self, rng: np.random.Generator, reps: int) -> np.ndarray:
        """Fresh jitter multipliers for ``reps`` repetitions (mean 1)."""
        if self.sigma_run == 0.0:
            return np.ones(reps)
        s = self.sigma_run
        return np.exp(s * rng.standard_normal(reps) - 0.5 * s * s)
