"""Per-format SpMV kernel cost models.

Each model turns a :class:`~repro.gpu.profile.MatrixProfile` plus a
:class:`~repro.gpu.device.DeviceSpec` and precision into an estimated
kernel time, decomposed into data movement, compute/reduction work,
imbalance penalties and launch overhead.  The mechanisms implemented
are exactly the ones the paper describes qualitatively (Sec. II-A,
Sec. III):

* **COO** — structure-insensitive but pays an extra row-index stream,
  a segmented-reduction pass and atomic row updates (cheap on Pascal,
  expensive on Kepler).
* **CSR** — modelled as cuSPARSE-style adaptive choice between the
  *scalar* kernel (thread/row: uncoalesced, diverges with row-length
  variance) and the *vector* kernel (warp/row: coalesced but wastes
  lanes on short rows).
* **ELL** — perfectly regular streaming of padded planes: fastest per
  byte, but the byte count scales with ``rows × longest_row``.
* **HYB** — an ELL pass at the μ-threshold width plus a COO pass over
  the spill, two kernel launches.
* **CSR5** — nnz-balanced tiles: insensitive to structure, small tile
  descriptor overhead, slight gather-locality penalty from the tile
  transposition.
* **merge-based CSR** — nnz+rows merge items split evenly: insensitive
  to structure, pays merge-path binary searches, a carry fix-up pass
  and the extra row-pointer traffic.

The absolute constants were calibrated so single-precision CSR on the
Kepler device peaks around the 20–25 GFLOPS the paper's Fig. 3 shows;
the *relative* behaviour across formats/structures is what matters for
the ML study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .cache import gather_traffic_bytes
from .device import DeviceSpec
from .profile import MatrixProfile

__all__ = ["CostBreakdown", "estimate_time", "KERNEL_MODELS"]

#: Bytes of one index element (matches repro.formats.INDEX_BYTES).
IDX = 4


@dataclass(frozen=True)
class CostBreakdown:
    """Decomposed cost estimate of one SpMV kernel invocation."""

    seconds: float          #: total estimated wall time
    matrix_bytes: float     #: format data streamed from DRAM
    x_bytes: float          #: input-vector gather traffic
    y_bytes: float          #: output traffic (incl. atomic RMW inflation)
    compute_seconds: float  #: reduction / bookkeeping arithmetic time
    launch_seconds: float   #: kernel launch overhead
    imbalance: float        #: multiplicative load-imbalance factor (>= 1)
    efficiency: float       #: achieved fraction of streaming bandwidth
    flops: float            #: useful flops (2 * nnz)

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s implied by this estimate."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


def _itemsize(precision: str) -> int:
    if precision == "single":
        return 4
    if precision == "double":
        return 8
    raise ValueError(f"unknown precision {precision!r}")


def _assemble(
    profile: MatrixProfile,
    device: DeviceSpec,
    *,
    matrix_bytes: float,
    x_bytes: float,
    y_bytes: float,
    efficiency: float,
    imbalance: float,
    compute_seconds: float,
    launches: float,
    setup_us: float = 0.0,
) -> CostBreakdown:
    """Combine traffic, compute and overhead into a total estimate.

    Memory and compute overlap on a GPU, so the streaming phase costs
    ``max(mem, compute)``; imbalance stretches the streaming phase
    because late warps finish after the bandwidth is no longer
    saturated.  ``setup_us`` is the format's fixed per-invocation
    bookkeeping (tile/partition dispatch, grid sizing) on top of the
    raw launch overhead — the reason sophisticated formats lose on tiny
    matrices.
    """
    total_bytes = matrix_bytes + x_bytes + y_bytes
    bw = device.stream_bandwidth * efficiency * device.utilization(total_bytes)
    mem_seconds = total_bytes / bw if total_bytes else 0.0
    launch_seconds = launches * device.launch_overhead_us * 1e-6 + setup_us * 1e-6
    seconds = max(mem_seconds, compute_seconds) * imbalance + launch_seconds
    return CostBreakdown(
        seconds=seconds,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        compute_seconds=compute_seconds,
        launch_seconds=launch_seconds,
        imbalance=imbalance,
        efficiency=efficiency,
        flops=2.0 * profile.nnz,
    )


def _reduction_seconds(device: DeviceSpec, ops: float, cycles_per_op: float) -> float:
    """Time for ``ops`` bookkeeping operations at full occupancy."""
    throughput = device.n_sm * device.cores_per_sm * device.clock_hz
    return ops * cycles_per_op / throughput


# ---------------------------------------------------------------------------
# Per-format models
# ---------------------------------------------------------------------------


def _coo(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    nnz = profile.nnz
    matrix_bytes = nnz * (2 * IDX + v)
    x_bytes = gather_traffic_bytes(profile, device, precision)
    # Segmented reduction updates y with atomics for segments crossing
    # thread-block boundaries: model as read-modify-write inflated by the
    # device's atomic efficiency (Kepler fp64 atomics are CAS loops).
    atomic_eff = device.atomic_efficiency
    if precision == "double" and device.arch == "kepler":
        atomic_eff *= 0.5
    rows_touched = profile.n_rows - profile.empty_rows
    y_bytes = 2.0 * rows_touched * v / max(atomic_eff, 1e-3)
    compute = _reduction_seconds(device, nnz, cycles_per_op=4.0)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.58,  # interleaved carry handling costs replays
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,  # fused product + segmented-reduction kernel (CUSP style)
        setup_us=2.0,  # carry-buffer initialisation
    )


def _csr(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    nnz = profile.nnz
    rows = profile.n_rows
    matrix_bytes = nnz * (IDX + v) + (rows + 1) * IDX
    x_bytes = gather_traffic_bytes(profile, device, precision)
    y_bytes = rows * v

    # Scalar kernel: thread per row.  Column/value reads stride by row
    # length -> poor coalescing; 32-row warp groups serialize on their
    # longest member.
    scalar = _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.30,
        imbalance=1.0 + 0.8 * (profile.warp_divergence - 1.0),
        compute_seconds=_reduction_seconds(device, nnz, 1.0),
        launches=1,
    )
    # Vector kernel: warp per row.  Coalesced, but rows shorter than a
    # warp leave lanes idle (vector_waste) and every row pays a
    # warp-level reduction.
    waste = profile.vector_waste
    vector = _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.88,
        imbalance=1.0 + 0.45 * (waste - 1.0),
        compute_seconds=_reduction_seconds(device, nnz + 8.0 * rows, 1.2),
        launches=1,
    )
    # Row-packing kernel (cuSPARSE-style heuristics): short rows are
    # packed several-per-warp, so lane waste largely disappears, at the
    # price of per-row bookkeeping and a residual sensitivity to
    # row-length variance (a packed warp still waits for its longest
    # member).
    cv = profile.row_cv
    packed = _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.82,
        imbalance=1.0 + 0.80 * min(cv, 4.0),
        compute_seconds=_reduction_seconds(device, nnz * 1.1 + 8.0 * rows, 1.0),
        launches=1,
    )
    return min((scalar, vector, packed), key=lambda c: c.seconds)


def _ell(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    slots = profile.n_rows * profile.nnz_max  # padded plane size
    matrix_bytes = slots * (IDX + v)
    x_bytes = gather_traffic_bytes(profile, device, precision)
    y_bytes = profile.n_rows * v
    # Perfectly regular column-major streaming: the padding bytes are in
    # matrix_bytes already, so no further imbalance term is needed.
    compute = _reduction_seconds(device, float(slots), 0.8)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.96,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=1.5,  # column-major grid configuration
    )


def _hyb(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    rows = profile.n_rows
    k = profile.hyb_threshold
    ell_slots = rows * min(k, profile.nnz_max)
    spill = profile.hyb_spill_nnz
    matrix_bytes = ell_slots * (IDX + v) + spill * (2 * IDX + v)
    x_bytes = gather_traffic_bytes(profile, device, precision)
    atomic_eff = device.atomic_efficiency
    if precision == "double" and device.arch == "kepler":
        atomic_eff *= 0.5
    # ELL pass writes y once; the COO pass atomically updates only the
    # rows that actually spilled past the threshold.
    spill_rows = profile.hyb_spill_rows
    y_bytes = rows * v + 2.0 * spill_rows * v / max(atomic_eff, 1e-3)
    compute = _reduction_seconds(device, ell_slots * 0.8 + spill * 2.5, 1.0)
    # Blended efficiency: the ELL part streams perfectly, the COO spill
    # pays the segmented-reduction efficiency.
    total_elems = max(ell_slots + spill, 1)
    efficiency = (0.96 * ell_slots + 0.88 * spill) / total_elems
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=efficiency,
        imbalance=1.0,
        compute_seconds=compute,
        launches=2,
        setup_us=3.0,  # two dependent kernels: extra grid dispatch
    )


def _csr5(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    nnz = profile.nnz
    rows = profile.n_rows
    tile_elems = 32 * 16  # omega * sigma
    n_tiles = -(-nnz // tile_elems) if nnz else 0
    matrix_bytes = (
        nnz * (IDX + v)              # transposed value/index tiles
        + (rows + 1) * IDX           # row pointer
        + (n_tiles + 1) * IDX        # tile_ptr
        + n_tiles * 2 * IDX          # y_offset / seg_offset words
        + nnz / 8.0                  # bit_flag, one bit per element
    )
    # Tile transposition interleaves rows within a tile, trimming gather
    # temporal locality slightly.
    x_bytes = gather_traffic_bytes(profile, device, precision, locality_penalty=1.22)
    y_bytes = rows * v + n_tiles * v  # partial sums for cross-tile rows
    compute = _reduction_seconds(device, nnz * 1.6 + n_tiles * 96.0, 1.0)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.94,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,  # tile metadata is built at conversion; SpMV is one kernel
        setup_us=6.0,  # tile-scheduler bring-up + calibration epilogue
    )


def _merge_csr(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    v = _itemsize(precision)
    nnz = profile.nnz
    rows = profile.n_rows
    items = nnz + rows
    items_per_thread = 7 * 32  # merge items per thread-block tile
    partitions = -(-items // items_per_thread) if items else 0
    matrix_bytes = (
        nnz * (IDX + v)
        + (rows + 1) * IDX * 2       # row pointer read by search + run
        + partitions * 2 * IDX       # partition coordinates
    )
    x_bytes = gather_traffic_bytes(profile, device, precision)
    y_bytes = rows * v + partitions * 2.0 * v  # carry value+row per partition
    import math

    search_ops = partitions * (math.log2(rows + 1) + 1.0) * 4.0
    compute = _reduction_seconds(device, nnz * 1.3 + rows * 2.5 + search_ops, 1.0)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.93,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1.5,  # partition-search kernel is tiny next to the SpMV
        setup_us=5.0,  # coordinate search + temp-storage bookkeeping
    )


def _dia(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    """DIA: pure diagonal streaming — no index array, shifted x reads."""
    v = _itemsize(precision)
    rows = profile.n_rows
    n_diags = profile.n_diags
    matrix_bytes = n_diags * rows * v + n_diags * IDX
    # Each diagonal streams a contiguous x window; with few diagonals the
    # windows stay L2-resident, otherwise later diagonals re-fetch.
    x_size = profile.n_cols * v
    resident = min(1.0, (device.l2_bytes * 0.5) / max(x_size, 1.0))
    x_bytes = x_size + (1.0 - resident) * max(n_diags - 1, 0) * rows * v * 0.5
    y_bytes = rows * v
    compute = _reduction_seconds(device, float(n_diags * rows), 0.6)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.97,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=0.5,
    )


def _bsr(profile: MatrixProfile, device: DeviceSpec, precision: str) -> CostBreakdown:
    """BSR (4x4 blocks): dense-block streaming, one index per block."""
    v = _itemsize(precision)
    r = c = 4
    n_blocks = profile.bsr_blocks
    n_brows = -(-profile.n_rows // r)
    matrix_bytes = n_blocks * r * c * v + n_blocks * IDX + (n_brows + 1) * IDX
    # The gather works at block granularity: whole c-wide x slices are
    # read per block, which is kinder to cache lines than per-element
    # gathers (model as a mild locality bonus on the standard estimate).
    x_bytes = 0.9 * gather_traffic_bytes(profile, device, precision)
    y_bytes = profile.n_rows * v
    compute = _reduction_seconds(device, n_blocks * r * c * 1.0, 1.0)
    return _assemble(
        profile,
        device,
        matrix_bytes=matrix_bytes,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        efficiency=0.94,
        imbalance=1.0,
        compute_seconds=compute,
        launches=1,
        setup_us=1.0,
    )


#: Registry: format name -> cost model.
KERNEL_MODELS: Dict[str, Callable[[MatrixProfile, DeviceSpec, str], CostBreakdown]] = {
    "coo": _coo,
    "csr": _csr,
    "ell": _ell,
    "hyb": _hyb,
    "csr5": _csr5,
    "merge_csr": _merge_csr,
    "dia": _dia,
    "bsr": _bsr,
}


def estimate_time(
    fmt: str, profile: MatrixProfile, device: DeviceSpec, precision: str = "single"
) -> CostBreakdown:
    """Estimate one SpMV invocation of ``fmt`` on ``device``.

    ``fmt`` may also be a tuning configuration key (``"hyb?split=2"``),
    which dispatches to the parameterised models in :mod:`repro.tuning`
    (an all-default key is just the bare format name, handled here).
    Raises ``KeyError`` for unknown formats and ``ValueError`` for an
    unknown precision.
    """
    model = KERNEL_MODELS.get(fmt)
    if model is None:
        if "?" in fmt:
            from .. import tuning

            if tuning.is_known_key(fmt):
                return tuning.estimate_config(fmt, profile, device, precision)
        raise KeyError(
            f"unknown format {fmt!r}; expected one of {sorted(KERNEL_MODELS)}"
        )
    return model(profile, device, precision)
