"""L2 cache model for the SpMV input-vector gather.

The dominant irregular traffic in SpMV is the gather ``x[col[i]]``
(paper Sec. IV-A discusses exactly this: banded structure → coalesced,
cache-friendly access; unstructured → uncoalesced misses).  This module
turns the :class:`~repro.gpu.profile.GatherStats` of a matrix into an
estimated number of DRAM bytes fetched on behalf of ``x``.

Model
-----
Let ``U`` be the distinct x-lines touched anywhere (compulsory misses),
``F`` the per-row line touches summed over rows (traffic with zero
cross-row reuse), and ``L2`` the cache capacity available to ``x``.

* If the whole touched working set fits in L2, every line is fetched
  roughly once (plus a small conflict-miss term): traffic ≈ ``U``.
* Otherwise only a fraction ``ρ = L2 / working_set`` of the vector is
  resident at any time; a row's line touch hits with probability ≈ ρ,
  so traffic interpolates between ``U`` (ρ→1) and ``F`` (ρ→0).

This captures the paper's observation that matrices with clustered
columns (large contiguous non-zero blocks, feature set 3) enjoy much
cheaper gathers than scattered ones of identical size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

import numpy as np

from .device import DeviceSpec
from .profile import GatherStats, MatrixProfile

__all__ = [
    "gather_traffic_bytes",
    "gather_traffic_bytes_batch",
    "L2_X_SHARE",
    "CONFLICT_MISS_RATE",
    "LRUCache",
]


class LRUCache:
    """Small bounded least-recently-used mapping.

    Used by :class:`~repro.gpu.executor.SpMVExecutor` to bound its
    per-matrix analysis and converted-format caches: a long measurement
    campaign streams thousands of matrices through one executor, and an
    unbounded dict would retain every profile (and, worse, every
    converted format) for the life of the process.

    All operations take an internal lock, so one cache instance may be
    shared by concurrently serving threads (the network server funnels
    many connections through one :class:`SelectionService`, whose
    feature/decision caches are ``LRUCache``\\ s).  A ``get``/``put``
    pair is still *not* atomic as a unit — use :meth:`setdefault` when
    check-then-insert must not race.

    Parameters
    ----------
    maxsize:
        Maximum number of entries; the least recently *used* entry is
        evicted first.  ``None`` disables the bound (unbounded cache).
    """

    def __init__(self, maxsize: Optional[int] = 128) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used)."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite an entry, evicting the LRU one if needed."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self._evict()

    def setdefault(self, key: Hashable, value: Any) -> Any:
        """Insert ``value`` unless present; return the cached entry."""
        with self._lock:
            try:
                existing = self._data[key]
            except KeyError:
                self._data[key] = value
                self._evict()
                return value
            self._data.move_to_end(key)
            return existing

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def _evict(self) -> None:
        if self.maxsize is not None:
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

#: Fraction of L2 effectively available to cache x (the rest is churned
#: by the streaming matrix arrays).
L2_X_SHARE = 0.35

#: Residual miss rate when the working set fits in L2 (conflict and
#: cold-start effects).
CONFLICT_MISS_RATE = 0.03


def gather_traffic_bytes(
    profile: MatrixProfile,
    device: DeviceSpec,
    precision: str,
    *,
    locality_penalty: float = 1.0,
) -> float:
    """DRAM bytes fetched for the ``x`` gather of one SpMV.

    Parameters
    ----------
    profile:
        Structural profile of the matrix.
    device:
        Target GPU (supplies L2 capacity and line size).
    precision:
        ``"single"`` or ``"double"``.
    locality_penalty:
        Format-specific multiplier ≥ 1 for execution orders that visit
        rows non-contiguously (e.g. CSR5's tile transposition slightly
        reduces temporal locality of the gather).
    """
    stats: GatherStats = profile.gather[precision]
    if profile.nnz == 0:
        return 0.0
    line = device.cache_line_bytes
    l2_lines = (device.l2_bytes * L2_X_SHARE) / line
    working_set = max(stats.unique_lines, 1)

    if working_set <= l2_lines:
        extra = CONFLICT_MISS_RATE * max(stats.line_fetches - stats.unique_lines, 0)
        fetched = stats.unique_lines + extra
    else:
        resident = l2_lines / working_set  # fraction of touched lines cached
        fetched = resident * stats.unique_lines + (1.0 - resident) * stats.line_fetches

    return float(fetched) * line * min(max(locality_penalty, 1.0), 4.0)


def gather_traffic_bytes_batch(
    unique_lines: np.ndarray,
    line_fetches: np.ndarray,
    nnz: np.ndarray,
    device: DeviceSpec,
    *,
    locality_penalty: float = 1.0,
) -> np.ndarray:
    """Vectorized :func:`gather_traffic_bytes` over N matrices at once.

    Takes the gather statistics as parallel int64 arrays (one entry per
    matrix, as stored in :class:`~repro.gpu.batch.ProfileBatch`) and
    returns a float64 array of DRAM bytes.  Every arithmetic step
    mirrors the scalar function's operation order exactly, so the
    results are bit-identical to per-matrix calls.
    """
    unique = np.asarray(unique_lines, dtype=np.int64)
    fetches = np.asarray(line_fetches, dtype=np.int64)
    line = device.cache_line_bytes
    l2_lines = (device.l2_bytes * L2_X_SHARE) / line
    working_set = np.maximum(unique, 1)

    extra = CONFLICT_MISS_RATE * np.maximum(fetches - unique, 0)
    resident = l2_lines / working_set
    fetched = np.where(
        working_set <= l2_lines,
        unique + extra,
        resident * unique + (1.0 - resident) * fetches,
    )
    traffic = fetched * line * min(max(locality_penalty, 1.0), 4.0)
    return np.where(np.asarray(nnz, dtype=np.int64) == 0, 0.0, traffic)
