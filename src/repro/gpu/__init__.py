"""GPU execution simulator (stand-in for the paper's K40c/K80c and P100).

The subpackage provides:

* :class:`~repro.gpu.device.DeviceSpec` with the presets
  :data:`~repro.gpu.device.KEPLER_K40C` and
  :data:`~repro.gpu.device.PASCAL_P100` (paper Table III),
* :func:`~repro.gpu.profile.profile_matrix` — the one-pass structural
  analysis feeding the cost models,
* :func:`~repro.gpu.kernels.estimate_time` — six per-format kernel cost
  models,
* :class:`~repro.gpu.executor.SpMVExecutor` — the measurement harness
  implementing the paper's 50-repetition averaging protocol, with
  simulated OOM / kernel-failure modes and calibrated noise.

See DESIGN.md ("Substitutions") for why an analytical simulator
preserves the behaviour the ML study depends on.
"""

from .cache import gather_traffic_bytes  # noqa: F401
from .device import DEVICES, DeviceSpec, KEPLER_K40C, PASCAL_P100  # noqa: F401
from .executor import (  # noqa: F401
    KernelFailure,
    OutOfMemoryError,
    SimulationError,
    SpMVExecutor,
    TimingSample,
)
from .kernels import KERNEL_MODELS, CostBreakdown, estimate_time  # noqa: F401
from .noise import NoiseModel  # noqa: F401
from .profile import GatherStats, MatrixProfile, profile_matrix  # noqa: F401

__all__ = [
    "DeviceSpec",
    "KEPLER_K40C",
    "PASCAL_P100",
    "DEVICES",
    "MatrixProfile",
    "GatherStats",
    "profile_matrix",
    "gather_traffic_bytes",
    "CostBreakdown",
    "estimate_time",
    "KERNEL_MODELS",
    "NoiseModel",
    "SpMVExecutor",
    "TimingSample",
    "SimulationError",
    "OutOfMemoryError",
    "KernelFailure",
]
